/root/repo/target/debug/deps/hepnos_ls-56c13cb3c75a7b36.d: crates/tools/src/bin/hepnos_ls.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_ls-56c13cb3c75a7b36.rmeta: crates/tools/src/bin/hepnos_ls.rs Cargo.toml

crates/tools/src/bin/hepnos_ls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
