/root/repo/target/debug/deps/paper_claims-900d6af9e94ef144.d: crates/cluster/tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-900d6af9e94ef144.rmeta: crates/cluster/tests/paper_claims.rs Cargo.toml

crates/cluster/tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
