/root/repo/target/debug/deps/ablation_placement-4c350676a164e799.d: crates/bench/benches/ablation_placement.rs

/root/repo/target/debug/deps/ablation_placement-4c350676a164e799: crates/bench/benches/ablation_placement.rs

crates/bench/benches/ablation_placement.rs:
