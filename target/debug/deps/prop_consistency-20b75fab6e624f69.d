/root/repo/target/debug/deps/prop_consistency-20b75fab6e624f69.d: crates/yokan/tests/prop_consistency.rs

/root/repo/target/debug/deps/prop_consistency-20b75fab6e624f69: crates/yokan/tests/prop_consistency.rs

crates/yokan/tests/prop_consistency.rs:
