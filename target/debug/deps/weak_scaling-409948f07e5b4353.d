/root/repo/target/debug/deps/weak_scaling-409948f07e5b4353.d: crates/bench/src/bin/weak_scaling.rs

/root/repo/target/debug/deps/weak_scaling-409948f07e5b4353: crates/bench/src/bin/weak_scaling.rs

crates/bench/src/bin/weak_scaling.rs:
