/root/repo/target/debug/deps/hepnos_tools-9b38dcabe4ceaf86.d: crates/tools/src/lib.rs

/root/repo/target/debug/deps/libhepnos_tools-9b38dcabe4ceaf86.rlib: crates/tools/src/lib.rs

/root/repo/target/debug/deps/libhepnos_tools-9b38dcabe4ceaf86.rmeta: crates/tools/src/lib.rs

crates/tools/src/lib.rs:
