/root/repo/target/debug/deps/hepnos_suite-aff640e2c712fee3.d: src/lib.rs

/root/repo/target/debug/deps/libhepnos_suite-aff640e2c712fee3.rlib: src/lib.rs

/root/repo/target/debug/deps/libhepnos_suite-aff640e2c712fee3.rmeta: src/lib.rs

src/lib.rs:
