/root/repo/target/debug/deps/tcp_deployment-7473c7d1574abcb6.d: tests/tcp_deployment.rs

/root/repo/target/debug/deps/tcp_deployment-7473c7d1574abcb6: tests/tcp_deployment.rs

tests/tcp_deployment.rs:
