/root/repo/target/debug/deps/ablation_placement-3d42633888b319b6.d: crates/bench/benches/ablation_placement.rs Cargo.toml

/root/repo/target/debug/deps/libablation_placement-3d42633888b319b6.rmeta: crates/bench/benches/ablation_placement.rs Cargo.toml

crates/bench/benches/ablation_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
