/root/repo/target/debug/deps/hepnos_ingest-e923738132e1d785.d: crates/tools/src/bin/hepnos_ingest.rs

/root/repo/target/debug/deps/hepnos_ingest-e923738132e1d785: crates/tools/src/bin/hepnos_ingest.rs

crates/tools/src/bin/hepnos_ingest.rs:
