/root/repo/target/debug/deps/bedrock-3e947905b455e2ed.d: crates/bedrock/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbedrock-3e947905b455e2ed.rmeta: crates/bedrock/src/lib.rs Cargo.toml

crates/bedrock/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
