/root/repo/target/debug/deps/micro_lsm-0e7e4b885b8fd281.d: crates/bench/benches/micro_lsm.rs

/root/repo/target/debug/deps/micro_lsm-0e7e4b885b8fd281: crates/bench/benches/micro_lsm.rs

crates/bench/benches/micro_lsm.rs:
