/root/repo/target/debug/deps/figure2-6564ff70a866bbae.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-6564ff70a866bbae.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
