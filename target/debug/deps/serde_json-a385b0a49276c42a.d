/root/repo/target/debug/deps/serde_json-a385b0a49276c42a.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-a385b0a49276c42a.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-a385b0a49276c42a.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
