/root/repo/target/debug/deps/nova-e73467d3b9f4a6ba.d: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs Cargo.toml

/root/repo/target/debug/deps/libnova-e73467d3b9f4a6ba.rmeta: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs Cargo.toml

crates/nova/src/lib.rs:
crates/nova/src/files.rs:
crates/nova/src/generator.rs:
crates/nova/src/loader.rs:
crates/nova/src/selection.rs:
crates/nova/src/spectrum.rs:
crates/nova/src/data.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
