/root/repo/target/debug/deps/nova-ae3b9c4b3bc0fc25.d: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs

/root/repo/target/debug/deps/nova-ae3b9c4b3bc0fc25: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs

crates/nova/src/lib.rs:
crates/nova/src/files.rs:
crates/nova/src/generator.rs:
crates/nova/src/loader.rs:
crates/nova/src/selection.rs:
crates/nova/src/spectrum.rs:
crates/nova/src/data.rs:
