/root/repo/target/debug/deps/paper_claims-d41f78df5cf52407.d: crates/cluster/tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-d41f78df5cf52407: crates/cluster/tests/paper_claims.rs

crates/cluster/tests/paper_claims.rs:
