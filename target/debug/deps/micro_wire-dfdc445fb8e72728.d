/root/repo/target/debug/deps/micro_wire-dfdc445fb8e72728.d: crates/bench/benches/micro_wire.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_wire-dfdc445fb8e72728.rmeta: crates/bench/benches/micro_wire.rs Cargo.toml

crates/bench/benches/micro_wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
