/root/repo/target/debug/deps/yokan-6a656876ed3b37e9.d: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs

/root/repo/target/debug/deps/yokan-6a656876ed3b37e9: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs

crates/yokan/src/lib.rs:
crates/yokan/src/backend.rs:
crates/yokan/src/client.rs:
crates/yokan/src/encoding.rs:
crates/yokan/src/error.rs:
crates/yokan/src/service.rs:
