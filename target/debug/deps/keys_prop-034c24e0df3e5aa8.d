/root/repo/target/debug/deps/keys_prop-034c24e0df3e5aa8.d: crates/hepnos/tests/keys_prop.rs Cargo.toml

/root/repo/target/debug/deps/libkeys_prop-034c24e0df3e5aa8.rmeta: crates/hepnos/tests/keys_prop.rs Cargo.toml

crates/hepnos/tests/keys_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
