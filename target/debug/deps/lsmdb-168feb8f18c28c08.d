/root/repo/target/debug/deps/lsmdb-168feb8f18c28c08.d: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs

/root/repo/target/debug/deps/liblsmdb-168feb8f18c28c08.rlib: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs

/root/repo/target/debug/deps/liblsmdb-168feb8f18c28c08.rmeta: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs

crates/lsmdb/src/lib.rs:
crates/lsmdb/src/bloom.rs:
crates/lsmdb/src/cache.rs:
crates/lsmdb/src/crc32.rs:
crates/lsmdb/src/db.rs:
crates/lsmdb/src/memtable.rs:
crates/lsmdb/src/sstable.rs:
crates/lsmdb/src/wal.rs:
