/root/repo/target/debug/deps/hepfile-dfb4553aa43f979f.d: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs

/root/repo/target/debug/deps/libhepfile-dfb4553aa43f979f.rlib: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs

/root/repo/target/debug/deps/libhepfile-dfb4553aa43f979f.rmeta: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs

crates/hepfile/src/lib.rs:
crates/hepfile/src/gridrun.rs:
crates/hepfile/src/pfs.rs:
crates/hepfile/src/table.rs:
