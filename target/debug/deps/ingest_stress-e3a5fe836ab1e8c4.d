/root/repo/target/debug/deps/ingest_stress-e3a5fe836ab1e8c4.d: crates/hepnos/tests/ingest_stress.rs

/root/repo/target/debug/deps/ingest_stress-e3a5fe836ab1e8c4: crates/hepnos/tests/ingest_stress.rs

crates/hepnos/tests/ingest_stress.rs:
