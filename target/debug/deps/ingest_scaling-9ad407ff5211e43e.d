/root/repo/target/debug/deps/ingest_scaling-9ad407ff5211e43e.d: crates/bench/src/bin/ingest_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libingest_scaling-9ad407ff5211e43e.rmeta: crates/bench/src/bin/ingest_scaling.rs Cargo.toml

crates/bench/src/bin/ingest_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
