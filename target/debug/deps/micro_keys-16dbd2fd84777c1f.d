/root/repo/target/debug/deps/micro_keys-16dbd2fd84777c1f.d: crates/bench/benches/micro_keys.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_keys-16dbd2fd84777c1f.rmeta: crates/bench/benches/micro_keys.rs Cargo.toml

crates/bench/benches/micro_keys.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
