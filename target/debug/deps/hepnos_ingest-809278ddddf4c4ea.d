/root/repo/target/debug/deps/hepnos_ingest-809278ddddf4c4ea.d: crates/tools/src/bin/hepnos_ingest.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_ingest-809278ddddf4c4ea.rmeta: crates/tools/src/bin/hepnos_ingest.rs Cargo.toml

crates/tools/src/bin/hepnos_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
