/root/repo/target/debug/deps/micro_cache-d9fde76f9189f08e.d: crates/bench/benches/micro_cache.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_cache-d9fde76f9189f08e.rmeta: crates/bench/benches/micro_cache.rs Cargo.toml

crates/bench/benches/micro_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
