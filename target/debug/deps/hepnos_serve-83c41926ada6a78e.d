/root/repo/target/debug/deps/hepnos_serve-83c41926ada6a78e.d: crates/tools/src/bin/hepnos_serve.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_serve-83c41926ada6a78e.rmeta: crates/tools/src/bin/hepnos_serve.rs Cargo.toml

crates/tools/src/bin/hepnos_serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
