/root/repo/target/debug/deps/hepnos_ingest-74db01d56a11edb4.d: crates/tools/src/bin/hepnos_ingest.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_ingest-74db01d56a11edb4.rmeta: crates/tools/src/bin/hepnos_ingest.rs Cargo.toml

crates/tools/src/bin/hepnos_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
