/root/repo/target/debug/deps/argos-ee48b40f388c5f78.d: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs Cargo.toml

/root/repo/target/debug/deps/libargos-ee48b40f388c5f78.rmeta: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs Cargo.toml

crates/argos/src/lib.rs:
crates/argos/src/eventual.rs:
crates/argos/src/pool.rs:
crates/argos/src/runtime.rs:
crates/argos/src/sync.rs:
crates/argos/src/xstream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
