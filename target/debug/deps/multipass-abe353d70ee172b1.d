/root/repo/target/debug/deps/multipass-abe353d70ee172b1.d: crates/bench/src/bin/multipass.rs

/root/repo/target/debug/deps/multipass-abe353d70ee172b1: crates/bench/src/bin/multipass.rs

crates/bench/src/bin/multipass.rs:
