/root/repo/target/debug/deps/micro_cache-c10008d42f20f3be.d: crates/bench/benches/micro_cache.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_cache-c10008d42f20f3be.rmeta: crates/bench/benches/micro_cache.rs Cargo.toml

crates/bench/benches/micro_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
