/root/repo/target/debug/deps/nova-6d60fafcb19bc0d9.d: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs

/root/repo/target/debug/deps/libnova-6d60fafcb19bc0d9.rlib: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs

/root/repo/target/debug/deps/libnova-6d60fafcb19bc0d9.rmeta: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs

crates/nova/src/lib.rs:
crates/nova/src/files.rs:
crates/nova/src/generator.rs:
crates/nova/src/loader.rs:
crates/nova/src/selection.rs:
crates/nova/src/spectrum.rs:
crates/nova/src/data.rs:
