/root/repo/target/debug/deps/binser_prop-ec5ce51ce1f8c99d.d: crates/hepnos/tests/binser_prop.rs Cargo.toml

/root/repo/target/debug/deps/libbinser_prop-ec5ce51ce1f8c99d.rmeta: crates/hepnos/tests/binser_prop.rs Cargo.toml

crates/hepnos/tests/binser_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
