/root/repo/target/debug/deps/margo-ad555de3011aca72.d: crates/margo/src/lib.rs

/root/repo/target/debug/deps/margo-ad555de3011aca72: crates/margo/src/lib.rs

crates/margo/src/lib.rs:
