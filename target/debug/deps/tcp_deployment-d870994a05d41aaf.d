/root/repo/target/debug/deps/tcp_deployment-d870994a05d41aaf.d: tests/tcp_deployment.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_deployment-d870994a05d41aaf.rmeta: tests/tcp_deployment.rs Cargo.toml

tests/tcp_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
