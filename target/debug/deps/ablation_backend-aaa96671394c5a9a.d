/root/repo/target/debug/deps/ablation_backend-aaa96671394c5a9a.d: crates/bench/benches/ablation_backend.rs

/root/repo/target/debug/deps/ablation_backend-aaa96671394c5a9a: crates/bench/benches/ablation_backend.rs

crates/bench/benches/ablation_backend.rs:
