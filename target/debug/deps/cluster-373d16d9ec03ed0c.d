/root/repo/target/debug/deps/cluster-373d16d9ec03ed0c.d: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-373d16d9ec03ed0c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/filewf.rs:
crates/cluster/src/hepnoswf.rs:
crates/cluster/src/ingestwf.rs:
crates/cluster/src/theta.rs:
crates/cluster/src/vt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
