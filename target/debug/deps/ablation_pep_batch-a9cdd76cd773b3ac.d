/root/repo/target/debug/deps/ablation_pep_batch-a9cdd76cd773b3ac.d: crates/bench/benches/ablation_pep_batch.rs

/root/repo/target/debug/deps/ablation_pep_batch-a9cdd76cd773b3ac: crates/bench/benches/ablation_pep_batch.rs

crates/bench/benches/ablation_pep_batch.rs:
