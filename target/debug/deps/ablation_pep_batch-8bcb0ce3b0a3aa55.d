/root/repo/target/debug/deps/ablation_pep_batch-8bcb0ce3b0a3aa55.d: crates/bench/benches/ablation_pep_batch.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pep_batch-8bcb0ce3b0a3aa55.rmeta: crates/bench/benches/ablation_pep_batch.rs Cargo.toml

crates/bench/benches/ablation_pep_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
