/root/repo/target/debug/deps/hepnos_select-a99ced7010af14d1.d: crates/tools/src/bin/hepnos_select.rs

/root/repo/target/debug/deps/hepnos_select-a99ced7010af14d1: crates/tools/src/bin/hepnos_select.rs

crates/tools/src/bin/hepnos_select.rs:
