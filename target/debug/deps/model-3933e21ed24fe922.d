/root/repo/target/debug/deps/model-3933e21ed24fe922.d: crates/lsmdb/tests/model.rs Cargo.toml

/root/repo/target/debug/deps/libmodel-3933e21ed24fe922.rmeta: crates/lsmdb/tests/model.rs Cargo.toml

crates/lsmdb/tests/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
