/root/repo/target/debug/deps/lsmdb-430881d8873677fd.d: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs

/root/repo/target/debug/deps/lsmdb-430881d8873677fd: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs

crates/lsmdb/src/lib.rs:
crates/lsmdb/src/bloom.rs:
crates/lsmdb/src/cache.rs:
crates/lsmdb/src/crc32.rs:
crates/lsmdb/src/db.rs:
crates/lsmdb/src/memtable.rs:
crates/lsmdb/src/sstable.rs:
crates/lsmdb/src/wal.rs:
