/root/repo/target/debug/deps/equal_results-8b52ef625312ab00.d: tests/equal_results.rs

/root/repo/target/debug/deps/equal_results-8b52ef625312ab00: tests/equal_results.rs

tests/equal_results.rs:
