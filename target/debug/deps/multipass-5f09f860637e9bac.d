/root/repo/target/debug/deps/multipass-5f09f860637e9bac.d: crates/bench/src/bin/multipass.rs Cargo.toml

/root/repo/target/debug/deps/libmultipass-5f09f860637e9bac.rmeta: crates/bench/src/bin/multipass.rs Cargo.toml

crates/bench/src/bin/multipass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
