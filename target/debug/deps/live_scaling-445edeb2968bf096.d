/root/repo/target/debug/deps/live_scaling-445edeb2968bf096.d: crates/bench/src/bin/live_scaling.rs

/root/repo/target/debug/deps/live_scaling-445edeb2968bf096: crates/bench/src/bin/live_scaling.rs

crates/bench/src/bin/live_scaling.rs:
