/root/repo/target/debug/deps/micro_keys-455da5d04b9e124e.d: crates/bench/benches/micro_keys.rs

/root/repo/target/debug/deps/micro_keys-455da5d04b9e124e: crates/bench/benches/micro_keys.rs

crates/bench/benches/micro_keys.rs:
