/root/repo/target/debug/deps/datastore_api-1456f9f58e73126a.d: crates/hepnos/tests/datastore_api.rs

/root/repo/target/debug/deps/datastore_api-1456f9f58e73126a: crates/hepnos/tests/datastore_api.rs

crates/hepnos/tests/datastore_api.rs:
