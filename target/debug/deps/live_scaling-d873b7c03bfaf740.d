/root/repo/target/debug/deps/live_scaling-d873b7c03bfaf740.d: crates/bench/src/bin/live_scaling.rs

/root/repo/target/debug/deps/live_scaling-d873b7c03bfaf740: crates/bench/src/bin/live_scaling.rs

crates/bench/src/bin/live_scaling.rs:
