/root/repo/target/debug/deps/hepnos_serve-d2eea494f05bb367.d: crates/tools/src/bin/hepnos_serve.rs

/root/repo/target/debug/deps/hepnos_serve-d2eea494f05bb367: crates/tools/src/bin/hepnos_serve.rs

crates/tools/src/bin/hepnos_serve.rs:
