/root/repo/target/debug/deps/figure2-2d6ac6361490f492.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-2d6ac6361490f492: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
