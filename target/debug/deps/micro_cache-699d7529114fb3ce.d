/root/repo/target/debug/deps/micro_cache-699d7529114fb3ce.d: crates/bench/benches/micro_cache.rs

/root/repo/target/debug/deps/micro_cache-699d7529114fb3ce: crates/bench/benches/micro_cache.rs

crates/bench/benches/micro_cache.rs:
