/root/repo/target/debug/deps/hepnos_ls-a233899df9c6e2f5.d: crates/tools/src/bin/hepnos_ls.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_ls-a233899df9c6e2f5.rmeta: crates/tools/src/bin/hepnos_ls.rs Cargo.toml

crates/tools/src/bin/hepnos_ls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
