/root/repo/target/debug/deps/bedrock-79d8bcab6fa7dfa9.d: crates/bedrock/src/lib.rs

/root/repo/target/debug/deps/libbedrock-79d8bcab6fa7dfa9.rlib: crates/bedrock/src/lib.rs

/root/repo/target/debug/deps/libbedrock-79d8bcab6fa7dfa9.rmeta: crates/bedrock/src/lib.rs

crates/bedrock/src/lib.rs:
