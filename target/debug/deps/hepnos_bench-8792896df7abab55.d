/root/repo/target/debug/deps/hepnos_bench-8792896df7abab55.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhepnos_bench-8792896df7abab55.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhepnos_bench-8792896df7abab55.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
