/root/repo/target/debug/deps/hepnos_bench-a93a2b629c8a392c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_bench-a93a2b629c8a392c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
