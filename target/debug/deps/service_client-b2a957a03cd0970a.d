/root/repo/target/debug/deps/service_client-b2a957a03cd0970a.d: crates/yokan/tests/service_client.rs

/root/repo/target/debug/deps/service_client-b2a957a03cd0970a: crates/yokan/tests/service_client.rs

crates/yokan/tests/service_client.rs:
