/root/repo/target/debug/deps/weak_scaling-705a643cf2de014f.d: crates/bench/src/bin/weak_scaling.rs

/root/repo/target/debug/deps/weak_scaling-705a643cf2de014f: crates/bench/src/bin/weak_scaling.rs

crates/bench/src/bin/weak_scaling.rs:
