/root/repo/target/debug/deps/multipass-40176c8cfef7b50c.d: crates/bench/src/bin/multipass.rs Cargo.toml

/root/repo/target/debug/deps/libmultipass-40176c8cfef7b50c.rmeta: crates/bench/src/bin/multipass.rs Cargo.toml

crates/bench/src/bin/multipass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
