/root/repo/target/debug/deps/concurrent_workloads-970d8031b77d6696.d: tests/concurrent_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent_workloads-970d8031b77d6696.rmeta: tests/concurrent_workloads.rs Cargo.toml

tests/concurrent_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
