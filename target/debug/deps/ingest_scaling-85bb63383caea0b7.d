/root/repo/target/debug/deps/ingest_scaling-85bb63383caea0b7.d: crates/bench/src/bin/ingest_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libingest_scaling-85bb63383caea0b7.rmeta: crates/bench/src/bin/ingest_scaling.rs Cargo.toml

crates/bench/src/bin/ingest_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
