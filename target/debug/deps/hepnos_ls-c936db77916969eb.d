/root/repo/target/debug/deps/hepnos_ls-c936db77916969eb.d: crates/tools/src/bin/hepnos_ls.rs

/root/repo/target/debug/deps/hepnos_ls-c936db77916969eb: crates/tools/src/bin/hepnos_ls.rs

crates/tools/src/bin/hepnos_ls.rs:
