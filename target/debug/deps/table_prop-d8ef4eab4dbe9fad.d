/root/repo/target/debug/deps/table_prop-d8ef4eab4dbe9fad.d: crates/hepfile/tests/table_prop.rs

/root/repo/target/debug/deps/table_prop-d8ef4eab4dbe9fad: crates/hepfile/tests/table_prop.rs

crates/hepfile/tests/table_prop.rs:
