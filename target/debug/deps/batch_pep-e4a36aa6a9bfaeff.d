/root/repo/target/debug/deps/batch_pep-e4a36aa6a9bfaeff.d: crates/hepnos/tests/batch_pep.rs

/root/repo/target/debug/deps/batch_pep-e4a36aa6a9bfaeff: crates/hepnos/tests/batch_pep.rs

crates/hepnos/tests/batch_pep.rs:
