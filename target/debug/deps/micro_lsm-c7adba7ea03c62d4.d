/root/repo/target/debug/deps/micro_lsm-c7adba7ea03c62d4.d: crates/bench/benches/micro_lsm.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_lsm-c7adba7ea03c62d4.rmeta: crates/bench/benches/micro_lsm.rs Cargo.toml

crates/bench/benches/micro_lsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
