/root/repo/target/debug/deps/argos-2cf421796f54e440.d: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs

/root/repo/target/debug/deps/libargos-2cf421796f54e440.rlib: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs

/root/repo/target/debug/deps/libargos-2cf421796f54e440.rmeta: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs

crates/argos/src/lib.rs:
crates/argos/src/eventual.rs:
crates/argos/src/pool.rs:
crates/argos/src/runtime.rs:
crates/argos/src/sync.rs:
crates/argos/src/xstream.rs:
