/root/repo/target/debug/deps/lsmdb-49cb6f102f148449.d: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/liblsmdb-49cb6f102f148449.rmeta: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs Cargo.toml

crates/lsmdb/src/lib.rs:
crates/lsmdb/src/bloom.rs:
crates/lsmdb/src/cache.rs:
crates/lsmdb/src/crc32.rs:
crates/lsmdb/src/db.rs:
crates/lsmdb/src/memtable.rs:
crates/lsmdb/src/sstable.rs:
crates/lsmdb/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
