/root/repo/target/debug/deps/ablation_batching-36f68d296aa11947.d: crates/bench/benches/ablation_batching.rs Cargo.toml

/root/repo/target/debug/deps/libablation_batching-36f68d296aa11947.rmeta: crates/bench/benches/ablation_batching.rs Cargo.toml

crates/bench/benches/ablation_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
