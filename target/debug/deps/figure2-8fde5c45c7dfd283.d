/root/repo/target/debug/deps/figure2-8fde5c45c7dfd283.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-8fde5c45c7dfd283: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
