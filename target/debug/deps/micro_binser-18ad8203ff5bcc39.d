/root/repo/target/debug/deps/micro_binser-18ad8203ff5bcc39.d: crates/bench/benches/micro_binser.rs

/root/repo/target/debug/deps/micro_binser-18ad8203ff5bcc39: crates/bench/benches/micro_binser.rs

crates/bench/benches/micro_binser.rs:
