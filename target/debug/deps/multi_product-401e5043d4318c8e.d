/root/repo/target/debug/deps/multi_product-401e5043d4318c8e.d: crates/nova/tests/multi_product.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_product-401e5043d4318c8e.rmeta: crates/nova/tests/multi_product.rs Cargo.toml

crates/nova/tests/multi_product.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
