/root/repo/target/debug/deps/micro_binser-f1ddefeec018f53d.d: crates/bench/benches/micro_binser.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_binser-f1ddefeec018f53d.rmeta: crates/bench/benches/micro_binser.rs Cargo.toml

crates/bench/benches/micro_binser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
