/root/repo/target/debug/deps/hepnos_serve-007a782dcc52227f.d: crates/tools/src/bin/hepnos_serve.rs

/root/repo/target/debug/deps/hepnos_serve-007a782dcc52227f: crates/tools/src/bin/hepnos_serve.rs

crates/tools/src/bin/hepnos_serve.rs:
