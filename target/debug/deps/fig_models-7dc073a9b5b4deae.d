/root/repo/target/debug/deps/fig_models-7dc073a9b5b4deae.d: crates/bench/benches/fig_models.rs Cargo.toml

/root/repo/target/debug/deps/libfig_models-7dc073a9b5b4deae.rmeta: crates/bench/benches/fig_models.rs Cargo.toml

crates/bench/benches/fig_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
