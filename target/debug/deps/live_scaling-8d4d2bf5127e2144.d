/root/repo/target/debug/deps/live_scaling-8d4d2bf5127e2144.d: crates/bench/src/bin/live_scaling.rs Cargo.toml

/root/repo/target/debug/deps/liblive_scaling-8d4d2bf5127e2144.rmeta: crates/bench/src/bin/live_scaling.rs Cargo.toml

crates/bench/src/bin/live_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
