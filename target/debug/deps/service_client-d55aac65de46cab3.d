/root/repo/target/debug/deps/service_client-d55aac65de46cab3.d: crates/yokan/tests/service_client.rs Cargo.toml

/root/repo/target/debug/deps/libservice_client-d55aac65de46cab3.rmeta: crates/yokan/tests/service_client.rs Cargo.toml

crates/yokan/tests/service_client.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
