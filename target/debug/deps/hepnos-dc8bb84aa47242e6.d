/root/repo/target/debug/deps/hepnos-dc8bb84aa47242e6.d: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs

/root/repo/target/debug/deps/hepnos-dc8bb84aa47242e6: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs

crates/hepnos/src/lib.rs:
crates/hepnos/src/batch.rs:
crates/hepnos/src/binser.rs:
crates/hepnos/src/datastore.rs:
crates/hepnos/src/error.rs:
crates/hepnos/src/keys.rs:
crates/hepnos/src/pep.rs:
crates/hepnos/src/placement.rs:
crates/hepnos/src/prefetch.rs:
crates/hepnos/src/rescale.rs:
crates/hepnos/src/testing.rs:
crates/hepnos/src/uuid.rs:
