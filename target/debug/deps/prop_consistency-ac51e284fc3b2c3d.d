/root/repo/target/debug/deps/prop_consistency-ac51e284fc3b2c3d.d: crates/yokan/tests/prop_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libprop_consistency-ac51e284fc3b2c3d.rmeta: crates/yokan/tests/prop_consistency.rs Cargo.toml

crates/yokan/tests/prop_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
