/root/repo/target/debug/deps/mercurio-54aafb652f3d0f4d.d: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libmercurio-54aafb652f3d0f4d.rmeta: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs Cargo.toml

crates/mercurio/src/lib.rs:
crates/mercurio/src/bulk.rs:
crates/mercurio/src/endpoint.rs:
crates/mercurio/src/error.rs:
crates/mercurio/src/local.rs:
crates/mercurio/src/model.rs:
crates/mercurio/src/tcp.rs:
crates/mercurio/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
