/root/repo/target/debug/deps/weak_scaling-32b27af06f5d3ec1.d: crates/bench/src/bin/weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libweak_scaling-32b27af06f5d3ec1.rmeta: crates/bench/src/bin/weak_scaling.rs Cargo.toml

crates/bench/src/bin/weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
