/root/repo/target/debug/deps/equal_results-30b0d9b3a944858f.d: tests/equal_results.rs Cargo.toml

/root/repo/target/debug/deps/libequal_results-30b0d9b3a944858f.rmeta: tests/equal_results.rs Cargo.toml

tests/equal_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
