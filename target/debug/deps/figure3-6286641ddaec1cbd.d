/root/repo/target/debug/deps/figure3-6286641ddaec1cbd.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-6286641ddaec1cbd: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
