/root/repo/target/debug/deps/figure2-00a855c09f39de31.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-00a855c09f39de31: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
