/root/repo/target/debug/deps/micro_binser-8a8a2dee0dc01a8f.d: crates/bench/benches/micro_binser.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_binser-8a8a2dee0dc01a8f.rmeta: crates/bench/benches/micro_binser.rs Cargo.toml

crates/bench/benches/micro_binser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
