/root/repo/target/debug/deps/hepnos_select-02fdb439b8c5aa05.d: crates/tools/src/bin/hepnos_select.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_select-02fdb439b8c5aa05.rmeta: crates/tools/src/bin/hepnos_select.rs Cargo.toml

crates/tools/src/bin/hepnos_select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
