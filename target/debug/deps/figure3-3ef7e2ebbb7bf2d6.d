/root/repo/target/debug/deps/figure3-3ef7e2ebbb7bf2d6.d: crates/bench/src/bin/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-3ef7e2ebbb7bf2d6.rmeta: crates/bench/src/bin/figure3.rs Cargo.toml

crates/bench/src/bin/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
