/root/repo/target/debug/deps/failure_injection-a7e8cd4a11e72642.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-a7e8cd4a11e72642: tests/failure_injection.rs

tests/failure_injection.rs:
