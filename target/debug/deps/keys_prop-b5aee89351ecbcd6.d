/root/repo/target/debug/deps/keys_prop-b5aee89351ecbcd6.d: crates/hepnos/tests/keys_prop.rs

/root/repo/target/debug/deps/keys_prop-b5aee89351ecbcd6: crates/hepnos/tests/keys_prop.rs

crates/hepnos/tests/keys_prop.rs:
