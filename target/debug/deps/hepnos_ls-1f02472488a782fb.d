/root/repo/target/debug/deps/hepnos_ls-1f02472488a782fb.d: crates/tools/src/bin/hepnos_ls.rs

/root/repo/target/debug/deps/hepnos_ls-1f02472488a782fb: crates/tools/src/bin/hepnos_ls.rs

crates/tools/src/bin/hepnos_ls.rs:
