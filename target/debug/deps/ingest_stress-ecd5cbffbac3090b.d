/root/repo/target/debug/deps/ingest_stress-ecd5cbffbac3090b.d: crates/hepnos/tests/ingest_stress.rs Cargo.toml

/root/repo/target/debug/deps/libingest_stress-ecd5cbffbac3090b.rmeta: crates/hepnos/tests/ingest_stress.rs Cargo.toml

crates/hepnos/tests/ingest_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
