/root/repo/target/debug/deps/batch_pep-8790a9e4212e3e4e.d: crates/hepnos/tests/batch_pep.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_pep-8790a9e4212e3e4e.rmeta: crates/hepnos/tests/batch_pep.rs Cargo.toml

crates/hepnos/tests/batch_pep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
