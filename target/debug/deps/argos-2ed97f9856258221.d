/root/repo/target/debug/deps/argos-2ed97f9856258221.d: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs Cargo.toml

/root/repo/target/debug/deps/libargos-2ed97f9856258221.rmeta: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs Cargo.toml

crates/argos/src/lib.rs:
crates/argos/src/eventual.rs:
crates/argos/src/pool.rs:
crates/argos/src/runtime.rs:
crates/argos/src/sync.rs:
crates/argos/src/xstream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
