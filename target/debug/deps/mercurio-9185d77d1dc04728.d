/root/repo/target/debug/deps/mercurio-9185d77d1dc04728.d: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs

/root/repo/target/debug/deps/mercurio-9185d77d1dc04728: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs

crates/mercurio/src/lib.rs:
crates/mercurio/src/bulk.rs:
crates/mercurio/src/endpoint.rs:
crates/mercurio/src/error.rs:
crates/mercurio/src/local.rs:
crates/mercurio/src/model.rs:
crates/mercurio/src/tcp.rs:
crates/mercurio/src/wire.rs:
