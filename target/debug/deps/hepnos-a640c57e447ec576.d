/root/repo/target/debug/deps/hepnos-a640c57e447ec576.d: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos-a640c57e447ec576.rmeta: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs Cargo.toml

crates/hepnos/src/lib.rs:
crates/hepnos/src/batch.rs:
crates/hepnos/src/binser.rs:
crates/hepnos/src/datastore.rs:
crates/hepnos/src/error.rs:
crates/hepnos/src/keys.rs:
crates/hepnos/src/pep.rs:
crates/hepnos/src/placement.rs:
crates/hepnos/src/prefetch.rs:
crates/hepnos/src/rescale.rs:
crates/hepnos/src/testing.rs:
crates/hepnos/src/uuid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
