/root/repo/target/debug/deps/cluster-1440ba9f3e18ce15.d: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs

/root/repo/target/debug/deps/cluster-1440ba9f3e18ce15: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs

crates/cluster/src/lib.rs:
crates/cluster/src/filewf.rs:
crates/cluster/src/hepnoswf.rs:
crates/cluster/src/ingestwf.rs:
crates/cluster/src/theta.rs:
crates/cluster/src/vt.rs:
