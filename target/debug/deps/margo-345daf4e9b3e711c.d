/root/repo/target/debug/deps/margo-345daf4e9b3e711c.d: crates/margo/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmargo-345daf4e9b3e711c.rmeta: crates/margo/src/lib.rs Cargo.toml

crates/margo/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
