/root/repo/target/debug/deps/figure3-063c747ca2a1ca13.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-063c747ca2a1ca13: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
