/root/repo/target/debug/deps/model-6c7eb0a119a048c6.d: crates/lsmdb/tests/model.rs

/root/repo/target/debug/deps/model-6c7eb0a119a048c6: crates/lsmdb/tests/model.rs

crates/lsmdb/tests/model.rs:
