/root/repo/target/debug/deps/hepnos_bench-690c973777bcc412.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhepnos_bench-690c973777bcc412.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhepnos_bench-690c973777bcc412.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
