/root/repo/target/debug/deps/fig_models-ce5d0f494c429a5c.d: crates/bench/benches/fig_models.rs

/root/repo/target/debug/deps/fig_models-ce5d0f494c429a5c: crates/bench/benches/fig_models.rs

crates/bench/benches/fig_models.rs:
