/root/repo/target/debug/deps/yokan-a88bc30426519c29.d: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs

/root/repo/target/debug/deps/libyokan-a88bc30426519c29.rlib: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs

/root/repo/target/debug/deps/libyokan-a88bc30426519c29.rmeta: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs

crates/yokan/src/lib.rs:
crates/yokan/src/backend.rs:
crates/yokan/src/client.rs:
crates/yokan/src/encoding.rs:
crates/yokan/src/error.rs:
crates/yokan/src/service.rs:
