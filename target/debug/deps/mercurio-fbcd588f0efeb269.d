/root/repo/target/debug/deps/mercurio-fbcd588f0efeb269.d: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs

/root/repo/target/debug/deps/libmercurio-fbcd588f0efeb269.rlib: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs

/root/repo/target/debug/deps/libmercurio-fbcd588f0efeb269.rmeta: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs

crates/mercurio/src/lib.rs:
crates/mercurio/src/bulk.rs:
crates/mercurio/src/endpoint.rs:
crates/mercurio/src/error.rs:
crates/mercurio/src/local.rs:
crates/mercurio/src/model.rs:
crates/mercurio/src/tcp.rs:
crates/mercurio/src/wire.rs:
