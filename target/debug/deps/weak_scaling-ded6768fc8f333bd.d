/root/repo/target/debug/deps/weak_scaling-ded6768fc8f333bd.d: crates/bench/src/bin/weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libweak_scaling-ded6768fc8f333bd.rmeta: crates/bench/src/bin/weak_scaling.rs Cargo.toml

crates/bench/src/bin/weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
