/root/repo/target/debug/deps/margo-55ba864e2c7d8bb0.d: crates/margo/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmargo-55ba864e2c7d8bb0.rmeta: crates/margo/src/lib.rs Cargo.toml

crates/margo/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
