/root/repo/target/debug/deps/hepnos_bench-c293f30766f8a31a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_bench-c293f30766f8a31a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
