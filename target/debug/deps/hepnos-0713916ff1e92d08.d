/root/repo/target/debug/deps/hepnos-0713916ff1e92d08.d: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs

/root/repo/target/debug/deps/libhepnos-0713916ff1e92d08.rlib: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs

/root/repo/target/debug/deps/libhepnos-0713916ff1e92d08.rmeta: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs

crates/hepnos/src/lib.rs:
crates/hepnos/src/batch.rs:
crates/hepnos/src/binser.rs:
crates/hepnos/src/datastore.rs:
crates/hepnos/src/error.rs:
crates/hepnos/src/keys.rs:
crates/hepnos/src/pep.rs:
crates/hepnos/src/placement.rs:
crates/hepnos/src/prefetch.rs:
crates/hepnos/src/rescale.rs:
crates/hepnos/src/testing.rs:
crates/hepnos/src/uuid.rs:
