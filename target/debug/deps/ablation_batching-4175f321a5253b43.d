/root/repo/target/debug/deps/ablation_batching-4175f321a5253b43.d: crates/bench/benches/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-4175f321a5253b43: crates/bench/benches/ablation_batching.rs

crates/bench/benches/ablation_batching.rs:
