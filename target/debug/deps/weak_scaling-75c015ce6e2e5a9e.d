/root/repo/target/debug/deps/weak_scaling-75c015ce6e2e5a9e.d: crates/bench/src/bin/weak_scaling.rs

/root/repo/target/debug/deps/weak_scaling-75c015ce6e2e5a9e: crates/bench/src/bin/weak_scaling.rs

crates/bench/src/bin/weak_scaling.rs:
