/root/repo/target/debug/deps/ablation_backend-174c559ef8075378.d: crates/bench/benches/ablation_backend.rs Cargo.toml

/root/repo/target/debug/deps/libablation_backend-174c559ef8075378.rmeta: crates/bench/benches/ablation_backend.rs Cargo.toml

crates/bench/benches/ablation_backend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
