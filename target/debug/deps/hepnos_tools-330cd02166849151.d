/root/repo/target/debug/deps/hepnos_tools-330cd02166849151.d: crates/tools/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_tools-330cd02166849151.rmeta: crates/tools/src/lib.rs Cargo.toml

crates/tools/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
