/root/repo/target/debug/deps/ingest_scaling-16b3dbd4bfcee114.d: crates/bench/src/bin/ingest_scaling.rs

/root/repo/target/debug/deps/ingest_scaling-16b3dbd4bfcee114: crates/bench/src/bin/ingest_scaling.rs

crates/bench/src/bin/ingest_scaling.rs:
