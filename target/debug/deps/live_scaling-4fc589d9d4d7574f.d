/root/repo/target/debug/deps/live_scaling-4fc589d9d4d7574f.d: crates/bench/src/bin/live_scaling.rs

/root/repo/target/debug/deps/live_scaling-4fc589d9d4d7574f: crates/bench/src/bin/live_scaling.rs

crates/bench/src/bin/live_scaling.rs:
