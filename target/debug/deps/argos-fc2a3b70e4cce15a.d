/root/repo/target/debug/deps/argos-fc2a3b70e4cce15a.d: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs

/root/repo/target/debug/deps/argos-fc2a3b70e4cce15a: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs

crates/argos/src/lib.rs:
crates/argos/src/eventual.rs:
crates/argos/src/pool.rs:
crates/argos/src/runtime.rs:
crates/argos/src/sync.rs:
crates/argos/src/xstream.rs:
