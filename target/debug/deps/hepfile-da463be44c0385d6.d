/root/repo/target/debug/deps/hepfile-da463be44c0385d6.d: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libhepfile-da463be44c0385d6.rmeta: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs Cargo.toml

crates/hepfile/src/lib.rs:
crates/hepfile/src/gridrun.rs:
crates/hepfile/src/pfs.rs:
crates/hepfile/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
