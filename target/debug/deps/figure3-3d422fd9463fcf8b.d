/root/repo/target/debug/deps/figure3-3d422fd9463fcf8b.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-3d422fd9463fcf8b: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
