/root/repo/target/debug/deps/ingest_scaling-62c171473f18e3eb.d: crates/bench/src/bin/ingest_scaling.rs

/root/repo/target/debug/deps/ingest_scaling-62c171473f18e3eb: crates/bench/src/bin/ingest_scaling.rs

crates/bench/src/bin/ingest_scaling.rs:
