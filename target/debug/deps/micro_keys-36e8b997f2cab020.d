/root/repo/target/debug/deps/micro_keys-36e8b997f2cab020.d: crates/bench/benches/micro_keys.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_keys-36e8b997f2cab020.rmeta: crates/bench/benches/micro_keys.rs Cargo.toml

crates/bench/benches/micro_keys.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
