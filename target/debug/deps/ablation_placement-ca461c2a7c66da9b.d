/root/repo/target/debug/deps/ablation_placement-ca461c2a7c66da9b.d: crates/bench/benches/ablation_placement.rs Cargo.toml

/root/repo/target/debug/deps/libablation_placement-ca461c2a7c66da9b.rmeta: crates/bench/benches/ablation_placement.rs Cargo.toml

crates/bench/benches/ablation_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
