/root/repo/target/debug/deps/live_scaling-c5c57b28e74ec1e3.d: crates/bench/src/bin/live_scaling.rs Cargo.toml

/root/repo/target/debug/deps/liblive_scaling-c5c57b28e74ec1e3.rmeta: crates/bench/src/bin/live_scaling.rs Cargo.toml

crates/bench/src/bin/live_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
