/root/repo/target/debug/deps/serde-b7c41e75e89280df.d: shims/serde/src/lib.rs shims/serde/src/de.rs shims/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-b7c41e75e89280df.rlib: shims/serde/src/lib.rs shims/serde/src/de.rs shims/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-b7c41e75e89280df.rmeta: shims/serde/src/lib.rs shims/serde/src/de.rs shims/serde/src/ser.rs

shims/serde/src/lib.rs:
shims/serde/src/de.rs:
shims/serde/src/ser.rs:
