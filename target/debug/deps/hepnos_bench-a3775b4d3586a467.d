/root/repo/target/debug/deps/hepnos_bench-a3775b4d3586a467.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hepnos_bench-a3775b4d3586a467: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
