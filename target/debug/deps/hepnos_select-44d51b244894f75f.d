/root/repo/target/debug/deps/hepnos_select-44d51b244894f75f.d: crates/tools/src/bin/hepnos_select.rs

/root/repo/target/debug/deps/hepnos_select-44d51b244894f75f: crates/tools/src/bin/hepnos_select.rs

crates/tools/src/bin/hepnos_select.rs:
