/root/repo/target/debug/deps/hepnos_suite-7065d4abc68fb779.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_suite-7065d4abc68fb779.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
