/root/repo/target/debug/deps/nova-c7a22d58e76df8e9.d: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs Cargo.toml

/root/repo/target/debug/deps/libnova-c7a22d58e76df8e9.rmeta: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs Cargo.toml

crates/nova/src/lib.rs:
crates/nova/src/files.rs:
crates/nova/src/generator.rs:
crates/nova/src/loader.rs:
crates/nova/src/selection.rs:
crates/nova/src/spectrum.rs:
crates/nova/src/data.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
