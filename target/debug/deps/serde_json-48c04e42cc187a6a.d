/root/repo/target/debug/deps/serde_json-48c04e42cc187a6a.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-48c04e42cc187a6a: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
