/root/repo/target/debug/deps/hepnos_bench-14d5e4a59ebaf215.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hepnos_bench-14d5e4a59ebaf215: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
