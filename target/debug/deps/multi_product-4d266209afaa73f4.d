/root/repo/target/debug/deps/multi_product-4d266209afaa73f4.d: crates/nova/tests/multi_product.rs

/root/repo/target/debug/deps/multi_product-4d266209afaa73f4: crates/nova/tests/multi_product.rs

crates/nova/tests/multi_product.rs:
