/root/repo/target/debug/deps/cli_pipeline-68dea0e35bd31de4.d: crates/tools/tests/cli_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcli_pipeline-68dea0e35bd31de4.rmeta: crates/tools/tests/cli_pipeline.rs Cargo.toml

crates/tools/tests/cli_pipeline.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_hepnos-ingest=placeholder:hepnos-ingest
# env-dep:CARGO_BIN_EXE_hepnos-ls=placeholder:hepnos-ls
# env-dep:CARGO_BIN_EXE_hepnos-select=placeholder:hepnos-select
# env-dep:CARGO_BIN_EXE_hepnos-serve=placeholder:hepnos-serve
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
