/root/repo/target/debug/deps/hepnos_suite-683131b12336add4.d: src/lib.rs

/root/repo/target/debug/deps/hepnos_suite-683131b12336add4: src/lib.rs

src/lib.rs:
