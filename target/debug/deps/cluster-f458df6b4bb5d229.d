/root/repo/target/debug/deps/cluster-f458df6b4bb5d229.d: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs

/root/repo/target/debug/deps/libcluster-f458df6b4bb5d229.rlib: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs

/root/repo/target/debug/deps/libcluster-f458df6b4bb5d229.rmeta: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs

crates/cluster/src/lib.rs:
crates/cluster/src/filewf.rs:
crates/cluster/src/hepnoswf.rs:
crates/cluster/src/ingestwf.rs:
crates/cluster/src/theta.rs:
crates/cluster/src/vt.rs:
