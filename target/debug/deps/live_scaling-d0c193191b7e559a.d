/root/repo/target/debug/deps/live_scaling-d0c193191b7e559a.d: crates/bench/src/bin/live_scaling.rs Cargo.toml

/root/repo/target/debug/deps/liblive_scaling-d0c193191b7e559a.rmeta: crates/bench/src/bin/live_scaling.rs Cargo.toml

crates/bench/src/bin/live_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
