/root/repo/target/debug/deps/stress-3c8762c79d25f72b.d: crates/yokan/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-3c8762c79d25f72b.rmeta: crates/yokan/tests/stress.rs Cargo.toml

crates/yokan/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
