/root/repo/target/debug/deps/hepnos_serve-6e9c082e5bdf27ec.d: crates/tools/src/bin/hepnos_serve.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_serve-6e9c082e5bdf27ec.rmeta: crates/tools/src/bin/hepnos_serve.rs Cargo.toml

crates/tools/src/bin/hepnos_serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
