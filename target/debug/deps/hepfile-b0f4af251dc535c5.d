/root/repo/target/debug/deps/hepfile-b0f4af251dc535c5.d: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs

/root/repo/target/debug/deps/hepfile-b0f4af251dc535c5: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs

crates/hepfile/src/lib.rs:
crates/hepfile/src/gridrun.rs:
crates/hepfile/src/pfs.rs:
crates/hepfile/src/table.rs:
