/root/repo/target/debug/deps/stress-6b3a45f9d8852b34.d: crates/yokan/tests/stress.rs

/root/repo/target/debug/deps/stress-6b3a45f9d8852b34: crates/yokan/tests/stress.rs

crates/yokan/tests/stress.rs:
