/root/repo/target/debug/deps/hepnos_bench-e5d326492d6c94db.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_bench-e5d326492d6c94db.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
