/root/repo/target/debug/deps/binser_prop-b20edabc5c5fafbe.d: crates/hepnos/tests/binser_prop.rs

/root/repo/target/debug/deps/binser_prop-b20edabc5c5fafbe: crates/hepnos/tests/binser_prop.rs

crates/hepnos/tests/binser_prop.rs:
