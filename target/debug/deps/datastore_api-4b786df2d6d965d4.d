/root/repo/target/debug/deps/datastore_api-4b786df2d6d965d4.d: crates/hepnos/tests/datastore_api.rs Cargo.toml

/root/repo/target/debug/deps/libdatastore_api-4b786df2d6d965d4.rmeta: crates/hepnos/tests/datastore_api.rs Cargo.toml

crates/hepnos/tests/datastore_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
