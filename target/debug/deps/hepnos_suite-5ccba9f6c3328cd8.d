/root/repo/target/debug/deps/hepnos_suite-5ccba9f6c3328cd8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_suite-5ccba9f6c3328cd8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
