/root/repo/target/debug/deps/hepnos_select-90c622f0e0a38b8c.d: crates/tools/src/bin/hepnos_select.rs Cargo.toml

/root/repo/target/debug/deps/libhepnos_select-90c622f0e0a38b8c.rmeta: crates/tools/src/bin/hepnos_select.rs Cargo.toml

crates/tools/src/bin/hepnos_select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
