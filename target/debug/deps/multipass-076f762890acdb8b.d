/root/repo/target/debug/deps/multipass-076f762890acdb8b.d: crates/bench/src/bin/multipass.rs

/root/repo/target/debug/deps/multipass-076f762890acdb8b: crates/bench/src/bin/multipass.rs

crates/bench/src/bin/multipass.rs:
