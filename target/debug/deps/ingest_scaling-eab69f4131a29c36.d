/root/repo/target/debug/deps/ingest_scaling-eab69f4131a29c36.d: crates/bench/src/bin/ingest_scaling.rs

/root/repo/target/debug/deps/ingest_scaling-eab69f4131a29c36: crates/bench/src/bin/ingest_scaling.rs

crates/bench/src/bin/ingest_scaling.rs:
