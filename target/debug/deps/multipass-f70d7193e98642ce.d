/root/repo/target/debug/deps/multipass-f70d7193e98642ce.d: crates/bench/src/bin/multipass.rs Cargo.toml

/root/repo/target/debug/deps/libmultipass-f70d7193e98642ce.rmeta: crates/bench/src/bin/multipass.rs Cargo.toml

crates/bench/src/bin/multipass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
