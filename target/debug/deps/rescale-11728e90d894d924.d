/root/repo/target/debug/deps/rescale-11728e90d894d924.d: crates/hepnos/tests/rescale.rs

/root/repo/target/debug/deps/rescale-11728e90d894d924: crates/hepnos/tests/rescale.rs

crates/hepnos/tests/rescale.rs:
