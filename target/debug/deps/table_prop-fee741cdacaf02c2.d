/root/repo/target/debug/deps/table_prop-fee741cdacaf02c2.d: crates/hepfile/tests/table_prop.rs Cargo.toml

/root/repo/target/debug/deps/libtable_prop-fee741cdacaf02c2.rmeta: crates/hepfile/tests/table_prop.rs Cargo.toml

crates/hepfile/tests/table_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
