/root/repo/target/debug/deps/hepnos_ingest-6878d2e5c3016c18.d: crates/tools/src/bin/hepnos_ingest.rs

/root/repo/target/debug/deps/hepnos_ingest-6878d2e5c3016c18: crates/tools/src/bin/hepnos_ingest.rs

crates/tools/src/bin/hepnos_ingest.rs:
