/root/repo/target/debug/deps/hepnos_tools-abd97647adea2fc0.d: crates/tools/src/lib.rs

/root/repo/target/debug/deps/hepnos_tools-abd97647adea2fc0: crates/tools/src/lib.rs

crates/tools/src/lib.rs:
