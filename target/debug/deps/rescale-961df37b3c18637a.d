/root/repo/target/debug/deps/rescale-961df37b3c18637a.d: crates/hepnos/tests/rescale.rs Cargo.toml

/root/repo/target/debug/deps/librescale-961df37b3c18637a.rmeta: crates/hepnos/tests/rescale.rs Cargo.toml

crates/hepnos/tests/rescale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
