/root/repo/target/debug/deps/bedrock-19c39ed72ccde2a2.d: crates/bedrock/src/lib.rs

/root/repo/target/debug/deps/bedrock-19c39ed72ccde2a2: crates/bedrock/src/lib.rs

crates/bedrock/src/lib.rs:
