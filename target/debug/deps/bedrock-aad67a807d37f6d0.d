/root/repo/target/debug/deps/bedrock-aad67a807d37f6d0.d: crates/bedrock/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbedrock-aad67a807d37f6d0.rmeta: crates/bedrock/src/lib.rs Cargo.toml

crates/bedrock/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
