/root/repo/target/debug/deps/weak_scaling-194960dff3229af4.d: crates/bench/src/bin/weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libweak_scaling-194960dff3229af4.rmeta: crates/bench/src/bin/weak_scaling.rs Cargo.toml

crates/bench/src/bin/weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
