/root/repo/target/debug/deps/margo-3142e408f582a0d3.d: crates/margo/src/lib.rs

/root/repo/target/debug/deps/libmargo-3142e408f582a0d3.rlib: crates/margo/src/lib.rs

/root/repo/target/debug/deps/libmargo-3142e408f582a0d3.rmeta: crates/margo/src/lib.rs

crates/margo/src/lib.rs:
