/root/repo/target/debug/deps/cli_pipeline-27c5a43c9c2f193c.d: crates/tools/tests/cli_pipeline.rs

/root/repo/target/debug/deps/cli_pipeline-27c5a43c9c2f193c: crates/tools/tests/cli_pipeline.rs

crates/tools/tests/cli_pipeline.rs:

# env-dep:CARGO_BIN_EXE_hepnos-ingest=/root/repo/target/debug/hepnos-ingest
# env-dep:CARGO_BIN_EXE_hepnos-ls=/root/repo/target/debug/hepnos-ls
# env-dep:CARGO_BIN_EXE_hepnos-select=/root/repo/target/debug/hepnos-select
# env-dep:CARGO_BIN_EXE_hepnos-serve=/root/repo/target/debug/hepnos-serve
