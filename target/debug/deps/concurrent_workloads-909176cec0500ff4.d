/root/repo/target/debug/deps/concurrent_workloads-909176cec0500ff4.d: tests/concurrent_workloads.rs

/root/repo/target/debug/deps/concurrent_workloads-909176cec0500ff4: tests/concurrent_workloads.rs

tests/concurrent_workloads.rs:
