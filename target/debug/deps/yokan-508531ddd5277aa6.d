/root/repo/target/debug/deps/yokan-508531ddd5277aa6.d: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libyokan-508531ddd5277aa6.rmeta: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs Cargo.toml

crates/yokan/src/lib.rs:
crates/yokan/src/backend.rs:
crates/yokan/src/client.rs:
crates/yokan/src/encoding.rs:
crates/yokan/src/error.rs:
crates/yokan/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
