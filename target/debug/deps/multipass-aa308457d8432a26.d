/root/repo/target/debug/deps/multipass-aa308457d8432a26.d: crates/bench/src/bin/multipass.rs

/root/repo/target/debug/deps/multipass-aa308457d8432a26: crates/bench/src/bin/multipass.rs

crates/bench/src/bin/multipass.rs:
