/root/repo/target/debug/deps/multipass-5b908992391e8dce.d: crates/bench/src/bin/multipass.rs Cargo.toml

/root/repo/target/debug/deps/libmultipass-5b908992391e8dce.rmeta: crates/bench/src/bin/multipass.rs Cargo.toml

crates/bench/src/bin/multipass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
