/root/repo/target/debug/examples/tcp_cluster-a0f7c87f83e7d0db.d: examples/tcp_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libtcp_cluster-a0f7c87f83e7d0db.rmeta: examples/tcp_cluster.rs Cargo.toml

examples/tcp_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
