/root/repo/target/debug/examples/rescale-51f7a9081a3ffa26.d: examples/rescale.rs Cargo.toml

/root/repo/target/debug/examples/librescale-51f7a9081a3ffa26.rmeta: examples/rescale.rs Cargo.toml

examples/rescale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
