/root/repo/target/debug/examples/quickstart-031dba7b2a9ba3d0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-031dba7b2a9ba3d0: examples/quickstart.rs

examples/quickstart.rs:
