/root/repo/target/debug/examples/tcp_cluster-93f32d8a4d5c0d44.d: examples/tcp_cluster.rs

/root/repo/target/debug/examples/tcp_cluster-93f32d8a4d5c0d44: examples/tcp_cluster.rs

examples/tcp_cluster.rs:
