/root/repo/target/debug/examples/rescale-de5277eba18c4865.d: examples/rescale.rs

/root/repo/target/debug/examples/rescale-de5277eba18c4865: examples/rescale.rs

examples/rescale.rs:
