/root/repo/target/debug/examples/ingest_and_select-e8c13663f9430b46.d: examples/ingest_and_select.rs Cargo.toml

/root/repo/target/debug/examples/libingest_and_select-e8c13663f9430b46.rmeta: examples/ingest_and_select.rs Cargo.toml

examples/ingest_and_select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
