/root/repo/target/debug/examples/ingest_and_select-802c7f675a70dc26.d: examples/ingest_and_select.rs

/root/repo/target/debug/examples/ingest_and_select-802c7f675a70dc26: examples/ingest_and_select.rs

examples/ingest_and_select.rs:
