/root/repo/target/debug/examples/multinode_config-85e11b6926fe9a42.d: examples/multinode_config.rs Cargo.toml

/root/repo/target/debug/examples/libmultinode_config-85e11b6926fe9a42.rmeta: examples/multinode_config.rs Cargo.toml

examples/multinode_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
