/root/repo/target/debug/examples/multinode_config-f6a39b824a2f939e.d: examples/multinode_config.rs

/root/repo/target/debug/examples/multinode_config-f6a39b824a2f939e: examples/multinode_config.rs

examples/multinode_config.rs:
