/root/repo/target/release/deps/hepnos_bench-9b4f599093ffd54f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhepnos_bench-9b4f599093ffd54f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhepnos_bench-9b4f599093ffd54f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
