/root/repo/target/release/deps/yokan-850ec5807f43483c.d: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs

/root/repo/target/release/deps/libyokan-850ec5807f43483c.rlib: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs

/root/repo/target/release/deps/libyokan-850ec5807f43483c.rmeta: crates/yokan/src/lib.rs crates/yokan/src/backend.rs crates/yokan/src/client.rs crates/yokan/src/encoding.rs crates/yokan/src/error.rs crates/yokan/src/service.rs

crates/yokan/src/lib.rs:
crates/yokan/src/backend.rs:
crates/yokan/src/client.rs:
crates/yokan/src/encoding.rs:
crates/yokan/src/error.rs:
crates/yokan/src/service.rs:
