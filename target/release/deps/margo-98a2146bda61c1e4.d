/root/repo/target/release/deps/margo-98a2146bda61c1e4.d: crates/margo/src/lib.rs

/root/repo/target/release/deps/libmargo-98a2146bda61c1e4.rlib: crates/margo/src/lib.rs

/root/repo/target/release/deps/libmargo-98a2146bda61c1e4.rmeta: crates/margo/src/lib.rs

crates/margo/src/lib.rs:
