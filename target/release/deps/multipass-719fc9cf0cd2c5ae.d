/root/repo/target/release/deps/multipass-719fc9cf0cd2c5ae.d: crates/bench/src/bin/multipass.rs

/root/repo/target/release/deps/multipass-719fc9cf0cd2c5ae: crates/bench/src/bin/multipass.rs

crates/bench/src/bin/multipass.rs:
