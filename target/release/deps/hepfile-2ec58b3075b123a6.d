/root/repo/target/release/deps/hepfile-2ec58b3075b123a6.d: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs

/root/repo/target/release/deps/libhepfile-2ec58b3075b123a6.rlib: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs

/root/repo/target/release/deps/libhepfile-2ec58b3075b123a6.rmeta: crates/hepfile/src/lib.rs crates/hepfile/src/gridrun.rs crates/hepfile/src/pfs.rs crates/hepfile/src/table.rs

crates/hepfile/src/lib.rs:
crates/hepfile/src/gridrun.rs:
crates/hepfile/src/pfs.rs:
crates/hepfile/src/table.rs:
