/root/repo/target/release/deps/figure3-f880876ebe72684b.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-f880876ebe72684b: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
