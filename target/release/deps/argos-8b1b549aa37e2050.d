/root/repo/target/release/deps/argos-8b1b549aa37e2050.d: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs

/root/repo/target/release/deps/libargos-8b1b549aa37e2050.rlib: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs

/root/repo/target/release/deps/libargos-8b1b549aa37e2050.rmeta: crates/argos/src/lib.rs crates/argos/src/eventual.rs crates/argos/src/pool.rs crates/argos/src/runtime.rs crates/argos/src/sync.rs crates/argos/src/xstream.rs

crates/argos/src/lib.rs:
crates/argos/src/eventual.rs:
crates/argos/src/pool.rs:
crates/argos/src/runtime.rs:
crates/argos/src/sync.rs:
crates/argos/src/xstream.rs:
