/root/repo/target/release/deps/figure2-fcd9507492aeb532.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-fcd9507492aeb532: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
