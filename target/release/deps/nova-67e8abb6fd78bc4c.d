/root/repo/target/release/deps/nova-67e8abb6fd78bc4c.d: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs

/root/repo/target/release/deps/libnova-67e8abb6fd78bc4c.rlib: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs

/root/repo/target/release/deps/libnova-67e8abb6fd78bc4c.rmeta: crates/nova/src/lib.rs crates/nova/src/files.rs crates/nova/src/generator.rs crates/nova/src/loader.rs crates/nova/src/selection.rs crates/nova/src/spectrum.rs crates/nova/src/data.rs

crates/nova/src/lib.rs:
crates/nova/src/files.rs:
crates/nova/src/generator.rs:
crates/nova/src/loader.rs:
crates/nova/src/selection.rs:
crates/nova/src/spectrum.rs:
crates/nova/src/data.rs:
