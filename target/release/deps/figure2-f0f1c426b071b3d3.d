/root/repo/target/release/deps/figure2-f0f1c426b071b3d3.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-f0f1c426b071b3d3: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
