/root/repo/target/release/deps/hepnos_tools-cd7b7c4fd41c838f.d: crates/tools/src/lib.rs

/root/repo/target/release/deps/libhepnos_tools-cd7b7c4fd41c838f.rlib: crates/tools/src/lib.rs

/root/repo/target/release/deps/libhepnos_tools-cd7b7c4fd41c838f.rmeta: crates/tools/src/lib.rs

crates/tools/src/lib.rs:
