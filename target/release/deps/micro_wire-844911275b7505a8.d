/root/repo/target/release/deps/micro_wire-844911275b7505a8.d: crates/bench/benches/micro_wire.rs

/root/repo/target/release/deps/micro_wire-844911275b7505a8: crates/bench/benches/micro_wire.rs

crates/bench/benches/micro_wire.rs:
