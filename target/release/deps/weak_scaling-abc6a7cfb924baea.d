/root/repo/target/release/deps/weak_scaling-abc6a7cfb924baea.d: crates/bench/src/bin/weak_scaling.rs

/root/repo/target/release/deps/weak_scaling-abc6a7cfb924baea: crates/bench/src/bin/weak_scaling.rs

crates/bench/src/bin/weak_scaling.rs:
