/root/repo/target/release/deps/weak_scaling-bbdc0ab6b85d0f84.d: crates/bench/src/bin/weak_scaling.rs

/root/repo/target/release/deps/weak_scaling-bbdc0ab6b85d0f84: crates/bench/src/bin/weak_scaling.rs

crates/bench/src/bin/weak_scaling.rs:
