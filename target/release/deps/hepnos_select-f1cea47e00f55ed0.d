/root/repo/target/release/deps/hepnos_select-f1cea47e00f55ed0.d: crates/tools/src/bin/hepnos_select.rs

/root/repo/target/release/deps/hepnos_select-f1cea47e00f55ed0: crates/tools/src/bin/hepnos_select.rs

crates/tools/src/bin/hepnos_select.rs:
