/root/repo/target/release/deps/hepnos_suite-5a369b99582919a3.d: src/lib.rs

/root/repo/target/release/deps/libhepnos_suite-5a369b99582919a3.rlib: src/lib.rs

/root/repo/target/release/deps/libhepnos_suite-5a369b99582919a3.rmeta: src/lib.rs

src/lib.rs:
