/root/repo/target/release/deps/micro_cache-5bfb6341b8d5b036.d: crates/bench/benches/micro_cache.rs

/root/repo/target/release/deps/micro_cache-5bfb6341b8d5b036: crates/bench/benches/micro_cache.rs

crates/bench/benches/micro_cache.rs:
