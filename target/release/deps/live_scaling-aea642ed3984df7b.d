/root/repo/target/release/deps/live_scaling-aea642ed3984df7b.d: crates/bench/src/bin/live_scaling.rs

/root/repo/target/release/deps/live_scaling-aea642ed3984df7b: crates/bench/src/bin/live_scaling.rs

crates/bench/src/bin/live_scaling.rs:
