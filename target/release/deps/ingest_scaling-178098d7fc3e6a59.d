/root/repo/target/release/deps/ingest_scaling-178098d7fc3e6a59.d: crates/bench/src/bin/ingest_scaling.rs

/root/repo/target/release/deps/ingest_scaling-178098d7fc3e6a59: crates/bench/src/bin/ingest_scaling.rs

crates/bench/src/bin/ingest_scaling.rs:
