/root/repo/target/release/deps/multipass-a06ea910b3477c37.d: crates/bench/src/bin/multipass.rs

/root/repo/target/release/deps/multipass-a06ea910b3477c37: crates/bench/src/bin/multipass.rs

crates/bench/src/bin/multipass.rs:
