/root/repo/target/release/deps/micro_wire-c198d07c9454fbd1.d: crates/bench/benches/micro_wire.rs

/root/repo/target/release/deps/micro_wire-c198d07c9454fbd1: crates/bench/benches/micro_wire.rs

crates/bench/benches/micro_wire.rs:
