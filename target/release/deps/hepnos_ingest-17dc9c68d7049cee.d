/root/repo/target/release/deps/hepnos_ingest-17dc9c68d7049cee.d: crates/tools/src/bin/hepnos_ingest.rs

/root/repo/target/release/deps/hepnos_ingest-17dc9c68d7049cee: crates/tools/src/bin/hepnos_ingest.rs

crates/tools/src/bin/hepnos_ingest.rs:
