/root/repo/target/release/deps/figure3-71d70ec2857b78b8.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-71d70ec2857b78b8: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
