/root/repo/target/release/deps/hepnos_ls-ce18e2eccd12af68.d: crates/tools/src/bin/hepnos_ls.rs

/root/repo/target/release/deps/hepnos_ls-ce18e2eccd12af68: crates/tools/src/bin/hepnos_ls.rs

crates/tools/src/bin/hepnos_ls.rs:
