/root/repo/target/release/deps/bedrock-2fe57e0208fec4c5.d: crates/bedrock/src/lib.rs

/root/repo/target/release/deps/libbedrock-2fe57e0208fec4c5.rlib: crates/bedrock/src/lib.rs

/root/repo/target/release/deps/libbedrock-2fe57e0208fec4c5.rmeta: crates/bedrock/src/lib.rs

crates/bedrock/src/lib.rs:
