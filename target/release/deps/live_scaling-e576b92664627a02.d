/root/repo/target/release/deps/live_scaling-e576b92664627a02.d: crates/bench/src/bin/live_scaling.rs

/root/repo/target/release/deps/live_scaling-e576b92664627a02: crates/bench/src/bin/live_scaling.rs

crates/bench/src/bin/live_scaling.rs:
