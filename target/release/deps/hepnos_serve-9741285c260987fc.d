/root/repo/target/release/deps/hepnos_serve-9741285c260987fc.d: crates/tools/src/bin/hepnos_serve.rs

/root/repo/target/release/deps/hepnos_serve-9741285c260987fc: crates/tools/src/bin/hepnos_serve.rs

crates/tools/src/bin/hepnos_serve.rs:
