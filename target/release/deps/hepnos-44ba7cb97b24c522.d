/root/repo/target/release/deps/hepnos-44ba7cb97b24c522.d: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs

/root/repo/target/release/deps/libhepnos-44ba7cb97b24c522.rlib: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs

/root/repo/target/release/deps/libhepnos-44ba7cb97b24c522.rmeta: crates/hepnos/src/lib.rs crates/hepnos/src/batch.rs crates/hepnos/src/binser.rs crates/hepnos/src/datastore.rs crates/hepnos/src/error.rs crates/hepnos/src/keys.rs crates/hepnos/src/pep.rs crates/hepnos/src/placement.rs crates/hepnos/src/prefetch.rs crates/hepnos/src/rescale.rs crates/hepnos/src/testing.rs crates/hepnos/src/uuid.rs

crates/hepnos/src/lib.rs:
crates/hepnos/src/batch.rs:
crates/hepnos/src/binser.rs:
crates/hepnos/src/datastore.rs:
crates/hepnos/src/error.rs:
crates/hepnos/src/keys.rs:
crates/hepnos/src/pep.rs:
crates/hepnos/src/placement.rs:
crates/hepnos/src/prefetch.rs:
crates/hepnos/src/rescale.rs:
crates/hepnos/src/testing.rs:
crates/hepnos/src/uuid.rs:
