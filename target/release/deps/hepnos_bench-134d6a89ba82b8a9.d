/root/repo/target/release/deps/hepnos_bench-134d6a89ba82b8a9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhepnos_bench-134d6a89ba82b8a9.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhepnos_bench-134d6a89ba82b8a9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
