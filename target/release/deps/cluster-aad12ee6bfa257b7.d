/root/repo/target/release/deps/cluster-aad12ee6bfa257b7.d: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs

/root/repo/target/release/deps/libcluster-aad12ee6bfa257b7.rlib: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs

/root/repo/target/release/deps/libcluster-aad12ee6bfa257b7.rmeta: crates/cluster/src/lib.rs crates/cluster/src/filewf.rs crates/cluster/src/hepnoswf.rs crates/cluster/src/ingestwf.rs crates/cluster/src/theta.rs crates/cluster/src/vt.rs

crates/cluster/src/lib.rs:
crates/cluster/src/filewf.rs:
crates/cluster/src/hepnoswf.rs:
crates/cluster/src/ingestwf.rs:
crates/cluster/src/theta.rs:
crates/cluster/src/vt.rs:
