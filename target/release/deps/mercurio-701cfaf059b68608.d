/root/repo/target/release/deps/mercurio-701cfaf059b68608.d: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs

/root/repo/target/release/deps/libmercurio-701cfaf059b68608.rlib: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs

/root/repo/target/release/deps/libmercurio-701cfaf059b68608.rmeta: crates/mercurio/src/lib.rs crates/mercurio/src/bulk.rs crates/mercurio/src/endpoint.rs crates/mercurio/src/error.rs crates/mercurio/src/local.rs crates/mercurio/src/model.rs crates/mercurio/src/tcp.rs crates/mercurio/src/wire.rs

crates/mercurio/src/lib.rs:
crates/mercurio/src/bulk.rs:
crates/mercurio/src/endpoint.rs:
crates/mercurio/src/error.rs:
crates/mercurio/src/local.rs:
crates/mercurio/src/model.rs:
crates/mercurio/src/tcp.rs:
crates/mercurio/src/wire.rs:
