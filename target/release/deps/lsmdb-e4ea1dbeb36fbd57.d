/root/repo/target/release/deps/lsmdb-e4ea1dbeb36fbd57.d: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs

/root/repo/target/release/deps/liblsmdb-e4ea1dbeb36fbd57.rlib: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs

/root/repo/target/release/deps/liblsmdb-e4ea1dbeb36fbd57.rmeta: crates/lsmdb/src/lib.rs crates/lsmdb/src/bloom.rs crates/lsmdb/src/cache.rs crates/lsmdb/src/crc32.rs crates/lsmdb/src/db.rs crates/lsmdb/src/memtable.rs crates/lsmdb/src/sstable.rs crates/lsmdb/src/wal.rs

crates/lsmdb/src/lib.rs:
crates/lsmdb/src/bloom.rs:
crates/lsmdb/src/cache.rs:
crates/lsmdb/src/crc32.rs:
crates/lsmdb/src/db.rs:
crates/lsmdb/src/memtable.rs:
crates/lsmdb/src/sstable.rs:
crates/lsmdb/src/wal.rs:
