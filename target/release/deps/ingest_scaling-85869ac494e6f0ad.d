/root/repo/target/release/deps/ingest_scaling-85869ac494e6f0ad.d: crates/bench/src/bin/ingest_scaling.rs

/root/repo/target/release/deps/ingest_scaling-85869ac494e6f0ad: crates/bench/src/bin/ingest_scaling.rs

crates/bench/src/bin/ingest_scaling.rs:
