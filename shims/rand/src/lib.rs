//! Offline shim for the `rand` crate.
//!
//! Provides `RngCore` / `SeedableRng` / `Rng`, a deterministic `StdRng`
//! (xoshiro256** seeded through splitmix64), and a lazily-seeded
//! `thread_rng()`. Only the sampling surface this workspace uses is
//! implemented: `gen`, `gen_bool`, `gen_range` over integer and float
//! ranges, and `fill_bytes`.

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

/// Minimal random source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// Construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: AsRef<[u8]> + AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64` (expanded via splitmix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling helpers.
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution for `T`.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        standard_f64(self.next_u64()) < p
    }

    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn standard_f64(bits: u64) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn standard_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    /// Draw one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        standard_f64(rng.next_u64())
    }
}
impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        standard_f32(rng.next_u32())
    }
}
impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}
macro_rules! standard_int {
    ($($t:ty => $via:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> $t {
                <$via>::sample_standard_bits(rng) as $t
            }
        }
    )*};
}
trait StandardBits {
    fn sample_standard_bits<R: RngCore>(rng: &mut R) -> Self;
}
impl StandardBits for u32 {
    fn sample_standard_bits<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl StandardBits for u64 {
    fn sample_standard_bits<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
standard_int!(u8 => u32, u16 => u32, u32 => u32, i8 => u32, i16 => u32, i32 => u32,
              u64 => u64, i64 => u64, usize => u64, isize => u64, u128 => u64, i128 => u64);

/// Types with uniform range sampling.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform in `[low, high)`.
    fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform in `[low, high]`.
    fn sample_uniform_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, low: f64, high: f64) -> f64 {
        low + standard_f64(rng.next_u64()) * (high - low)
    }
    fn sample_uniform_inclusive<R: RngCore>(rng: &mut R, low: f64, high: f64) -> f64 {
        Self::sample_uniform(rng, low, high)
    }
}
impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore>(rng: &mut R, low: f32, high: f32) -> f32 {
        low + standard_f32(rng.next_u32()) * (high - low)
    }
    fn sample_uniform_inclusive<R: RngCore>(rng: &mut R, low: f32, high: f32) -> f32 {
        Self::sample_uniform(rng, low, high)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                let v = sample_below(rng, span);
                ((low as i128).wrapping_add(v as i128)) as $t
            }
            fn sample_uniform_inclusive<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = ((high as i128).wrapping_sub(low as i128) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    let hi = rng.next_u64() as u128;
                    let lo = rng.next_u64() as u128;
                    return ((hi << 64) | lo) as $t;
                }
                let v = sample_below(rng, span);
                ((low as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, bound)` by rejection sampling (bound > 0).
fn sample_below<R: RngCore>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    // Zone is the largest multiple of `bound` fitting in u128 minus one.
    let zone = u128::MAX - (u128::MAX % bound) - 1;
    loop {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        let v = (hi << 64) | lo;
        if v <= zone {
            return v % bound;
        }
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_uniform_inclusive(rng, low, high)
    }
}

// ---------------------------------------------------------------------------
// StdRng (xoshiro256**)
// ---------------------------------------------------------------------------

/// RNG generator types.
pub mod rngs {
    use super::*;

    /// Deterministic PRNG seeded from 32 bytes (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            // Run the raw seed words through splitmix64 so similar seeds
            // (e.g. consecutive event ids) produce uncorrelated streams,
            // and an all-zero seed cannot yield the degenerate zero state.
            let mut s = [0u64; 4];
            let mut mix = 0x5851_F42D_4C95_7F2Du64;
            for (i, word) in s.iter_mut().enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                mix ^= u64::from_le_bytes(w);
                *word = splitmix64(&mut mix);
            }
            StdRng { s }
        }
    }

    /// Handle to the thread-local RNG (see [`super::thread_rng`]).
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        _private: (),
    }

    thread_local! {
        static THREAD_RNG: RefCell<StdRng> = RefCell::new(StdRng::from_seed(entropy_seed()));
    }

    fn entropy_seed() -> [u8; 32] {
        // No OS entropy API in std; derive a per-thread seed from
        // RandomState (randomized per process) plus time and a counter.
        use std::hash::{BuildHasher, Hasher, RandomState};
        let rs = RandomState::new();
        let mut seed = [0u8; 32];
        for (i, chunk) in seed.chunks_mut(8).enumerate() {
            let mut h = rs.build_hasher();
            h.write_usize(i);
            h.write_u128(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos())
                    .unwrap_or(0),
            );
            chunk.copy_from_slice(&h.finish().to_le_bytes());
        }
        seed
    }

    impl ThreadRng {
        pub(crate) fn new() -> ThreadRng {
            ThreadRng { _private: () }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            THREAD_RNG.with(|r| r.borrow_mut().next_u32())
        }
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG.with(|r| r.borrow_mut().next_u64())
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            THREAD_RNG.with(|r| r.borrow_mut().fill_bytes(dest))
        }
    }
}

/// The thread-local RNG, seeded once per thread from process entropy.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Prelude matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::from_seed([7u8; 32]);
        let mut b = StdRng::from_seed([7u8; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::from_seed([8u8; 32]);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::from_seed([1u8; 32]);
        for _ in 0..1000 {
            let f = r.gen_range(-0.7..0.7);
            assert!((-0.7..0.7).contains(&f));
            let g: f32 = r.gen_range(0.85f32..1.0);
            assert!((0.85..1.0).contains(&g));
            let i = r.gen_range(40..400);
            assert!((40..400).contains(&i));
            let u: u64 = r.gen_range(0..=5);
            assert!(u <= 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::from_seed([2u8; 32]);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::from_seed([3u8; 32]);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut tr = thread_rng();
        let mut b16 = [0u8; 16];
        tr.fill_bytes(&mut b16);
    }
}
