//! Offline shim for `crossbeam`: the `channel` and `deque` modules.
//!
//! `channel` provides MPMC `bounded` / `unbounded` channels with cloneable
//! senders and receivers, blocking `send` / `recv`, and disconnect
//! semantics matching crossbeam-channel: `recv` fails once the queue is
//! empty and every sender is gone; `send` fails once every receiver is
//! gone.
//!
//! `deque` provides the crossbeam-deque work-stealing API subset
//! ([`deque::Injector`], [`deque::Worker`], [`deque::Stealer`],
//! [`deque::Steal`]) used by the ParallelEventProcessor's per-worker
//! dispatch queues. The shim favours correctness over lock-freedom: each
//! queue is a mutexed `VecDeque`, which preserves the exactly-once pop
//! guarantee the callers rely on.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }
    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Create a bounded MPMC channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap))
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or all receivers are gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    drop(st);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives (or the channel disconnects).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.chan.not_empty.wait_timeout(st, left).unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_and_close() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn mpmc_many_threads() {
            let (tx, rx) = bounded::<usize>(4);
            let mut readers = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                readers.push(std::thread::spawn(move || {
                    let mut sum = 0usize;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            drop(rx);
            let mut writers = Vec::new();
            for _ in 0..4 {
                let tx = tx.clone();
                writers.push(std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(i).unwrap();
                    }
                }));
            }
            drop(tx);
            for w in writers {
                w.join().unwrap();
            }
            let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
            assert_eq!(total, 4 * (0..100).sum::<usize>());
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn blocked_sender_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(0).unwrap();
            let t = std::thread::spawn(move || tx.send(1));
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert_eq!(t.join().unwrap(), Err(SendError(1)));
        }
    }
}

pub mod deque {
    //! Work-stealing deques: the crossbeam-deque API subset.
    //!
    //! An [`Injector`] is a shared MPMC FIFO that any thread can push into
    //! or steal from. A [`Worker`] is a single-owner FIFO whose owner pushes
    //! and pops cheaply while other threads steal from it through cloned
    //! [`Stealer`] handles. Every pop/steal removes a task exactly once.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race; retrying may succeed. The mutexed shim
        /// never reports this, but callers written against crossbeam-deque
        /// must handle it, so the variant exists.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A shared FIFO injection queue: many producers, many stealers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Create an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steal the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }

    struct WorkerQueue<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// A FIFO deque owned by one worker thread; other threads steal through
    /// [`Stealer`] handles obtained from [`Worker::stealer`].
    pub struct Worker<T> {
        inner: Arc<WorkerQueue<T>>,
    }

    /// A handle for stealing from another thread's [`Worker`].
    pub struct Stealer<T> {
        inner: Arc<WorkerQueue<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Worker<T> {
        /// Create a FIFO worker queue (tasks pop in push order).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                inner: Arc::new(WorkerQueue {
                    queue: Mutex::new(VecDeque::new()),
                }),
            }
        }

        /// A stealer handle for this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Push a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.inner.queue.lock().unwrap().push_back(task);
        }

        /// Pop the task at the front of the queue (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.inner.queue.lock().unwrap().pop_front()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.queue.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }
    }

    impl<T> Stealer<T> {
        /// Steal the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.queue.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::collections::HashSet;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            inj.push(3);
            assert_eq!(inj.len(), 3);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert_eq!(inj.steal(), Steal::Success(3));
            assert!(inj.steal().is_empty());
        }

        #[test]
        fn worker_pop_and_stealer_agree_exactly_once() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            for i in 0..100 {
                w.push(i);
            }
            let mut seen = HashSet::new();
            loop {
                let v = if seen.len() % 2 == 0 {
                    w.pop()
                } else {
                    s.steal().success()
                };
                match v {
                    Some(v) => assert!(seen.insert(v), "value {v} delivered twice"),
                    None => break,
                }
            }
            assert_eq!(seen.len(), 100);
        }

        #[test]
        fn concurrent_stealing_delivers_each_task_once() {
            let inj = Arc::new(Injector::new());
            const N: usize = 10_000;
            for i in 0..N {
                inj.push(i);
            }
            let taken = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            let all: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));
            for _ in 0..4 {
                let inj = Arc::clone(&inj);
                let taken = Arc::clone(&taken);
                let all = Arc::clone(&all);
                handles.push(std::thread::spawn(move || {
                    while let Steal::Success(v) = inj.steal() {
                        taken.fetch_add(1, Ordering::Relaxed);
                        assert!(all.lock().unwrap().insert(v), "duplicate steal of {v}");
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(taken.load(Ordering::Relaxed), N);
        }
    }
}
