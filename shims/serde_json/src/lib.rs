//! Offline shim for `serde_json`.
//!
//! Covers what this workspace calls: [`from_str`], [`to_string`],
//! [`to_string_pretty`]. No `Value` type, no `json!` macro. The writer emits
//! serde_json-compatible output (2-space pretty indentation, `{"Variant":
//! ...}` enum framing); the reader is a recursive-descent parser driving the
//! serde visitor API, so derived `Deserialize` impls (including
//! `#[serde(default)]` and unknown-field skipping) behave as with upstream.

use serde::de::{self, Visitor};
use serde::ser;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut ser = JsonSerializer {
        out: String::new(),
        indent: None,
        depth: 0,
    };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut ser = JsonSerializer {
        out: String::new(),
        indent: Some("  "),
        depth: 0,
    };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &'de str) -> Result<T, Error> {
    let mut de = JsonDeserializer {
        input: s.as_bytes(),
        pos: 0,
    };
    let value = T::deserialize(&mut de)?;
    de.skip_ws();
    if de.pos != de.input.len() {
        return Err(Error("trailing characters after JSON value".into()));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

struct JsonSerializer {
    out: String,
    indent: Option<&'static str>,
    depth: usize,
}

impl JsonSerializer {
    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                '\u{8}' => self.out.push_str("\\b"),
                '\u{c}' => self.out.push_str("\\f"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn newline_indent(&mut self) {
        if let Some(pad) = self.indent {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str(pad);
            }
        }
    }

    /// Start of `[` / `{`: bump depth.
    fn open(&mut self, c: char) {
        self.out.push(c);
        self.depth += 1;
    }

    /// Before each element: comma (if not first) and pretty newline.
    fn element(&mut self, first: &mut bool) {
        if !*first {
            self.out.push(',');
        }
        *first = false;
        self.newline_indent();
    }

    /// End of `]` / `}`: drop depth; newline only for non-empty containers.
    fn close(&mut self, c: char, empty: bool) {
        self.depth -= 1;
        if !empty {
            self.newline_indent();
        }
        self.out.push(c);
    }

    fn colon(&mut self) {
        self.out.push(':');
        if self.indent.is_some() {
            self.out.push(' ');
        }
    }

    fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            // Keep a `.0` on integral floats, matching serde_json.
            if v == v.trunc() && v.abs() < 1e16 {
                self.out.push_str(&format!("{v:.1}"));
            } else {
                self.out.push_str(&format!("{v}"));
            }
        } else {
            self.out.push_str("null");
        }
    }
}

/// Compound state: container kind + first-element flag.
struct Compound<'a> {
    ser: &'a mut JsonSerializer,
    first: bool,
    /// Enum variants close an extra wrapping `}`.
    variant: bool,
}

impl<'a> Compound<'a> {
    fn finish(self, closer: char) -> Result<(), Error> {
        let empty = self.first;
        self.ser.close(closer, empty);
        if self.variant {
            self.ser.close('}', false);
        }
        Ok(())
    }
}

macro_rules! ser_int {
    ($($method:ident: $ty:ty),* $(,)?) => {$(
        fn $method(self, v: $ty) -> Result<(), Error> {
            self.out.push_str(&v.to_string());
            Ok(())
        }
    )*};
}

impl<'a> ser::Serializer for &'a mut JsonSerializer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    ser_int! {
        serialize_i8: i8, serialize_i16: i16, serialize_i32: i32,
        serialize_i64: i64, serialize_i128: i128,
        serialize_u8: u8, serialize_u16: u16, serialize_u32: u32,
        serialize_u64: u64, serialize_u128: u128,
    }

    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        self.write_f64(v as f64);
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        self.write_f64(v);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), Error> {
        self.write_escaped(v.encode_utf8(&mut [0u8; 4]));
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        self.write_escaped(v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
        use ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            seq.serialize_element(b)?;
        }
        seq.end()
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.write_escaped(variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.open('{');
        self.newline_indent();
        self.write_escaped(variant);
        self.colon();
        value.serialize(&mut *self)?;
        self.close('}', false);
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.open('[');
        Ok(Compound {
            ser: self,
            first: true,
            variant: false,
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.open('{');
        self.newline_indent();
        self.write_escaped(variant);
        self.colon();
        self.open('[');
        Ok(Compound {
            ser: self,
            first: true,
            variant: true,
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.open('{');
        Ok(Compound {
            ser: self,
            first: true,
            variant: false,
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, Error> {
        self.open('{');
        Ok(Compound {
            ser: self,
            first: true,
            variant: false,
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.open('{');
        self.newline_indent();
        self.write_escaped(variant);
        self.colon();
        self.open('{');
        Ok(Compound {
            ser: self,
            first: true,
            variant: true,
        })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        let mut first = self.first;
        self.ser.element(&mut first);
        self.first = first;
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), Error> {
        self.finish(']')
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish(']')
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish(']')
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish(']')
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
        let mut first = self.first;
        self.ser.element(&mut first);
        self.first = first;
        // JSON keys must be strings; a key serializer would reject non-string
        // keys, but this workspace only writes string-keyed maps.
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.ser.colon();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), Error> {
        self.finish('}')
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        let mut first = self.first;
        self.ser.element(&mut first);
        self.first = first;
        self.ser.write_escaped(key);
        self.ser.colon();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), Error> {
        self.finish('}')
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish('}')
    }
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

struct JsonDeserializer<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> JsonDeserializer<'de> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.input
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON input".into()))
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self.peek()?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != want {
            return Err(Error(format!(
                "expected `{}`, found `{}` at byte {}",
                want as char,
                got as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .input
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .input
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a low surrogate must follow.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.input.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let end = start + utf8_width(b);
                    let chunk = self
                        .input
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .input
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        self.pos += 4;
        let hex = std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))
    }

    /// Parse a number and feed it to `visitor` with the best-fitting visit.
    fn parse_number<V: Visitor<'de>>(&mut self, visitor: V) -> Result<V::Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.input.get(self.pos), Some(b'-' | b'+')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.input.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'-' | b'+' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected a number at byte {start}")));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return visitor.visit_u64(v);
            }
            if let Ok(v) = text.parse::<i64>() {
                return visitor.visit_i64(v);
            }
        }
        let v = text
            .parse::<f64>()
            .map_err(|_| Error(format!("invalid number `{text}`")))?;
        visitor.visit_f64(v)
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

macro_rules! forward_to_any {
    ($($method:ident),* $(,)?) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            self.deserialize_any(visitor)
        }
    )*};
}

impl<'de> de::Deserializer<'de> for &mut JsonDeserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.peek()? {
            b'n' => {
                self.expect_keyword("null")?;
                visitor.visit_unit()
            }
            b't' => {
                self.expect_keyword("true")?;
                visitor.visit_bool(true)
            }
            b'f' => {
                self.expect_keyword("false")?;
                visitor.visit_bool(false)
            }
            b'"' => {
                let s = self.parse_string()?;
                visitor.visit_string(s)
            }
            b'[' => self.deserialize_seq(visitor),
            b'{' => self.deserialize_map(visitor),
            _ => self.parse_number(visitor),
        }
    }

    forward_to_any! {
        deserialize_bool,
        deserialize_i8, deserialize_i16, deserialize_i32, deserialize_i64,
        deserialize_i128,
        deserialize_u8, deserialize_u16, deserialize_u32, deserialize_u64,
        deserialize_u128,
        deserialize_f32, deserialize_f64,
        deserialize_char, deserialize_str, deserialize_string,
        deserialize_bytes, deserialize_byte_buf,
        deserialize_identifier, deserialize_ignored_any,
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        if self.peek()? == b'n' {
            self.expect_keyword("null")?;
            visitor.visit_none()
        } else {
            visitor.visit_some(self)
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.expect_keyword("null")?;
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_unit(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Error> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.expect(b'[')?;
        let value = visitor.visit_seq(CommaSeparated {
            de: self,
            first: true,
        })?;
        self.expect(b']')?;
        Ok(value)
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.expect(b'{')?;
        let value = visitor.visit_map(CommaSeparated {
            de: self,
            first: true,
        })?;
        self.expect(b'}')?;
        Ok(value)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_map(visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self.peek()? {
            // "Variant" — unit variant.
            b'"' => visitor.visit_enum(UnitVariantAccess { de: self }),
            // {"Variant": payload}
            b'{' => {
                self.expect(b'{')?;
                let value = visitor.visit_enum(VariantMapAccess { de: self })?;
                self.expect(b'}')?;
                Ok(value)
            }
            _ => Err(Error("expected a string or object for enum".into())),
        }
    }
}

/// Seq and map element walker (the caller consumed the opener).
struct CommaSeparated<'a, 'de> {
    de: &'a mut JsonDeserializer<'de>,
    first: bool,
}

impl<'a, 'de> CommaSeparated<'a, 'de> {
    /// Position on the next element; `false` when the closer is next.
    fn advance(&mut self, closer: u8) -> Result<bool, Error> {
        if self.de.peek()? == closer {
            return Ok(false);
        }
        if !self.first {
            self.de.expect(b',')?;
        }
        self.first = false;
        Ok(true)
    }
}

impl<'a, 'de> de::SeqAccess<'de> for CommaSeparated<'a, 'de> {
    type Error = Error;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Error> {
        if !self.advance(b']')? {
            return Ok(None);
        }
        seed.deserialize(&mut *self.de).map(Some)
    }
}

impl<'a, 'de> de::MapAccess<'de> for CommaSeparated<'a, 'de> {
    type Error = Error;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Error> {
        if !self.advance(b'}')? {
            return Ok(None);
        }
        if self.de.peek()? != b'"' {
            return Err(Error("object key must be a string".into()));
        }
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, Error> {
        self.de.expect(b':')?;
        seed.deserialize(&mut *self.de)
    }
}

/// `"Variant"` — payload-less enum value.
struct UnitVariantAccess<'a, 'de> {
    de: &'a mut JsonDeserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for UnitVariantAccess<'a, 'de> {
    type Error = Error;
    type Variant = UnitOnly;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, UnitOnly), Error> {
        let name = self.de.parse_string()?;
        let value = seed.deserialize(de::value::StrDeserializer::<Error>::new(&name))?;
        Ok((value, UnitOnly))
    }
}

/// Variant accessor for enums spelled as bare strings.
struct UnitOnly;

impl<'de> de::VariantAccess<'de> for UnitOnly {
    type Error = Error;
    fn unit_variant(self) -> Result<(), Error> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        _seed: T,
    ) -> Result<T::Value, Error> {
        Err(Error("expected a payload for newtype variant".into()))
    }
    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, _visitor: V) -> Result<V::Value, Error> {
        Err(Error("expected a payload for tuple variant".into()))
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        _visitor: V,
    ) -> Result<V::Value, Error> {
        Err(Error("expected a payload for struct variant".into()))
    }
}

/// `{"Variant": payload}` — the caller consumed `{` and will consume `}`.
struct VariantMapAccess<'a, 'de> {
    de: &'a mut JsonDeserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for VariantMapAccess<'a, 'de> {
    type Error = Error;
    type Variant = PayloadVariant<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, PayloadVariant<'a, 'de>), Error> {
        if self.de.peek()? != b'"' {
            return Err(Error("expected variant name string".into()));
        }
        let name = self.de.parse_string()?;
        let value = seed.deserialize(de::value::StrDeserializer::<Error>::new(&name))?;
        self.de.expect(b':')?;
        Ok((value, PayloadVariant { de: self.de }))
    }
}

/// Payload accessor for `{"Variant": ...}` enums.
struct PayloadVariant<'a, 'de> {
    de: &'a mut JsonDeserializer<'de>,
}

impl<'a, 'de> de::VariantAccess<'de> for PayloadVariant<'a, 'de> {
    type Error = Error;
    fn unit_variant(self) -> Result<(), Error> {
        self.de.expect_keyword("null")
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, Error> {
        seed.deserialize(&mut *self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, Error> {
        use de::Deserializer as _;
        self.de.deserialize_seq(visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        use de::Deserializer as _;
        self.de.deserialize_map(visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: i32,
        y: i32,
        #[serde(default)]
        label: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    #[serde(rename_all = "lowercase")]
    enum Kind {
        Map,
        Lsm,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Payload {
        Nothing,
        One(u32),
        Pair(u8, u8),
        Fields { a: bool, b: String },
    }

    #[test]
    fn round_trip_struct() {
        let p = Point {
            x: -3,
            y: 7,
            label: Some("origin-ish".into()),
        };
        let json = to_string(&p).unwrap();
        assert_eq!(json, r#"{"x":-3,"y":7,"label":"origin-ish"}"#);
        assert_eq!(from_str::<Point>(&json).unwrap(), p);
    }

    #[test]
    fn default_and_unknown_fields() {
        let p: Point = from_str(r#"{"y": 2, "x": 1, "extra": [1, {"z": 3}]}"#).unwrap();
        assert_eq!(
            p,
            Point {
                x: 1,
                y: 2,
                label: None
            }
        );
    }

    #[test]
    fn renamed_unit_variants() {
        assert_eq!(to_string(&Kind::Map).unwrap(), r#""map""#);
        assert_eq!(from_str::<Kind>(r#""lsm""#).unwrap(), Kind::Lsm);
        assert!(from_str::<Kind>(r#""rocks""#).is_err());
    }

    #[test]
    fn payload_variants() {
        for v in [
            Payload::Nothing,
            Payload::One(9),
            Payload::Pair(1, 2),
            Payload::Fields {
                a: true,
                b: "hi\n\"there\"".into(),
            },
        ] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<Payload>(&json).unwrap(), v);
        }
    }

    #[test]
    fn pretty_matches_expected_shape() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1u32, 2]);
        let pretty = to_string_pretty(&m).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(from_str::<BTreeMap<String, Vec<u32>>>(&pretty).unwrap(), m);
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f32>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert!(from_str::<u32>("1 trailing").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let s = "tab\t newline\n quote\" back\\ unicode:\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        let fancy: String = from_str(r#""surrogate 😀 ok""#).unwrap();
        assert_eq!(fancy, "surrogate \u{1F600} ok");
    }
}
