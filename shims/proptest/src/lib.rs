//! Offline shim for `proptest`.
//!
//! Random-sampling property testing with the proptest API surface this
//! workspace uses: `proptest!`, `prop_oneof!`, `prop_assert*!`, `any`,
//! `Just`, ranges and regex-like `&str` strategies, `prop_map` /
//! `prop_flat_map`, and the `collection` / `option` modules. No shrinking —
//! failures report the failing assertion; cases are seeded deterministically
//! so failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Core trait and runner
// ---------------------------------------------------------------------------

/// A source of random values of one type.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each produced value.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Box::new(move |rng| self.sample(rng)),
        }
    }
}

/// Runner configuration (`cases` is the only knob this shim honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Shrink-iteration budget (accepted for API compatibility; this shim
    /// does not shrink).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case RNG: the same (test body, case index) pair sees the
/// same inputs on every run.
pub fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case.wrapping_add(1)))
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn sample(&self, rng: &mut StdRng) -> O::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    sample: Box<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.sample)(rng)
    }
}

/// Weighted choice between strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The proptest `any` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> $ty {
                rng.gen()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

// Floats sample raw bit patterns so NaNs and infinities are exercised.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f32::from_bits(rng.gen::<u32>())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        f64::from_bits(rng.gen::<u64>())
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.gen();
        }
        out
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------------
// Regex-like string strategies
// ---------------------------------------------------------------------------

enum CharClass {
    /// `.` — printable characters (with some multi-byte UTF-8 mixed in).
    AnyPrintable,
    /// `[...]` — explicit set.
    Set(Vec<char>),
    /// A literal character.
    Literal(char),
}

struct Atom {
    class: CharClass,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '.' => {
                i += 1;
                CharClass::AnyPrintable
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    // `a-z` range (a `-` at the end of the set is literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated `[` in pattern `{pattern}`");
                i += 1; // past ']'
                CharClass::Set(set)
            }
            '\\' => {
                i += 2;
                CharClass::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                CharClass::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated `{{` in pattern `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        atoms.push(Atom { class, min, max });
    }
    atoms
}

fn sample_char(class: &CharClass, rng: &mut StdRng) -> char {
    match class {
        CharClass::Literal(c) => *c,
        CharClass::Set(set) => set[rng.gen_range(0..set.len())],
        CharClass::AnyPrintable => {
            // Mostly printable ASCII, with occasional multi-byte characters
            // so UTF-8 handling gets exercised.
            if rng.gen_range(0u32..16) == 0 {
                const EXOTIC: &[char] = &['é', 'λ', 'Ω', '→', '🜚', '😀'];
                EXOTIC[rng.gen_range(0..EXOTIC.len())]
            } else {
                char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap()
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.gen_range(atom.min..=atom.max);
            for _ in 0..count {
                out.push(sample_char(&atom.class, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Composite strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7)
}

/// A `Vec` of strategies samples each element (fixed length, heterogeneous
/// values of one type).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Lengths may be given as a range or an exact value.
    pub trait IntoLenRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoLenRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s (duplicates collapse, as with upstream).
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S: Strategy, L: IntoLenRange>(element: S, len: L) -> BTreeSetStrategy<S, L>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for BTreeSetStrategy<S, L>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s (note: duplicate keys collapse, so maps may
    /// come out smaller than the drawn length, as with upstream proptest).
    pub struct BTreeMapStrategy<K, V, L> {
        key: K,
        value: V,
        len: L,
    }

    /// `proptest::collection::btree_map`.
    pub fn btree_map<K: Strategy, V: Strategy, L: IntoLenRange>(
        key: K,
        value: V,
        len: L,
    ) -> BTreeMapStrategy<K, V, L>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, len }
    }

    impl<K: Strategy, V: Strategy, L: IntoLenRange> Strategy for BTreeMapStrategy<K, V, L>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::*;

    /// Strategy producing `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $config; $($rest)*);
    };
    (@expand $config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..(__config.cases as u64) {
                let mut __rng = $crate::case_rng(__case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest case {} failed: {}", __case, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Weighted (or uniform) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Property assertion; returns an error (not a panic) so the runner can
/// report the failing case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_are_in_bounds() {
        let mut rng = crate::case_rng(0);
        for _ in 0..100 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let b: bool = Strategy::sample(&any::<bool>(), &mut rng);
            let _ = b;
        }
    }

    #[test]
    fn string_patterns_respect_classes() {
        let mut rng = crate::case_rng(1);
        for _ in 0..50 {
            let s = Strategy::sample(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::sample(&".{0,8}", &mut rng);
            assert!(t.chars().count() <= 8);
            let u = Strategy::sample(&"[A-Za-z<>]{1,16}", &mut rng);
            assert!(u
                .chars()
                .all(|c| c.is_ascii_alphabetic() || c == '<' || c == '>'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn oneof_and_collections(
            v in crate::collection::vec(any::<u8>(), 0..10),
            m in crate::collection::btree_map("[a-c]{1,2}", any::<u32>(), 0..4),
            o in crate::option::of(0u32..5),
            x in prop_oneof![2 => Just(1u8), 1 => Just(2u8)],
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(m.len() <= 3);
            if let Some(val) = o {
                prop_assert!(val < 5, "value {} out of range", val);
            }
            prop_assert_ne!(x, 0u8);
            prop_assert_eq!(x == 1 || x == 2, true);
        }
    }
}
