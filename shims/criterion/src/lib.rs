//! Offline shim for `criterion`.
//!
//! Minimal wall-clock benchmark harness with the criterion API surface this
//! workspace uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`,
//! `iter`/`iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros. Timing is a simple calibrated loop (warmup, then enough
//! iterations to fill the measurement window) reporting mean ns/iter.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus a parameter label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("put", 4096)` renders as `put/4096`.
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Throughput annotation attached to a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched` (ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total measurement window.
    measurement_time: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter*`.
    result_ns: f64,
    iters_done: u64,
}

impl Bencher {
    /// Measure a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that fills the window.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_time || n >= u64::MAX / 2 {
                self.result_ns = elapsed.as_nanos() as f64 / n as f64;
                self.iters_done = n;
                return;
            }
            let target = self.measurement_time.as_nanos() as f64;
            let scale = if elapsed.as_nanos() == 0 {
                64.0
            } else {
                (target / elapsed.as_nanos() as f64).clamp(2.0, 64.0)
            };
            n = ((n as f64) * scale).ceil() as u64;
        }
    }

    /// Measure a routine with setup excluded from timing.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_time || n >= 1 << 24 {
                self.result_ns = elapsed.as_nanos() as f64 / n as f64;
                self.iters_done = n;
                return;
            }
            let target = self.measurement_time.as_nanos() as f64;
            let scale = if elapsed.as_nanos() == 0 {
                64.0
            } else {
                (target / elapsed.as_nanos() as f64).clamp(2.0, 64.0)
            };
            n = ((n as f64) * scale).ceil() as u64;
        }
    }
}

fn run_one(
    name: &str,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        measurement_time,
        result_ns: 0.0,
        iters_done: 0,
    };
    f(&mut bencher);
    let ns = bencher.result_ns;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if ns > 0.0 => {
            let mibps = (b as f64) / (ns / 1e9) / (1024.0 * 1024.0);
            format!("  ({mibps:.1} MiB/s)")
        }
        Some(Throughput::Elements(e)) if ns > 0.0 => {
            let eps = (e as f64) / (ns / 1e9);
            format!("  ({eps:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} {ns:>14.1} ns/iter  [{} iters]{rate}",
        bencher.iters_done
    );
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the measurement window for this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.criterion.measurement_time = dur;
        self
    }

    /// Override sample count (ignored; kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(
            &full,
            self.criterion.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(
            &full,
            self.criterion.measurement_time,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (no-op; matches criterion's API).
    pub fn finish(&mut self) {}
}

/// Accepts either a `&str` or a [`BenchmarkId`] as a benchmark name.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// The benchmark harness.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short default window: these shim benches run inside test jobs.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Set sample count (ignored; kept for API compatibility).
    pub fn sample_size(mut self, _n: usize) -> Self {
        let _ = &mut self;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    /// Set the warm-up window (ignored; the timing loop self-calibrates).
    pub fn warm_up_time(mut self, _dur: Duration) -> Self {
        let _ = &mut self;
        self
    }

    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.measurement_time, None, &mut f);
        self
    }

    /// Run a standalone benchmark parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.id.clone();
        run_one(&name, self.measurement_time, None, &mut |b| f(b, input));
        self
    }

    /// Finalize (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declare a benchmark group: plain target list or `name = ...; config = ...;
/// targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
    }

    #[test]
    fn group_with_throughput_and_batched() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("smoke_group");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter_batched(
                || vec![1u8; n],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
