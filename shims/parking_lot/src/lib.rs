//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Implements the subset of the parking_lot 0.12 API that this workspace
//! uses: `Mutex`, `RwLock`, `Condvar` (with `wait` / `wait_until` taking the
//! guard by `&mut`), and the corresponding guard types. Poisoning is
//! swallowed (parking_lot has no poisoning), and all locks are created
//! through `const`-compatible constructors where std allows it.

use std::sync::{self, TryLockError};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Mutual exclusion primitive (std-backed, poison-free API).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock (std-backed, poison-free API).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Try to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`].
///
/// parking_lot's condvar takes the guard by `&mut` (the guard stays valid
/// after the wait). We emulate that on top of std's move-based API by
/// briefly moving the inner guard out and back.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified; the guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => (g, ()),
            Err(p) => (p.into_inner(), ()),
        });
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        replace_guard(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, t)) => (
                g,
                WaitTimeoutResult {
                    timed_out: t.timed_out(),
                },
            ),
            Err(p) => {
                let (g, t) = p.into_inner();
                (
                    g,
                    WaitTimeoutResult {
                        timed_out: t.timed_out(),
                    },
                )
            }
        })
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let deadline = Instant::now() + timeout;
        self.wait_until(guard, deadline)
    }

    /// Wake one waiter. Returns whether a thread was woken (always `true`
    /// here; std does not report it, parking_lot does — callers in this
    /// workspace ignore the value).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters. Returns the number woken (unknown under std; 0).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// Run `f` on the inner std guard, temporarily moving it out of `guard`.
///
/// Safety: we never leave `guard` without an inner guard — `f` always
/// returns a re-acquired guard (std's wait APIs re-lock before returning,
/// even on poison, which we unwrap).
fn replace_guard<'a, T, R>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> (sync::MutexGuard<'a, T>, R),
) -> R {
    // Move the inner guard out by value via a bitwise move, call `f`, then
    // write the returned guard back. `ManuallyDrop` + `ptr` keeps this sound
    // without an `Option` in the hot guard type.
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let (inner, out) = f(inner);
        std::ptr::write(&mut guard.inner, inner);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut g = m.lock();
        while !*g {
            c.wait(&mut g);
        }
        assert!(*g);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
