//! Offline shim for `serde`.
//!
//! A faithful subset of the serde data model: the `ser` / `de` trait
//! families, `Serialize` / `Deserialize` implementations for the std types
//! this workspace serializes, and (behind the `derive` feature) re-exports
//! of the `serde_derive` proc-macros. Signatures mirror upstream serde so
//! hand-written (de)serializers like `hepnos::binser` compile unchanged.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
