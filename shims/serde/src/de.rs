//! Deserialization half of the serde data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A struct field was expected but absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// A field name did not match any known field.
    fn unknown_field(field: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown field `{field}`, expected one of {expected:?}"
        ))
    }

    /// A variant name/index did not match any known variant.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A field appeared twice.
    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }

    /// The input contained a value of the wrong type.
    fn invalid_type(unexpected: &str, expected: &dyn Display) -> Self {
        Self::custom(format_args!(
            "invalid type: {unexpected}, expected {expected}"
        ))
    }

    /// The input contained a value out of range.
    fn invalid_value(unexpected: &str, expected: &dyn Display) -> Self {
        Self::custom(format_args!(
            "invalid value: {unexpected}, expected {expected}"
        ))
    }

    /// A sequence or map had the wrong number of elements.
    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }
}

/// A type constructible from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Drive `deserializer` to build `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Deserialize`] that borrows nothing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point; `PhantomData<T>` is the stateless
/// seed for any `T: Deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    /// Value produced.
    type Value;
    /// Drive `deserializer` using the seed's state.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data-format backend, driven by [`Deserialize`] implementations.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

macro_rules! visit_default {
    ($($name:ident: $ty:ty => $what:expr),* $(,)?) => {$(
        /// Visit one input value (errors by default).
        fn $name<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::invalid_type($what, &self.wants()))
        }
    )*};
}

/// Receives values from a [`Deserializer`]; implementors override the
/// `visit_*` methods for the shapes they accept.
pub trait Visitor<'de>: Sized {
    /// Value produced by this visitor.
    type Value;

    /// Human-readable description of what the visitor expects.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    #[doc(hidden)]
    fn wants(&self) -> String {
        struct W<'a, V>(&'a V);
        impl<'de, V: Visitor<'de>> Display for W<'_, V> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.expecting(f)
            }
        }
        W(self).to_string()
    }

    visit_default! {
        visit_bool: bool => "a boolean",
        visit_i8: i8 => "an integer",
        visit_i16: i16 => "an integer",
        visit_i32: i32 => "an integer",
        visit_u8: u8 => "an integer",
        visit_u16: u16 => "an integer",
        visit_u32: u32 => "an integer",
        visit_f32: f32 => "a float",
    }

    /// Visit a 64-bit signed integer.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("an integer", &self.wants()))
    }

    /// Visit a 128-bit signed integer.
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("an integer", &self.wants()))
    }

    /// Visit a 64-bit unsigned integer.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("an integer", &self.wants()))
    }

    /// Visit a 128-bit unsigned integer.
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("an integer", &self.wants()))
    }

    /// Visit a 64-bit float.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("a float", &self.wants()))
    }

    /// Visit a character (defaults to a one-char string).
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }

    /// Visit a borrowed-for-this-call string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("a string", &self.wants()))
    }

    /// Visit a string borrowed from the input itself.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visit an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visit borrowed-for-this-call bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("bytes", &self.wants()))
    }

    /// Visit bytes borrowed from the input itself.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visit an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visit an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("none", &self.wants()))
    }

    /// Visit a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::invalid_type("some", &self.wants()))
    }

    /// Visit a unit value.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("unit", &self.wants()))
    }

    /// Visit a newtype struct's inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::invalid_type("newtype struct", &self.wants()))
    }

    /// Visit a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::invalid_type("a sequence", &self.wants()))
    }

    /// Visit a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::invalid_type("a map", &self.wants()))
    }

    /// Visit an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::invalid_type("an enum", &self.wants()))
    }
}

/// Iterator-like access to a serialized sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Next element via an explicit seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Next element of a known `Deserialize` type.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Iterator-like access to a serialized map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Next key via an explicit seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Value for the key just returned, via an explicit seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Next key of a known `Deserialize` type.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Next value of a known `Deserialize` type.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Next full entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of a serialized enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Accessor for the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Read the variant tag via an explicit seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Read the variant tag as a known `Deserialize` type.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// The variant carries no payload.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// The variant carries one value, via an explicit seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// The variant carries one value of a known type.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// The variant carries a tuple payload.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// The variant carries named fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// A value that accepts and discards any input shape (used to skip unknown
/// fields in self-describing formats).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IgnoredAny;

impl<'de> Visitor<'de> for IgnoredAny {
    type Value = IgnoredAny;

    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("anything")
    }

    fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_i128<E: Error>(self, _: i128) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_u128<E: Error>(self, _: u128) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_bytes<E: Error>(self, _: &[u8]) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<IgnoredAny, D::Error> {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
    fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<IgnoredAny, D::Error> {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
        while seq.next_element::<IgnoredAny>()?.is_some() {}
        Ok(IgnoredAny)
    }
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
        while map.next_key::<IgnoredAny>()?.is_some() {
            map.next_value::<IgnoredAny>()?;
        }
        Ok(IgnoredAny)
    }
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<IgnoredAny, A::Error> {
        data.variant::<IgnoredAny>()?.1.newtype_variant()
    }
}

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<IgnoredAny, D::Error> {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! int_visitor {
    ($ty:ty, $deserialize:ident, $visitor:ident) => {
        struct $visitor;

        impl<'de> Visitor<'de> for $visitor {
            type Value = $ty;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str(stringify!($ty))
            }
            fn visit_i8<E: Error>(self, v: i8) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
            fn visit_i16<E: Error>(self, v: i16) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
            fn visit_i32<E: Error>(self, v: i32) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
            fn visit_i128<E: Error>(self, v: i128) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
            fn visit_u8<E: Error>(self, v: u8) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
            fn visit_u16<E: Error>(self, v: u16) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
            fn visit_u32<E: Error>(self, v: u32) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
            fn visit_u128<E: Error>(self, v: u128) -> Result<$ty, E> {
                <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<$ty, D::Error> {
                deserializer.$deserialize($visitor)
            }
        }
    };
}

int_visitor!(i8, deserialize_i8, I8Visitor);
int_visitor!(i16, deserialize_i16, I16Visitor);
int_visitor!(i32, deserialize_i32, I32Visitor);
int_visitor!(i64, deserialize_i64, I64Visitor);
int_visitor!(i128, deserialize_i128, I128Visitor);
int_visitor!(u8, deserialize_u8, U8Visitor);
int_visitor!(u16, deserialize_u16, U16Visitor);
int_visitor!(u32, deserialize_u32, U32Visitor);
int_visitor!(u64, deserialize_u64, U64Visitor);
int_visitor!(u128, deserialize_u128, U128Visitor);
int_visitor!(usize, deserialize_u64, UsizeVisitor);
int_visitor!(isize, deserialize_i64, IsizeVisitor);

struct BoolVisitor;
impl<'de> Visitor<'de> for BoolVisitor {
    type Value = bool;
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("a boolean")
    }
    fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
        Ok(v)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<bool, D::Error> {
        deserializer.deserialize_bool(BoolVisitor)
    }
}

macro_rules! float_visitor {
    ($ty:ty, $deserialize:ident, $visitor:ident) => {
        struct $visitor;
        impl<'de> Visitor<'de> for $visitor {
            type Value = $ty;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str(stringify!($ty))
            }
            fn visit_f32<E: Error>(self, v: f32) -> Result<$ty, E> {
                Ok(v as $ty)
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<$ty, E> {
                Ok(v as $ty)
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                Ok(v as $ty)
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                Ok(v as $ty)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<$ty, D::Error> {
                deserializer.$deserialize($visitor)
            }
        }
    };
}

float_visitor!(f32, deserialize_f32, F32Visitor);
float_visitor!(f64, deserialize_f64, F64Visitor);

struct CharVisitor;
impl<'de> Visitor<'de> for CharVisitor {
    type Value = char;
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("a character")
    }
    fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
        Ok(v)
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
        let mut chars = v.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(E::custom("expected a single-character string")),
        }
    }
}
impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<char, D::Error> {
        deserializer.deserialize_char(CharVisitor)
    }
}

struct StringVisitor;
impl<'de> Visitor<'de> for StringVisitor {
    type Value = String;
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("a string")
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
        Ok(v.to_owned())
    }
    fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
        Ok(v)
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<String, D::Error> {
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for std::path::PathBuf {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(std::path::PathBuf::from(String::deserialize(deserializer)?))
    }
}

struct UnitVisitor;
impl<'de> Visitor<'de> for UnitVisitor {
    type Value = ();
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("unit")
    }
    fn visit_unit<E: Error>(self) -> Result<(), E> {
        Ok(())
    }
}
impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<(), D::Error> {
        deserializer.deserialize_unit(UnitVisitor)
    }
}

struct OptionVisitor<T>(PhantomData<T>);
impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
    type Value = Option<T>;
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("an optional value")
    }
    fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
        Ok(None)
    }
    fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
        Ok(None)
    }
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Option<T>, D::Error> {
        T::deserialize(deserializer).map(Some)
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Option<T>, D::Error> {
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

struct VecVisitor<T>(PhantomData<T>);
impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
    type Value = Vec<T>;
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("a sequence")
    }
    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
        let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
        while let Some(item) = seq.next_element()? {
            out.push(item);
        }
        Ok(out)
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Vec<T>, D::Error> {
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

struct BTreeMapVisitor<K, V>(PhantomData<(K, V)>);
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for BTreeMapVisitor<K, V> {
    type Value = std::collections::BTreeMap<K, V>;
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("a map")
    }
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
        let mut out = std::collections::BTreeMap::new();
        while let Some((k, v)) = map.next_entry()? {
            out.insert(k, v);
        }
        Ok(out)
    }
}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_map(BTreeMapVisitor(PhantomData))
    }
}

struct HashMapVisitor<K, V>(PhantomData<(K, V)>);
impl<'de, K: Deserialize<'de> + Eq + std::hash::Hash, V: Deserialize<'de>> Visitor<'de>
    for HashMapVisitor<K, V>
{
    type Value = std::collections::HashMap<K, V>;
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("a map")
    }
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
        let mut out = std::collections::HashMap::new();
        while let Some((k, v)) = map.next_entry()? {
            out.insert(k, v);
        }
        Ok(out)
    }
}
impl<'de, K: Deserialize<'de> + Eq + std::hash::Hash, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_map(HashMapVisitor(PhantomData))
    }
}

struct BTreeSetVisitor<T>(PhantomData<T>);
impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for BTreeSetVisitor<T> {
    type Value = std::collections::BTreeSet<T>;
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str("a sequence")
    }
    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
        let mut out = std::collections::BTreeSet::new();
        while let Some(item) = seq.next_element()? {
            out.insert(item);
        }
        Ok(out)
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_seq(BTreeSetVisitor(PhantomData))
    }
}

struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
    type Value = [T; N];
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "an array of length {N}")
    }
    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
        let mut out = Vec::with_capacity(N);
        for i in 0..N {
            match seq.next_element()? {
                Some(v) => out.push(v),
                None => return Err(Error::invalid_length(i, &format_args!("array of {N}"))),
            }
        }
        out.try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<[T; N], D::Error> {
        deserializer.deserialize_tuple(N, ArrayVisitor(PhantomData))
    }
}

macro_rules! deserialize_tuples {
    ($(($len:expr => $($t:ident),+))+) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case, unused_assignments)]
                    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                        let mut taken = 0usize;
                        $(
                            let $t: $t = match seq.next_element()? {
                                Some(v) => { taken += 1; v }
                                None => return Err(Error::invalid_length(
                                    taken,
                                    &format_args!("tuple of {}", $len),
                                )),
                            };
                        )+
                        Ok(($($t,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )+};
}

deserialize_tuples! {
    (1 => T0)
    (2 => T0, T1)
    (3 => T0, T1, T2)
    (4 => T0, T1, T2, T3)
    (5 => T0, T1, T2, T3, T4)
    (6 => T0, T1, T2, T3, T4, T5)
    (7 => T0, T1, T2, T3, T4, T5, T6)
    (8 => T0, T1, T2, T3, T4, T5, T6, T7)
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Box<T>, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// value: trivial deserializers wrapping a single already-decoded value
// ---------------------------------------------------------------------------

/// Deserializers that replay one primitive value into a visitor.
pub mod value {
    use super::*;

    macro_rules! forward_all_to {
        ($visit:ident, $field:ident) => {
            fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.$visit(self.$field)
            }
            fn deserialize_bool<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_i8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_i16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_i32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_i64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_i128<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_u8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_u16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_u32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_u64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_u128<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_f32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_f64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_char<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_str<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_string<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_bytes<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_byte_buf<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_option<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_unit<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_unit_struct<V: Visitor<'de>>(
                self,
                _n: &'static str,
                v: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_newtype_struct<V: Visitor<'de>>(
                self,
                _n: &'static str,
                v: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_seq<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_tuple<V: Visitor<'de>>(self, _l: usize, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_tuple_struct<V: Visitor<'de>>(
                self,
                _n: &'static str,
                _l: usize,
                v: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_map<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_struct<V: Visitor<'de>>(
                self,
                _n: &'static str,
                _f: &'static [&'static str],
                v: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_enum<V: Visitor<'de>>(
                self,
                _n: &'static str,
                _va: &'static [&'static str],
                v: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_identifier<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
            fn deserialize_ignored_any<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
                self.deserialize_any(v)
            }
        };
    }

    /// Replays one `u32` (e.g. an enum variant index) into any visitor.
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        /// Wrap a value.
        pub fn new(value: u32) -> Self {
            U32Deserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;
        forward_all_to!(visit_u32, value);
    }

    /// Replays one borrowed string into any visitor.
    pub struct StrDeserializer<'a, E> {
        value: &'a str,
        marker: PhantomData<E>,
    }

    impl<'a, E> StrDeserializer<'a, E> {
        /// Wrap a value.
        pub fn new(value: &'a str) -> Self {
            StrDeserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    impl<'de, 'a, E: Error> Deserializer<'de> for StrDeserializer<'a, E> {
        type Error = E;
        forward_all_to!(visit_str, value);
    }
}
