//! Offline shim for `serde_derive`.
//!
//! Derives `Serialize` / `Deserialize` for the shapes this workspace uses:
//! named-field structs and enums with unit / newtype / tuple / struct
//! variants. Supported attributes: `#[serde(rename_all = "lowercase")]`,
//! `#[serde(rename = "...")]`, `#[serde(default)]`,
//! `#[serde(default = "path")]`.
//!
//! The macro never parses field *types* — generated code builds the value
//! with struct-literal syntax and lets inference pick the element type of
//! each `next_element()` / `next_value()` call, which keeps the parser tiny.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    ser_name: String,
    /// `None`: required. `Some(None)`: `Default::default()`.
    /// `Some(Some(path))`: call `path()`.
    default: Option<Option<String>>,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    ser_name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// serde attr key/value pairs pulled from `#[...]` runs; other attrs skipped.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    while *i < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*i + 1) else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(&inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                out.extend(parse_serde_args(args.stream()));
            }
        }
        *i += 2;
    }
    out
}

/// Parse `key`, `key = "value"` pairs separated by commas.
fn parse_serde_args(ts: TokenStream) -> Vec<(String, Option<String>)> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(key) = &tokens[i] else {
            panic!("unsupported serde attribute syntax");
        };
        let key = key.to_string();
        i += 1;
        let mut value = None;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            let Some(TokenTree::Literal(lit)) = tokens.get(i) else {
                panic!("serde attribute `{key}` expects a string literal");
            };
            value = Some(strip_quotes(&lit.to_string()));
            i += 1;
        }
        out.push((key, value));
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    out
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Skip `pub`, `pub(crate)`, etc.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(&tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skip one type, leaving `i` on the top-level `,` (or at end).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Number of comma-separated types in a tuple-variant payload.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < tokens.len() {
        n += 1;
        skip_type(&tokens, &mut i);
        i += 1; // past the comma (or off the end)
    }
    n
}

fn apply_rename_all(name: &str, rule: Option<&str>) -> String {
    match rule {
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some(other) => panic!("unsupported rename_all rule `{other}`"),
        None => name.to_string(),
    }
}

/// Parse the named fields inside a brace group.
fn parse_fields(ts: TokenStream, rename_all: Option<&str>) -> Vec<Field> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected field name, found `{}`", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        i += 1; // past the comma (or off the end)

        let mut ser_name = apply_rename_all(&name, rename_all);
        let mut default = None;
        for (key, value) in attrs {
            match key.as_str() {
                "rename" => ser_name = value.expect("rename needs a value"),
                "default" => default = Some(value),
                other => panic!("unsupported serde field attribute `{other}`"),
            }
        }
        fields.push(Field {
            name,
            ser_name,
            default,
        });
    }
    fields
}

/// Parse the variants inside an enum's brace group.
fn parse_variants(ts: TokenStream, rename_all: Option<&str>) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected variant name, found `{}`", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_tuple_fields(g.stream()) {
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_fields(g.stream(), None))
            }
            _ => Shape::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }

        let mut ser_name = apply_rename_all(&name, rename_all);
        for (key, value) in attrs {
            match key.as_str() {
                "rename" => ser_name = value.expect("rename needs a value"),
                other => panic!("unsupported serde variant attribute `{other}`"),
            }
        }
        variants.push(Variant {
            name,
            ser_name,
            shape,
        });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = take_attrs(&tokens, &mut i);
    let mut rename_all = None;
    for (key, value) in attrs {
        match key.as_str() {
            "rename_all" => rename_all = value,
            other => panic!("unsupported serde container attribute `{other}`"),
        }
    }
    skip_visibility(&tokens, &mut i);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected type name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic types are not supported by the serde_derive shim");
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        panic!("expected a braced body (tuple/unit structs unsupported)");
    };
    assert!(
        body.delimiter() == Delimiter::Brace,
        "expected a braced body (tuple/unit structs unsupported)"
    );
    match kw.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_fields(body.stream(), rename_all.as_deref()),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body.stream(), rename_all.as_deref()),
        },
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let mut s = String::new();
    match input {
        Input::Struct { name, fields } => {
            s.push_str(&format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> core::result::Result<__S::Ok, __S::Error> {{\n\
                 use serde::ser::SerializeStruct;\n\
                 let mut __state = __serializer.serialize_struct(\"{name}\", {}usize)?;\n",
                fields.len()
            ));
            for f in fields {
                s.push_str(&format!(
                    "__state.serialize_field(\"{}\", &self.{})?;\n",
                    f.ser_name, f.name
                ));
            }
            s.push_str("__state.end()\n}\n}\n");
        }
        Input::Enum { name, variants } => {
            s.push_str(&format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> core::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n"
            ));
            for (idx, v) in variants.iter().enumerate() {
                let (vname, sname) = (&v.name, &v.ser_name);
                match &v.shape {
                    Shape::Unit => s.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_unit_variant(\
                         \"{name}\", {idx}u32, \"{sname}\"),\n"
                    )),
                    Shape::Newtype => s.push_str(&format!(
                        "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant(\
                         \"{name}\", {idx}u32, \"{sname}\", __f0),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        s.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             use serde::ser::SerializeTupleVariant;\n\
                             let mut __state = __serializer.serialize_tuple_variant(\
                             \"{name}\", {idx}u32, \"{sname}\", {n}usize)?;\n",
                            binds.join(", ")
                        ));
                        for b in &binds {
                            s.push_str(&format!("__state.serialize_field({b})?;\n"));
                        }
                        s.push_str("__state.end()\n}\n");
                    }
                    Shape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        s.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             use serde::ser::SerializeStructVariant;\n\
                             let mut __state = __serializer.serialize_struct_variant(\
                             \"{name}\", {idx}u32, \"{sname}\", {}usize)?;\n",
                            binds.join(", "),
                            fields.len()
                        ));
                        for f in fields {
                            s.push_str(&format!(
                                "__state.serialize_field(\"{}\", {})?;\n",
                                f.ser_name, f.name
                            ));
                        }
                        s.push_str("__state.end()\n}\n");
                    }
                }
            }
            s.push_str("}\n}\n}\n");
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// `visit_seq` + `visit_map` bodies building `ctor { fields... }`.
///
/// `ctor` is the path used in the struct literal (the type name for plain
/// structs, `Enum::Variant` for struct variants).
fn gen_field_visitor_methods(ctor: &str, expecting: &str, fields: &[Field]) -> String {
    let mut s = String::new();

    // visit_seq: positional (binser structs, tuple-encoded struct payloads).
    s.push_str(
        "fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
         -> core::result::Result<Self::Value, __A::Error> {\n",
    );
    s.push_str(&format!("core::result::Result::Ok({ctor} {{\n"));
    for (i, f) in fields.iter().enumerate() {
        let on_missing = match &f.default {
            None => format!(
                "return core::result::Result::Err(serde::de::Error::invalid_length({i}usize, &\"{expecting}\"))"
            ),
            Some(None) => "core::default::Default::default()".to_string(),
            Some(Some(path)) => format!("{path}()"),
        };
        s.push_str(&format!(
            "{}: match __seq.next_element()? {{\n\
             core::option::Option::Some(__v) => __v,\n\
             core::option::Option::None => {on_missing},\n\
             }},\n",
            f.name
        ));
    }
    s.push_str("})\n}\n");

    // visit_map: named keys (JSON), unknown fields skipped.
    s.push_str(
        "fn visit_map<__A: serde::de::MapAccess<'de>>(self, mut __map: __A) \
         -> core::result::Result<Self::Value, __A::Error> {\n",
    );
    for (i, _) in fields.iter().enumerate() {
        s.push_str(&format!("let mut __opt{i} = core::option::Option::None;\n"));
    }
    s.push_str("while let core::option::Option::Some(__key) = __map.next_key::<String>()? {\n");
    s.push_str("match __key.as_str() {\n");
    for (i, f) in fields.iter().enumerate() {
        s.push_str(&format!(
            "\"{0}\" => {{\n\
             if __opt{i}.is_some() {{\n\
             return core::result::Result::Err(serde::de::Error::duplicate_field(\"{0}\"));\n\
             }}\n\
             __opt{i} = core::option::Option::Some(__map.next_value()?);\n\
             }}\n",
            f.ser_name
        ));
    }
    s.push_str(
        "_ => { let _ = __map.next_value::<serde::de::IgnoredAny>()?; }\n\
         }\n\
         }\n",
    );
    s.push_str(&format!("core::result::Result::Ok({ctor} {{\n"));
    for (i, f) in fields.iter().enumerate() {
        let on_missing = match &f.default {
            None => format!(
                "return core::result::Result::Err(serde::de::Error::missing_field(\"{}\"))",
                f.ser_name
            ),
            Some(None) => "core::default::Default::default()".to_string(),
            Some(Some(path)) => format!("{path}()"),
        };
        s.push_str(&format!(
            "{}: match __opt{i} {{\n\
             core::option::Option::Some(__v) => __v,\n\
             core::option::Option::None => {on_missing},\n\
             }},\n",
            f.name
        ));
    }
    s.push_str("})\n}\n");
    s
}

/// A positional-only `visit_seq` building `ctor(f0, f1, ...)`.
fn gen_tuple_visitor_methods(ctor: &str, expecting: &str, n: usize) -> String {
    let mut s = String::new();
    s.push_str(
        "fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
         -> core::result::Result<Self::Value, __A::Error> {\n",
    );
    for i in 0..n {
        s.push_str(&format!(
            "let __f{i} = match __seq.next_element()? {{\n\
             core::option::Option::Some(__v) => __v,\n\
             core::option::Option::None => return core::result::Result::Err(\
             serde::de::Error::invalid_length({i}usize, &\"{expecting}\")),\n\
             }};\n"
        ));
    }
    let binds: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
    s.push_str(&format!(
        "core::result::Result::Ok({ctor}({}))\n}}\n",
        binds.join(", ")
    ));
    s
}

fn gen_deserialize(input: &Input) -> String {
    let mut s = String::new();
    match input {
        Input::Struct { name, fields } => {
            let field_names: Vec<String> = fields
                .iter()
                .map(|f| format!("\"{}\"", f.ser_name))
                .collect();
            s.push_str(&format!(
                "#[automatically_derived]\n\
                 impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
                 __f.write_str(\"struct {name}\")\n\
                 }}\n"
            ));
            s.push_str(&gen_field_visitor_methods(
                name,
                &format!("struct {name}"),
                fields,
            ));
            s.push_str(&format!(
                "}}\n\
                 __deserializer.deserialize_struct(\"{name}\", &[{}], __Visitor)\n\
                 }}\n\
                 }}\n",
                field_names.join(", ")
            ));
        }
        Input::Enum { name, variants } => {
            let variant_names: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{}\"", v.ser_name))
                .collect();
            let n_variants = variants.len();
            s.push_str(&format!(
                "#[automatically_derived]\n\
                 impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> core::result::Result<Self, __D::Error> {{\n\
                 const __VARIANTS: &[&str] = &[{var_list}];\n\
                 struct __Tag(u32);\n\
                 impl<'de> serde::Deserialize<'de> for __Tag {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> core::result::Result<Self, __D::Error> {{\n\
                 struct __TagVisitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __TagVisitor {{\n\
                 type Value = __Tag;\n\
                 fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
                 __f.write_str(\"variant identifier\")\n\
                 }}\n\
                 fn visit_u32<__E: serde::de::Error>(self, __v: u32) \
                 -> core::result::Result<__Tag, __E> {{\n\
                 if (__v as usize) < {n_variants}usize {{\n\
                 core::result::Result::Ok(__Tag(__v))\n\
                 }} else {{\n\
                 core::result::Result::Err(serde::de::Error::custom(\
                 format_args!(\"variant index {{}} out of range for {name}\", __v)))\n\
                 }}\n\
                 }}\n\
                 fn visit_u64<__E: serde::de::Error>(self, __v: u64) \
                 -> core::result::Result<__Tag, __E> {{\n\
                 self.visit_u32(u32::try_from(__v).map_err(|_| \
                 <__E as serde::de::Error>::custom(\"variant index out of range\"))?)\n\
                 }}\n\
                 fn visit_str<__E: serde::de::Error>(self, __v: &str) \
                 -> core::result::Result<__Tag, __E> {{\n\
                 match __v {{\n",
                var_list = variant_names.join(", ")
            ));
            for (idx, v) in variants.iter().enumerate() {
                s.push_str(&format!(
                    "\"{}\" => core::result::Result::Ok(__Tag({idx}u32)),\n",
                    v.ser_name
                ));
            }
            s.push_str(&format!(
                "_ => core::result::Result::Err(\
                 serde::de::Error::unknown_variant(__v, __VARIANTS)),\n\
                 }}\n\
                 }}\n\
                 }}\n\
                 __deserializer.deserialize_identifier(__TagVisitor)\n\
                 }}\n\
                 }}\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n\
                 }}\n\
                 fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
                 -> core::result::Result<Self::Value, __A::Error> {{\n\
                 use serde::de::VariantAccess;\n\
                 let (__tag, __variant) = __data.variant::<__Tag>()?;\n\
                 match __tag.0 {{\n"
            ));
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => s.push_str(&format!(
                        "{idx}u32 => {{\n\
                         __variant.unit_variant()?;\n\
                         core::result::Result::Ok({name}::{vname})\n\
                         }}\n"
                    )),
                    Shape::Newtype => s.push_str(&format!(
                        "{idx}u32 => core::result::Result::Ok(\
                         {name}::{vname}(__variant.newtype_variant()?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        s.push_str(&format!(
                            "{idx}u32 => {{\n\
                             struct __V;\n\
                             impl<'de> serde::de::Visitor<'de> for __V {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut core::fmt::Formatter) \
                             -> core::fmt::Result {{\n\
                             __f.write_str(\"tuple variant {name}::{vname}\")\n\
                             }}\n"
                        ));
                        s.push_str(&gen_tuple_visitor_methods(
                            &format!("{name}::{vname}"),
                            &format!("tuple variant {name}::{vname}"),
                            *n,
                        ));
                        s.push_str(&format!(
                            "}}\n\
                             __variant.tuple_variant({n}usize, __V)\n\
                             }}\n"
                        ));
                    }
                    Shape::Struct(fields) => {
                        let field_names: Vec<String> = fields
                            .iter()
                            .map(|f| format!("\"{}\"", f.ser_name))
                            .collect();
                        s.push_str(&format!(
                            "{idx}u32 => {{\n\
                             struct __V;\n\
                             impl<'de> serde::de::Visitor<'de> for __V {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut core::fmt::Formatter) \
                             -> core::fmt::Result {{\n\
                             __f.write_str(\"struct variant {name}::{vname}\")\n\
                             }}\n"
                        ));
                        s.push_str(&gen_field_visitor_methods(
                            &format!("{name}::{vname}"),
                            &format!("struct variant {name}::{vname}"),
                            fields,
                        ));
                        s.push_str(&format!(
                            "}}\n\
                             __variant.struct_variant(&[{}], __V)\n\
                             }}\n",
                            field_names.join(", ")
                        ));
                    }
                }
            }
            s.push_str(&format!(
                "_ => core::result::Result::Err(serde::de::Error::custom(\
                 \"variant index out of range for {name}\")),\n\
                 }}\n\
                 }}\n\
                 }}\n\
                 __deserializer.deserialize_enum(\"{name}\", __VARIANTS, __Visitor)\n\
                 }}\n\
                 }}\n"
            ));
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}
