//! Offline shim for the `bytes` crate.
//!
//! `Bytes` is a cheaply-cloneable view into a reference-counted buffer
//! (`Arc<[u8]>` + start/end offsets), `BytesMut` is a growable builder that
//! freezes into `Bytes`, and the `Buf` / `BufMut` traits carry the
//! little-endian cursor helpers this workspace relies on.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Buf / BufMut
// ---------------------------------------------------------------------------

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy bytes out into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

enum Repr {
    // `Arc<Vec<u8>>` rather than `Arc<[u8]>`: converting a `Vec` into an
    // `Arc<[u8]>` must copy the data into a fresh allocation (the refcount
    // header lives inline), which made every `BytesMut::freeze` on the RPC
    // hot path a full buffer copy. Wrapping the `Vec` itself keeps freeze
    // zero-copy at the cost of carrying the Vec's spare capacity along.
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

impl Clone for Repr {
    fn clone(&self) -> Repr {
        match self {
            Repr::Shared(a) => Repr::Shared(Arc::clone(a)),
            Repr::Static(s) => Repr::Static(s),
        }
    }
}

/// Cheaply-cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        let full: &[u8] = match &self.repr {
            Repr::Shared(a) => a,
            Repr::Static(s) => s,
        };
        &full[self.start..self.end]
    }

    /// A sub-view sharing the same backing buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            repr: self.repr.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Split off and return the tail from `at`; `self` keeps the head.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            repr: self.repr.clone(),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Copy the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

// ---------------------------------------------------------------------------
// BytesMut
// ---------------------------------------------------------------------------

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Shorten to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        let head = std::mem::replace(&mut self.buf, rest);
        BytesMut { buf: head }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { buf: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { buf: s.to_vec() }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::copy_from_slice(&self.buf).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slicing_and_split() {
        let mut b = Bytes::from(b"hello world".to_vec());
        assert_eq!(b.len(), 11);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        let s = head.slice(1..3);
        assert_eq!(&s[..], b"el");
        let s2 = head.slice(..2);
        assert_eq!(&s2[..], b"he");
    }

    #[test]
    fn buf_cursor_le_reads() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16_le(300);
        m.put_u32_le(70_000);
        m.put_u64_le(u64::MAX - 1);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.remaining(), 2);
        assert_eq!(&b.split_to(2)[..], b"xy");
        assert!(!b.has_remaining());
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![1u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(10..20), c.slice(10..20));
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_to_past_end_panics() {
        let mut b = Bytes::from_static(b"abc");
        let _ = b.split_to(4);
    }
}
