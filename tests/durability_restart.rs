//! End-to-end durability: ingest a NOvA workload through HEPnOS onto the
//! LSM backend, restart every provider (tear the deployment down, relaunch
//! on the same data directories), and require the restarted cluster to
//! serve back byte-identical data — zero lost acknowledged writes.
//!
//! This is the serving-path counterpart of `crates/lsmdb/tests/recovery.rs`:
//! there the engine is crashed at hostile points of its own protocol; here
//! the whole stack above it (bedrock config, yokan backend wiring, HEPnOS
//! key encoding) must round-trip through a provider restart.

use bedrock::{BackendKind, DbCounts, LsmConfig};
use hepnos::testing::{local_deployment_tuned, LocalDeployment};
use mercurio::NetworkModel;
use nova::loader::{load_slices, slice_label, summary_label, summary_type_name, DataLoader};
use nova::{files, NovaGenerator};
use std::collections::BTreeMap;
use std::path::Path;

const NODES: usize = 2;

/// Everything the cluster serves for the `nova` dataset, keyed by event
/// coordinates: decoded slices plus the raw summary product bytes.
type Harvest = BTreeMap<(u64, u64, u64), (Vec<nova::SliceQuantities>, Vec<u8>)>;

fn harvest(store: &hepnos::DataStore) -> Harvest {
    let ds = store.root().dataset("nova").unwrap();
    let mut out = Harvest::new();
    for run in ds.runs().unwrap() {
        for subrun in run.subruns().unwrap() {
            for event in subrun.events().unwrap() {
                let (r, s, e) = event.coordinates();
                let slices = load_slices(&event)
                    .unwrap()
                    .expect("ingested event lost its slice product");
                let summary = event
                    .load_raw(&summary_label(), &summary_type_name())
                    .unwrap()
                    .expect("ingested event lost its summary product");
                out.insert((r, s, e), (slices, summary));
            }
        }
    }
    out
}

fn lsm_deployment(data_dir: &Path, tune: LsmConfig) -> LocalDeployment {
    lsm_deployment_counts(data_dir, tune, DbCounts::default())
}

fn lsm_deployment_counts(data_dir: &Path, tune: LsmConfig, counts: DbCounts) -> LocalDeployment {
    local_deployment_tuned(
        NODES,
        counts,
        BackendKind::Lsm,
        Some(data_dir.to_path_buf()),
        NetworkModel::default(),
        move |cfg| cfg.lsm = Some(tune.clone()),
    )
}

fn run_restart_roundtrip(name: &str, tune: LsmConfig, n_files: u64, events_per_file: u64) {
    let base = std::env::temp_dir().join(format!("hepnos-durable-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let file_dir = base.join("files");
    let data_dir = base.join("data");

    let gen = NovaGenerator::new(42);
    let paths = files::write_dataset(&file_dir, &gen, n_files, events_per_file).unwrap();

    // Deployment #1: ingest. Every operation below unwraps, so everything
    // in `paths` was acknowledged by the service.
    let dep = lsm_deployment(&data_dir, tune.clone());
    let store = dep.datastore();
    let ds = store.root().create_dataset("nova").unwrap();
    let stats = DataLoader::new(store.clone(), ds)
        .ingest_files(&paths)
        .unwrap();
    assert!(stats.events > 0, "ingest stored nothing");
    let before = harvest(&store);
    assert_eq!(before.len() as u64, stats.events);
    dep.shutdown();

    // Deployment #2: same directories, fresh processes-worth of state. The
    // restarted providers must serve exactly what was acknowledged.
    let dep = lsm_deployment(&data_dir, tune);
    let after = harvest(&dep.datastore());
    assert_eq!(
        before.len(),
        after.len(),
        "restart lost {} acknowledged events",
        before.len() - after.len()
    );
    assert_eq!(before, after, "restarted cluster serves different bytes");
    dep.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn restart_preserves_ingest_default_tuning() {
    run_restart_roundtrip("default", LsmConfig::default(), 3, 40);
}

/// Tiny memtables + group-committed WAL: the ingest spans many flushes and
/// background compactions, so the read-back after restart crosses real
/// multi-level SST state rather than one big WAL replay.
#[test]
fn restart_preserves_ingest_across_compactions() {
    let tune = LsmConfig {
        memtable_bytes: 4 << 10,
        l0_compaction_trigger: 2,
        level_base_bytes: 16 << 10,
        level_multiplier: 4,
        table_target_bytes: 8 << 10,
        wal_sync: "group".into(),
        ..LsmConfig::default()
    };
    // One database per container kind: the workload concentrates instead
    // of spreading over 16 event/product databases, so the tiny memtables
    // actually roll over.
    let counts = DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 1,
        products: 1,
    };
    let base = std::env::temp_dir().join(format!("hepnos-durable-{}-compact", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let file_dir = base.join("files");
    let data_dir = base.join("data");

    let gen = NovaGenerator::new(7);
    let paths = files::write_dataset(&file_dir, &gen, 4, 60).unwrap();
    let dep = lsm_deployment_counts(&data_dir, tune.clone(), counts);
    let store = dep.datastore();
    let ds = store.root().create_dataset("nova").unwrap();
    DataLoader::new(store.clone(), ds)
        .ingest_files(&paths)
        .unwrap();
    let before = harvest(&store);

    // The tuning must have produced real LSM churn on at least one node —
    // otherwise this test silently degrades into the WAL-replay case.
    let (mut flushes, mut compactions, mut syncs) = (0u64, 0u64, 0u64);
    for (_, stats) in dep.backend_stats() {
        if let Some(lsm) = stats.lsm {
            flushes += lsm.flushes;
            compactions += lsm.compactions + lsm.trivial_moves;
            syncs += lsm.wal_syncs;
        }
    }
    assert!(flushes > 0, "tuning produced no flushes");
    assert!(compactions > 0, "tuning produced no compactions");
    assert!(syncs > 0, "group wal_sync produced no syncs");
    dep.shutdown();

    let dep = lsm_deployment_counts(&data_dir, tune, counts);
    let after = harvest(&dep.datastore());
    assert_eq!(before, after, "restarted cluster serves different bytes");
    dep.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// Restarting twice in a row (recover, serve, recover again) must not
/// degrade the store: recovery itself has to be idempotent at the serving
/// level, including a write between the restarts.
#[test]
fn double_restart_with_interleaved_writes() {
    let tune = LsmConfig {
        memtable_bytes: 32 << 10,
        wal_sync: "always".into(),
        ..LsmConfig::default()
    };
    let base = std::env::temp_dir().join(format!("hepnos-durable-{}-double", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let file_dir = base.join("files");
    let data_dir = base.join("data");

    let gen = NovaGenerator::new(99);
    let paths = files::write_dataset(&file_dir, &gen, 2, 30).unwrap();
    let dep = lsm_deployment(&data_dir, tune.clone());
    let store = dep.datastore();
    let ds = store.root().create_dataset("nova").unwrap();
    DataLoader::new(store.clone(), ds)
        .ingest_files(&paths)
        .unwrap();
    dep.shutdown();

    // Restart #1: add one more event on top of recovered state.
    let dep = lsm_deployment(&data_dir, tune.clone());
    let store = dep.datastore();
    let ds = store.root().dataset("nova").unwrap();
    let extra = ds
        .create_run(900)
        .unwrap()
        .create_subrun(0)
        .unwrap()
        .create_event(1)
        .unwrap();
    let extra_slices = gen.generate(900, 0, 1).slices;
    extra.store(&slice_label(), &extra_slices).unwrap();
    let before = harvest_slices_only(&store);
    dep.shutdown();

    // Restart #2: both the original ingest and the post-recovery write
    // must survive.
    let dep = lsm_deployment(&data_dir, tune);
    let store = dep.datastore();
    let after_ds = store.root().dataset("nova").unwrap();
    let recovered = after_ds
        .run(900)
        .unwrap()
        .subrun(0)
        .unwrap()
        .event(1)
        .unwrap();
    assert_eq!(
        load_slices(&recovered).unwrap(),
        Some(extra_slices),
        "post-recovery write lost by second restart"
    );
    // Events ingested originally are all still intact too.
    let after = harvest_slices_only(&store);
    assert_eq!(before, after);
    dep.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// The topology epoch survives a restart: a node relaunched on its data
/// directory must resume at the epoch a rescale installed, not fall back
/// to the boot default (epoch 1) and fence every current-epoch client with
/// `WrongEpoch{current: 1}`.
#[test]
fn restart_preserves_topology_epoch() {
    let base = std::env::temp_dir().join(format!("hepnos-durable-{}-epoch", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let data_dir = base.join("data");

    let dep = lsm_deployment(&data_dir, LsmConfig::default());
    let store = dep.datastore();
    store.root().create_dataset("nova").unwrap();
    // A rescale finalizes: every node installs epoch 7.
    for n in 0..NODES {
        assert_eq!(dep.server(n).unwrap().yokan().set_topology_epoch(7), 7);
    }
    dep.shutdown();

    // Relaunch on the same directories: the nodes resume at epoch 7 and a
    // connecting client learns it, so fenced traffic keeps flowing.
    let dep = lsm_deployment(&data_dir, LsmConfig::default());
    for n in 0..NODES {
        assert_eq!(
            dep.server(n).unwrap().yokan().topology_epoch(),
            7,
            "node {n} lost its topology epoch across the restart"
        );
    }
    let store = dep.datastore();
    assert_eq!(store.topology_epoch(), 7);
    store.root().create_dataset("post-restart").unwrap();
    dep.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// Slices for every event (summary may be absent for hand-added events).
fn harvest_slices_only(
    store: &hepnos::DataStore,
) -> BTreeMap<(u64, u64, u64), Vec<nova::SliceQuantities>> {
    let ds = store.root().dataset("nova").unwrap();
    let mut out = BTreeMap::new();
    for run in ds.runs().unwrap() {
        for subrun in run.subruns().unwrap() {
            for event in subrun.events().unwrap() {
                let (r, s, e) = event.coordinates();
                let slices = load_slices(&event).unwrap().unwrap_or_default();
                out.insert((r, s, e), slices);
            }
        }
    }
    out
}
