//! Failure injection across the stack: NIC injection-bandwidth saturation
//! (the Aries failure mode from §IV-E), server shutdown mid-workload, and
//! LSM persistence across a full server restart.

use bedrock::{BackendKind, DbCounts, ServiceConfig};
use hepnos::{DataStore, HepnosError, ProductLabel};
use mercurio::local::Fabric;
use mercurio::NetworkModel;
use std::time::Duration;

fn small_counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 2,
        products: 2,
    }
}

#[test]
fn injection_saturation_surfaces_as_storage_error() {
    // A network configured to fail on injection oversaturation, like the
    // Aries NIC crashes the paper hit: budget of ~2 KB per window.
    let fabric = Fabric::new(NetworkModel {
        injection_bandwidth: 20_000.0,
        injection_window: Duration::from_millis(100),
        fail_on_saturation: true,
        ..Default::default()
    });
    let cfg = ServiceConfig::hepnos_topology(small_counts(), BackendKind::Map, None);
    let server = bedrock::launch(fabric.endpoint("server"), &cfg).unwrap();
    let store =
        DataStore::connect(fabric.endpoint("client"), &[server.descriptor().clone()]).unwrap();
    let ds = store.root().create_dataset("saturate").unwrap();
    let ev = ds
        .create_run(1)
        .unwrap()
        .create_subrun(1)
        .unwrap()
        .create_event(1)
        .unwrap();
    // Hammer with large products until the budget trips.
    let label = ProductLabel::new("big").unwrap();
    let mut saw_saturation = false;
    for i in 0..50u32 {
        match ev.store(&label, &vec![i; 4096]) {
            Ok(()) => {}
            Err(HepnosError::Storage(yokan::YokanError::Rpc(
                mercurio::RpcError::NetworkSaturated,
            ))) => {
                saw_saturation = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(saw_saturation, "saturation never tripped");
    server.shutdown();
}

#[test]
fn server_shutdown_fails_cleanly_not_hangs() {
    let fabric = Fabric::new(NetworkModel::default());
    let cfg = ServiceConfig::hepnos_topology(small_counts(), BackendKind::Map, None);
    let server = bedrock::launch(fabric.endpoint("server"), &cfg).unwrap();
    let store =
        DataStore::connect(fabric.endpoint("client"), &[server.descriptor().clone()]).unwrap();
    let ds = store.root().create_dataset("dying").unwrap();
    let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
    sr.create_event(1).unwrap();
    server.shutdown();
    // Every subsequent operation errors promptly instead of hanging.
    let err = sr.create_event(2).unwrap_err();
    assert!(matches!(err, HepnosError::Storage(_)), "{err}");
    let err = sr.events().unwrap_err();
    assert!(matches!(err, HepnosError::Storage(_)), "{err}");
}

#[test]
fn lsm_deployment_survives_restart_with_data() {
    let data_dir = std::env::temp_dir().join(format!("hepnos-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();
    let label = ProductLabel::new("persisted").unwrap();
    let cfg =
        ServiceConfig::hepnos_topology(small_counts(), BackendKind::Lsm, Some(data_dir.clone()));
    // First incarnation: write.
    {
        let fabric = Fabric::new(NetworkModel::default());
        let server = bedrock::launch(fabric.endpoint("server"), &cfg).unwrap();
        let store =
            DataStore::connect(fabric.endpoint("client"), &[server.descriptor().clone()]).unwrap();
        let ds = store.root().create_dataset("fermilab/nova").unwrap();
        let sr = ds.create_run(7).unwrap().create_subrun(3).unwrap();
        for e in 0..50u64 {
            let ev = sr.create_event(e).unwrap();
            ev.store(&label, &vec![e as f64; 4]).unwrap();
        }
        server.shutdown();
    }
    // Second incarnation: same data directory, fresh fabric and server.
    {
        let fabric = Fabric::new(NetworkModel::default());
        let server = bedrock::launch(fabric.endpoint("server"), &cfg).unwrap();
        let store =
            DataStore::connect(fabric.endpoint("client"), &[server.descriptor().clone()]).unwrap();
        let ds = store.dataset("fermilab/nova").unwrap();
        let sr = ds.run(7).unwrap().subrun(3).unwrap();
        let events = sr.events().unwrap();
        assert_eq!(events.len(), 50);
        for ev in &events {
            let v: Vec<f64> = ev.load(&label).unwrap().expect("product persisted");
            assert_eq!(v, vec![ev.number() as f64; 4]);
        }
        server.shutdown();
    }
    std::fs::remove_dir_all(&data_dir).ok();
}

#[test]
fn pep_fails_cleanly_when_servers_are_gone() {
    use hepnos::{ParallelEventProcessor, PepOptions};
    let fabric = Fabric::new(NetworkModel::default());
    let cfg = ServiceConfig::hepnos_topology(small_counts(), BackendKind::Map, None);
    let server = bedrock::launch(fabric.endpoint("server"), &cfg).unwrap();
    let store =
        DataStore::connect(fabric.endpoint("client"), &[server.descriptor().clone()]).unwrap();
    let ds = store.root().create_dataset("doomed").unwrap();
    let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
    for e in 0..20u64 {
        sr.create_event(e).unwrap();
    }
    server.shutdown();
    let pep = ParallelEventProcessor::new(store.clone(), PepOptions::default());
    let err = pep.process(&ds, |_w, _e| {}).unwrap_err();
    assert!(matches!(err, HepnosError::Storage(_)), "{err}");
}
