//! HEPnOS over the TCP transport: the multi-process deployment path works
//! end to end through real sockets, including descriptor exchange as JSON
//! and batched writes (which use the socket bulk path above the threshold).

use bedrock::{BackendKind, ConnectionDescriptor, DbCounts, ServiceConfig};
use hepnos::{DataStore, ProductLabel, WriteBatch};
use mercurio::tcp::TcpEndpoint;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Blob {
    payload: Vec<u8>,
}

fn tcp_counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 2,
        products: 2,
    }
}

#[test]
fn full_flow_over_tcp_sockets() {
    let server_ep = TcpEndpoint::bind(0).unwrap();
    let cfg = ServiceConfig::hepnos_topology(tcp_counts(), BackendKind::Map, None);
    let server = bedrock::launch(server_ep, &cfg).unwrap();
    // Descriptor crosses "process" boundary as JSON.
    let json = serde_json::to_string(server.descriptor()).unwrap();
    let descriptor: ConnectionDescriptor = serde_json::from_str(&json).unwrap();

    let client_ep = TcpEndpoint::bind(0).unwrap();
    let store = DataStore::connect(client_ep, &[descriptor]).unwrap();
    let ds = store.root().create_dataset("tcp").unwrap();
    let sr = ds.create_run(9).unwrap().create_subrun(1).unwrap();
    let label = ProductLabel::new("blob").unwrap();
    // Large product: exercises the socket path with a ~1 MB payload.
    let big = Blob {
        payload: (0..1_000_000u32).map(|i| i as u8).collect(),
    };
    let ev = sr.create_event(5).unwrap();
    ev.store(&label, &big).unwrap();
    let back: Blob = ev.load(&label).unwrap().unwrap();
    assert_eq!(back, big);
    // Batched creation: bulk transfer over TCP.
    let uuid = ds.uuid().unwrap();
    let mut batch = WriteBatch::new(&store);
    for e in 100..400u64 {
        let ev = batch.create_event(&sr, &uuid, e).unwrap();
        batch
            .store(
                &ev,
                &label,
                &Blob {
                    payload: vec![e as u8; 128],
                },
            )
            .unwrap();
    }
    batch.flush().unwrap();
    assert_eq!(sr.events().unwrap().len(), 301);
    // Spot-check a batched product.
    let ev = sr.event(250).unwrap();
    let b: Blob = ev.load(&label).unwrap().unwrap();
    assert_eq!(b.payload, vec![250u8; 128]);
    server.shutdown();
}

#[test]
fn two_tcp_server_nodes() {
    let cfg = ServiceConfig::hepnos_topology(tcp_counts(), BackendKind::Map, None);
    let s1 = bedrock::launch(TcpEndpoint::bind(0).unwrap(), &cfg).unwrap();
    let s2 = bedrock::launch(TcpEndpoint::bind(0).unwrap(), &cfg).unwrap();
    let descriptors = vec![s1.descriptor().clone(), s2.descriptor().clone()];
    let store = DataStore::connect(TcpEndpoint::bind(0).unwrap(), &descriptors).unwrap();
    assert_eq!(store.num_event_databases(), 4);
    let ds = store.root().create_dataset("two-node").unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..12u64 {
        run.create_subrun(s).unwrap().create_event(0).unwrap();
    }
    // A second, fresh client sees everything (placement agreement over TCP).
    let store2 = DataStore::connect(TcpEndpoint::bind(0).unwrap(), &descriptors).unwrap();
    let run2 = store2.dataset("two-node").unwrap().run(1).unwrap();
    assert_eq!(run2.subruns().unwrap().len(), 12);
    s1.shutdown();
    s2.shutdown();
}

#[test]
fn parallel_event_processor_over_tcp() {
    use hepnos::{ParallelEventProcessor, PepOptions, WriteBatch};
    let cfg = ServiceConfig::hepnos_topology(tcp_counts(), BackendKind::Map, None);
    let server = bedrock::launch(TcpEndpoint::bind(0).unwrap(), &cfg).unwrap();
    let descriptors = vec![server.descriptor().clone()];
    let store = DataStore::connect(TcpEndpoint::bind(0).unwrap(), &descriptors).unwrap();
    let ds = store.root().create_dataset("pep-tcp").unwrap();
    let uuid = ds.uuid().unwrap();
    let label = ProductLabel::new("payload").unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..4u64 {
        let sr = run.create_subrun(s).unwrap();
        let mut batch = WriteBatch::new(&store);
        for e in 0..50u64 {
            let ev = batch.create_event(&sr, &uuid, e).unwrap();
            batch.store(&ev, &label, &vec![e as u32; 4]).unwrap();
        }
        batch.flush().unwrap();
    }
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            num_workers: 3,
            load_batch_size: 64,
            dispatch_batch_size: 16,
            prefetch: vec![(label.clone(), "Vec<u32>".to_string())],
            ..Default::default()
        },
    );
    let processed = parking_lot::Mutex::new(0u64);
    let stats = pep
        .process(&ds, |_w, pe| {
            let v: Vec<u32> = pe.load(&label).unwrap().unwrap();
            assert_eq!(v, vec![pe.event().number() as u32; 4]);
            *processed.lock() += 1;
        })
        .unwrap();
    assert_eq!(stats.total_events, 200);
    assert_eq!(*processed.lock(), 200);
    server.shutdown();
}
