//! The paper's §IV correctness check at full-pipeline scope: the
//! traditional file-based workflow and the HEPnOS workflow must accept
//! exactly the same candidate slices, across a multi-node deployment, for
//! several seeds and worker configurations.

use hepfile::run_file_workflow;
use hepnos::{ParallelEventProcessor, PepOptions};
use nova::loader::{slice_label, slice_type_name, DataLoader};
use nova::{files, select_slices, NovaGenerator, SelectionCuts};
use parking_lot::Mutex;
use std::collections::BTreeSet;

fn run_equal_results(seed: u64, n_files: u64, events_per_file: u64, workers: usize) {
    let dir =
        std::env::temp_dir().join(format!("hepnos-eq-{}-{seed}-{n_files}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let gen = NovaGenerator::new(seed);
    let cuts = SelectionCuts::default();
    let paths = files::write_dataset(&dir, &gen, n_files, events_per_file).unwrap();

    // File-based pass.
    let accepted_file: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
    run_file_workflow(paths.len(), workers, |i| {
        let events = files::read_file(&paths[i]).unwrap();
        let mut acc = Vec::new();
        for ev in &events {
            acc.extend(select_slices(ev, &cuts));
        }
        accepted_file.lock().extend(acc);
    });

    // HEPnOS pass over a 2-node deployment.
    let dep = hepnos::testing::local_deployment(2, Default::default());
    let store = dep.datastore();
    let ds = store.root().create_dataset("nova").unwrap();
    DataLoader::new(store.clone(), ds.clone())
        .ingest_files(&paths)
        .unwrap();
    let accepted_hepnos: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            num_workers: workers,
            load_batch_size: 512,
            dispatch_batch_size: 32,
            prefetch: vec![(slice_label(), slice_type_name())],
            ..Default::default()
        },
    );
    pep.process(&ds, |_w, pe| {
        let slices: Vec<nova::SliceQuantities> =
            pe.load(&slice_label()).unwrap().unwrap_or_default();
        let (run, subrun, event) = pe.event().coordinates();
        let rec = nova::EventRecord {
            run,
            subrun,
            event,
            slices,
        };
        accepted_hepnos.lock().extend(select_slices(&rec, &cuts));
    })
    .unwrap();
    dep.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    let a = accepted_file.into_inner();
    let b = accepted_hepnos.into_inner();
    assert!(!b.is_empty() || a.is_empty(), "hepnos lost accepted slices");
    assert_eq!(a, b, "workflows disagree for seed {seed}");
}

#[test]
fn equal_results_small() {
    run_equal_results(1, 4, 100, 2);
}

#[test]
fn equal_results_medium_many_workers() {
    run_equal_results(2, 8, 200, 8);
}

#[test]
fn equal_results_across_seeds() {
    for seed in [10u64, 11, 12] {
        run_equal_results(seed, 3, 120, 4);
    }
}
