//! Kill-a-provider chaos suite for chain replication, over real TCP
//! sockets.
//!
//! For each fixed seed: a 2-node replicated deployment (R=2) ingests a
//! seeded nova workload with 8 concurrent writers. Mid-ingest the head
//! node is first stalled (its chain forwards held in the applied-but-
//! unacked window) so writers time out and fail over to the backup, then
//! — once the backup has demonstrably suppressed a replayed mutation
//! through its dedup window — the head is killed outright. The suite then
//! requires:
//!
//! - **zero lost acks**: every writer completes without error and the
//!   store's contents are byte-identical to a fault-free run;
//! - **dedup on the promoted backup**: the late chain-forward of a
//!   mutation the client already replayed at the backup is answered from
//!   the dedup window, not re-applied;
//! - **replication factor restored**: a fresh node replaces the dead one,
//!   survivors resync it, and every chain ends byte-identical across both
//!   members.

use bedrock::{BackendKind, BedrockServer, ConnectionDescriptor, DbCounts, ServiceConfig};
use hepnos::testing::local_deployment_replicated;
use hepnos::DataStore;
use mercurio::tcp::TcpEndpoint;
use nova::loader::{slice_label, summary_label, DataLoader};
use nova::{EventRecord, NovaGenerator};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The fixed seeds the suite replays; CI runs exactly these.
const SEEDS: [u64; 3] = [7, 21, 1042];
const WRITERS: usize = 8;

fn counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 2,
        products: 2,
    }
}

fn replicated_config() -> ServiceConfig {
    let mut cfg = ServiceConfig::hepnos_topology(counts(), BackendKind::Map, None);
    // Short forward probes: a chain member whose successor is dead acks
    // degraded after one 50 ms attempt and suspends the hop, so its own
    // acks stay well inside the writers' retry budget.
    cfg.replication = Some(bedrock::ReplicationConfig {
        factor: 2,
        forward_timeout_ms: 50,
        forward_attempts: 1,
        suspend_ms: 2_000,
    });
    cfg
}

fn workload(seed: u64) -> Vec<EventRecord> {
    let gen = NovaGenerator::new(seed);
    let mut events = Vec::new();
    for run in 0..2u64 {
        for subrun in 0..2u64 {
            for event in 0..12u64 {
                events.push(gen.generate(run, subrun, event));
            }
        }
    }
    events
}

/// Two attempts of 150 ms: far above a loopback round trip, far below the
/// 600 ms forward stall — a writer blocked on the stalled head exhausts
/// its per-target budget and fails over well inside the window.
fn writer_retry_policy(seed: u64) -> yokan::RetryPolicy {
    yokan::RetryPolicy {
        max_attempts: 2,
        rpc_timeout: Duration::from_millis(150),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        jitter_seed: seed,
    }
}

/// Everything the workload wrote, in deterministic order.
type Digest = Vec<(u64, u64, u64, Option<Vec<u8>>, Option<Vec<u8>>)>;

fn digest(store: &DataStore, dataset_name: &str) -> Digest {
    let ds = store
        .root()
        .dataset(dataset_name)
        .expect("dataset lookup failed");
    let slice = slice_label();
    let slice_ty = nova::loader::slice_type_name();
    let summary = summary_label();
    let summary_ty = nova::loader::summary_type_name();
    let mut out = Digest::new();
    for run in ds.runs().expect("list runs") {
        for sr in run.subruns().expect("list subruns") {
            for ev in sr.events().expect("list events") {
                let (r, s, e) = ev.coordinates();
                let slices = ev.load_raw(&slice, &slice_ty).expect("load slices");
                let sum = ev.load_raw(&summary, &summary_ty).expect("load summary");
                out.push((r, s, e, slices, sum));
            }
        }
    }
    out
}

/// Fault-free reference run (in-process fabric, same replicated topology —
/// the digest depends only on the data, not the transport).
fn baseline_digest(seed: u64) -> Digest {
    let dep = local_deployment_replicated(2, counts(), 2);
    let store = dep.datastore();
    let ds = store.root().create_dataset("nova").expect("create dataset");
    DataLoader::new(store.clone(), ds)
        .ingest_events(&workload(seed))
        .expect("baseline ingest failed");
    let d = digest(&store, "nova");
    dep.shutdown();
    d
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn kill_primary_mid_ingest_loses_no_acked_writes() {
    for seed in SEEDS {
        let want = baseline_digest(seed);
        let cfg = replicated_config();
        let mut servers: Vec<Option<BedrockServer>> = (0..2)
            .map(|_| {
                Some(
                    bedrock::launch(TcpEndpoint::bind(0).expect("bind"), &cfg)
                        .expect("server bootstrap"),
                )
            })
            .collect();
        let mut descriptors: Vec<ConnectionDescriptor> = servers
            .iter()
            .map(|s| s.as_ref().unwrap().descriptor().clone())
            .collect();
        {
            let refs: Vec<&BedrockServer> = servers.iter().flatten().collect();
            bedrock::wire_replication(&refs);
        }

        // The chain whose head this seed's run will lose: the first events
        // chain. Its head identifies the node to stall and kill.
        let chains = bedrock::deployment_chains(&descriptors);
        let victim_chain = chains
            .iter()
            .find(|c| c.len() == 2 && c[0].db.starts_with("events"))
            .expect("an events chain")
            .clone();
        let head_idx = (0..2)
            .find(|&i| {
                servers[i]
                    .as_ref()
                    .is_some_and(|s| s.address() == victim_chain[0].addr)
            })
            .expect("head node index");
        let backup_idx = 1 - head_idx;

        let store = DataStore::connect_with_retry(
            TcpEndpoint::bind(0).expect("bind client"),
            &descriptors,
            writer_retry_policy(seed),
        )
        .expect("datastore connect");
        assert_eq!(store.replication_factor(), 2);
        store.root().create_dataset("nova").expect("create dataset");

        // 8 writers, each ingesting an interleaved shard of the workload.
        // A barrier splits each shard: the first half runs fault-free, the
        // second half runs against the stalled-then-killed head.
        let events = workload(seed);
        let gate = Arc::new(Barrier::new(WRITERS + 1));
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let shard: Vec<EventRecord> = events.iter().skip(w).step_by(WRITERS).cloned().collect();
            let store = store.clone();
            let gate = gate.clone();
            handles.push(std::thread::spawn(move || {
                let ds = store.root().dataset("nova").expect("dataset");
                let loader = DataLoader::new(store, ds);
                let mid = shard.len() / 2;
                // The first half runs fault-free; failing it must not skip
                // the barrier (the coordinator waits on it).
                loader
                    .ingest_events(&shard[..mid])
                    .expect("fault-free first half failed");
                gate.wait();
                loader.ingest_events(&shard[mid..])
            }));
        }
        gate.wait();

        // Stall the head: every mutation it serves sits applied-but-unacked
        // for 600 ms, so writers exhaust their 2x150 ms budget and fail
        // over — replaying the identical stamped payload at the backup.
        let head_yokan = servers[head_idx].as_ref().unwrap().yokan().clone();
        let backup_yokan = servers[backup_idx].as_ref().unwrap().yokan().clone();
        head_yokan.set_forward_delay(Duration::from_millis(600));
        wait_until(
            "a writer to fail over to the backup",
            Duration::from_secs(20),
            || store.retry_stats().failovers > 0,
        );
        // The stalled head eventually wakes and forwards the mutation the
        // client already replayed at the backup: the backup's dedup window
        // must absorb that late copy instead of re-applying it.
        wait_until(
            "the promoted backup to suppress a replayed mutation",
            Duration::from_secs(20),
            || backup_yokan.deduped_replays() > 0,
        );
        // Now kill the head outright, mid-ingest.
        servers[head_idx].take().unwrap().shutdown();

        for h in handles {
            h.join()
                .expect("writer panicked")
                .expect("acked ingest failed after failover — lost acks");
        }
        let stats = store.retry_stats();
        assert!(
            stats.failovers > 0,
            "seed {seed}: the kill never forced a failover"
        );
        assert!(
            backup_yokan.deduped_replays() > 0,
            "seed {seed}: no replay was suppressed on the promoted backup"
        );

        // Byte-identical read-back through the surviving replica (reads
        // fall back from dead chain members transparently).
        let got = digest(&store, "nova");
        assert_eq!(
            got, want,
            "seed {seed}: store contents diverged after the head kill \
             (retries: {stats:?})"
        );

        // Restore the replication factor: a fresh node fills the dead
        // slot, survivors resync every chain onto it, routes are rewired.
        let replacement = bedrock::launch(TcpEndpoint::bind(0).expect("bind"), &cfg)
            .expect("replacement bootstrap");
        descriptors[head_idx] = replacement.descriptor().clone();
        servers[head_idx] = Some(replacement);
        {
            let refs: Vec<&BedrockServer> = servers.iter().flatten().collect();
            for s in &refs {
                bedrock::wire_replication_node(s, &descriptors);
            }
        }
        let raw = yokan::YokanClient::new(TcpEndpoint::bind(0).expect("bind raw"));
        let new_addr = descriptors[head_idx].address.clone();
        let mut resynced = 0u64;
        for chain in bedrock::deployment_chains(&descriptors) {
            let Some(dst) = chain.iter().find(|t| t.addr == new_addr) else {
                continue;
            };
            let src = chain
                .iter()
                .find(|t| t.addr != new_addr)
                .expect("surviving replica");
            resynced += yokan::resync_replicas(&raw, src, dst)
                .expect("resync failed")
                .keys_copied;
        }
        assert!(resynced > 0, "seed {seed}: resync copied nothing");

        // Replication factor restored: every chain is byte-identical
        // across both members, and a fresh routed client still reads the
        // full fault-free contents.
        for chain in bedrock::deployment_chains(&descriptors) {
            assert_eq!(chain.len(), 2, "seed {seed}: chain lost a member");
            let a = raw.list_keyvals(&chain[0], &[], &[], 0).expect("list a");
            let b = raw.list_keyvals(&chain[1], &[], &[], 0).expect("list b");
            assert_eq!(
                a, b,
                "seed {seed}: replicas of {} diverged after restore",
                chain[0].db
            );
        }
        let fresh = DataStore::connect(TcpEndpoint::bind(0).expect("bind fresh"), &descriptors)
            .expect("fresh connect");
        assert_eq!(
            digest(&fresh, "nova"),
            want,
            "seed {seed}: restored deployment lost data"
        );
        for s in servers.into_iter().flatten() {
            s.shutdown();
        }
    }
}
