//! Oversaturation chaos scenario (overload protection end to end).
//!
//! A deliberately small service — one node, 2-deep admission queues, memory
//! watermarks — is hammered by four hot product writers while a nova ingest
//! runs through the same deployment, on a network model with a finite
//! injection budget that *fails* on saturation (the Aries NIC behaviour
//! from the paper's runs). The system must degrade gracefully, not crash:
//! every acknowledged write survives, shedding is explicit (`Busy`), backend
//! memory stays bounded by the hard watermark, and goodput stays nonzero.
//!
//! Seeds are fixed; a failure reproduces by re-running the test.

use bedrock::{BackendKind, DbCounts, OverloadConfig};
use hepnos::testing::{local_deployment_tuned, LocalDeployment};
use hepnos::{AsyncWriteBatch, BatchStats, DataStore, ProductLabel};
use mercurio::NetworkModel;
use nova::loader::DataLoader;
use nova::{EventRecord, NovaGenerator};
use std::time::Duration;

const SEEDS: [u64; 2] = [7, 1042];
const HOT_WRITERS: u64 = 4;
const EVENTS_PER_WRITER: u64 = 60;
const WINDOW: usize = 8;
const SOFT_WM: usize = 64 << 10;
const HARD_WM: usize = 64 << 20;

fn small_counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 2,
        products: 2,
    }
}

/// Finite injection budget, failing (not throttling) on saturation: 1 MB/s
/// measured over 20 ms windows — far below what in-process writers can
/// push, yet comfortably above any single frame, so saturation is transient
/// and retryable rather than permanent.
fn saturated_model() -> NetworkModel {
    NetworkModel {
        injection_bandwidth: 1024.0 * 1024.0,
        injection_window: Duration::from_millis(20),
        fail_on_saturation: true,
        ..Default::default()
    }
}

fn overload_tuning(cfg: &mut bedrock::ServiceConfig) {
    cfg.overload = Some(OverloadConfig {
        max_queued_per_provider: 2,
        soft_watermark_bytes: SOFT_WM,
        hard_watermark_bytes: HARD_WM,
        max_stall_ms: 1,
        retry_after_ms: 1,
        ..Default::default()
    });
}

/// A retry budget deep enough that transient `Busy` / `NetworkSaturated`
/// streaks cannot exhaust it.
fn patient_retry(seed: u64) -> yokan::RetryPolicy {
    yokan::RetryPolicy {
        max_attempts: 200,
        rpc_timeout: Duration::from_millis(500),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        jitter_seed: seed,
    }
}

fn workload(seed: u64) -> Vec<EventRecord> {
    let gen = NovaGenerator::new(seed);
    let mut events = Vec::new();
    for run in 0..2u64 {
        for subrun in 0..2u64 {
            for event in 0..12u64 {
                events.push(gen.generate(run, subrun, event));
            }
        }
    }
    events
}

fn hot_deployment() -> LocalDeployment {
    local_deployment_tuned(
        1,
        small_counts(),
        BackendKind::Map,
        None,
        saturated_model(),
        overload_tuning,
    )
}

#[test]
fn oversaturated_service_degrades_gracefully() {
    for seed in SEEDS {
        let dep = hot_deployment();

        // Containers up front, before the fabric gets hot.
        let setup = dep.connect_client_with_retry("setup", patient_retry(seed));
        let hot_ds = setup.root().create_dataset("hot").unwrap();
        for w in 0..HOT_WRITERS {
            hot_ds.create_run(w).unwrap().create_subrun(0).unwrap();
        }

        // Four hot writers, each on its own endpoint (kept, so its NIC
        // saturation counter can be read afterwards).
        let label = ProductLabel::new("blob").unwrap();
        let mut writers = Vec::new();
        for w in 0..HOT_WRITERS {
            let ep = dep.fabric().endpoint(&format!("hot-{seed}-{w}"));
            let store = DataStore::connect_with_retry(
                ep.clone(),
                dep.descriptors(),
                patient_retry(seed ^ w),
            )
            .expect("writer connect");
            let label = label.clone();
            writers.push(std::thread::spawn(move || {
                let ds = store.dataset("hot").unwrap();
                let sr = ds.run(w).unwrap().subrun(0).unwrap();
                let uuid = ds.uuid().unwrap();
                let rt = argos::Runtime::simple(2);
                let payload = vec![w as u8; 1024];
                let mut batch = AsyncWriteBatch::new(&store, rt.default_pool().unwrap())
                    .with_per_db_limit(4)
                    .with_inflight_window(WINDOW);
                for e in 0..EVENTS_PER_WRITER {
                    let ev = batch.create_event(&sr, &uuid, e).unwrap();
                    batch.store(&ev, &label, &payload).unwrap();
                }
                batch.wait().expect("hot writer lost acks");
                let stats = batch.stats();
                let gave_up = store.retry_stats().gave_up;
                drop(batch);
                rt.shutdown();
                (stats, gave_up, ep.saturation_events())
            }));
        }

        // Meanwhile: a nova ingest through the same oversaturated service.
        let nova_store = dep.connect_client_with_retry("nova", patient_retry(seed + 99));
        let ds = nova_store.root().create_dataset("nova").unwrap();
        let rt = argos::Runtime::simple(2);
        let events = workload(seed);
        let ingest = DataLoader::new(nova_store.clone(), ds)
            .ingest_events_overlapped(&events, rt.default_pool().unwrap())
            .expect("nova ingest failed under oversaturation");
        rt.shutdown();

        let mut total = BatchStats::default();
        let mut saturation_events = 0u64;
        for t in writers {
            let (stats, gave_up, sat) = t.join().expect("hot writer panicked");
            // Zero lost acks: everything shipped was acknowledged, and no
            // logical request exhausted its retries.
            assert_eq!(stats.acked_pairs, stats.shipped_pairs, "seed {seed}");
            assert_eq!(stats.shipped_pairs, 2 * EVENTS_PER_WRITER);
            assert_eq!(gave_up, 0, "seed {seed}: writer exhausted retries");
            total.merge(&stats);
            saturation_events += sat;
        }
        assert_eq!(
            nova_store.retry_stats().gave_up,
            0,
            "seed {seed}: nova client exhausted retries"
        );

        // The network model actually saturated — otherwise this scenario
        // exercises nothing.
        assert!(
            saturation_events > 0,
            "seed {seed}: injection budget never saturated"
        );

        // The service shed explicitly and still made progress.
        let overload = dep.overload_stats();
        assert!(overload.shed() > 0, "seed {seed}: nothing was shed");
        assert!(overload.admitted > 0, "seed {seed}: zero goodput");
        assert!(
            overload.queue_depth_hwm <= 2,
            "seed {seed}: queue bound broken"
        );

        // Clients observed the pushback (surfaced through nova's ingest
        // stats and the writers' batch stats alike) and adapted.
        let nova_batch = ingest.batch.expect("overlapped ingest reports batch stats");
        let busy_total = total.retry.busy_pushbacks + nova_batch.retry.busy_pushbacks;
        assert!(
            busy_total > 0,
            "seed {seed}: no Busy pushback reached clients"
        );
        assert!(
            total.window_shrinks + nova_batch.window_shrinks > 0,
            "seed {seed}: AIMD windows never shrank"
        );
        assert_eq!(ingest.events, events.len() as u64, "seed {seed}");

        // Memory stayed bounded by the hard watermark; the soft watermark
        // throttled writers on the way up.
        let mut soft_stalls = 0;
        for (name, stats) in dep.backend_stats() {
            assert!(
                stats.mem_bytes <= HARD_WM as u64,
                "seed {seed}: {name} resident {} over hard watermark",
                stats.mem_bytes
            );
            soft_stalls += stats.soft_stalls;
        }
        assert!(
            soft_stalls > 0,
            "seed {seed}: 240 KiB of product data never tripped the 64 KiB soft watermark"
        );

        // Goodput: everything acknowledged is readable.
        for w in 0..HOT_WRITERS {
            let sr = hot_ds.run(w).unwrap().subrun(0).unwrap();
            assert_eq!(
                sr.events().unwrap().len(),
                EVENTS_PER_WRITER as usize,
                "seed {seed}: writer {w} events missing"
            );
        }
        let nova_ds = setup.dataset("nova").unwrap();
        let mut nova_events = 0;
        for run in nova_ds.runs().unwrap() {
            for sr in run.subruns().unwrap() {
                nova_events += sr.events().unwrap().len();
            }
        }
        assert_eq!(
            nova_events,
            events.len(),
            "seed {seed}: nova events missing"
        );

        dep.shutdown();
    }
}
