//! Concurrency stress: HEPnOS is a *shared* service — multiple writers and
//! readers operate on it at once (the paper's §I: "multiple processes can
//! share a dataset with event-level granularity"). These tests run
//! concurrent ingestion and processing against one deployment and check
//! that nothing is lost, duplicated, or torn.

use bedrock::DbCounts;
use hepnos::testing::local_deployment;
use hepnos::{ParallelEventProcessor, PepOptions, ProductLabel, WriteBatch};
use parking_lot::Mutex;
use std::collections::BTreeSet;

#[test]
fn concurrent_ingest_into_disjoint_subruns() {
    // Four "loader ranks" (independent clients!) ingest disjoint subruns of
    // one run concurrently; afterwards everything is present exactly once.
    let dep = local_deployment(2, DbCounts::default());
    let label = ProductLabel::new("p").unwrap();
    std::thread::scope(|scope| {
        for rank in 0..4u64 {
            let store = dep.connect_client(&format!("loader-{rank}"));
            let label = label.clone();
            scope.spawn(move || {
                let ds = store.root().create_dataset("shared/run").unwrap();
                let uuid = ds.uuid().unwrap();
                let run = ds.create_run(1).unwrap();
                for s in (rank * 8)..(rank * 8 + 8) {
                    let sr = run.create_subrun(s).unwrap();
                    let mut batch = WriteBatch::new(&store);
                    for e in 0..25u64 {
                        let ev = batch.create_event(&sr, &uuid, e).unwrap();
                        batch.store(&ev, &label, &(s * 1000 + e)).unwrap();
                    }
                    batch.flush().unwrap();
                }
            });
        }
    });
    let store = dep.datastore();
    let run = store.dataset("shared/run").unwrap().run(1).unwrap();
    let subruns = run.subruns().unwrap();
    assert_eq!(subruns.len(), 32);
    let mut total = 0u64;
    for sr in subruns {
        for ev in sr.events().unwrap() {
            let v: u64 = ev.load(&label).unwrap().expect("product present");
            assert_eq!(v, sr.number() * 1000 + ev.number());
            total += 1;
        }
    }
    assert_eq!(total, 32 * 25);
    dep.shutdown();
}

#[test]
fn processing_one_dataset_while_ingesting_another() {
    // A reader campaign over dataset A runs concurrently with ingestion
    // into dataset B on the same service — the "use more processes for the
    // slower phases" scenario. A's results must be unaffected.
    let dep = local_deployment(1, DbCounts::default());
    let store = dep.datastore();
    let label = ProductLabel::new("x").unwrap();
    let ds_a = store.root().create_dataset("a").unwrap();
    let uuid_a = ds_a.uuid().unwrap();
    let run_a = ds_a.create_run(1).unwrap();
    for s in 0..6u64 {
        let sr = run_a.create_subrun(s).unwrap();
        let mut batch = WriteBatch::new(&store);
        for e in 0..100u64 {
            let ev = batch.create_event(&sr, &uuid_a, e).unwrap();
            batch.store(&ev, &label, &(s * 100 + e)).unwrap();
        }
        batch.flush().unwrap();
    }
    let seen: Mutex<BTreeSet<(u64, u64, u64)>> = Mutex::new(BTreeSet::new());
    std::thread::scope(|scope| {
        // Writer thread: hammers dataset B through its own client.
        let writer_store = dep.connect_client("b-writer");
        let wlabel = label.clone();
        scope.spawn(move || {
            let ds_b = writer_store.root().create_dataset("b").unwrap();
            let uuid_b = ds_b.uuid().unwrap();
            let run = ds_b.create_run(9).unwrap();
            for s in 0..10u64 {
                let sr = run.create_subrun(s).unwrap();
                let mut batch = WriteBatch::new(&writer_store);
                for e in 0..200u64 {
                    let ev = batch.create_event(&sr, &uuid_b, e).unwrap();
                    batch.store(&ev, &wlabel, &e).unwrap();
                }
                batch.flush().unwrap();
            }
        });
        // Reader: PEP over dataset A, concurrently.
        let pep = ParallelEventProcessor::new(
            store.clone(),
            PepOptions {
                num_workers: 3,
                load_batch_size: 128,
                dispatch_batch_size: 16,
                prefetch: vec![(label.clone(), "u64".to_string())],
                ..Default::default()
            },
        );
        let seen = &seen;
        let rlabel = label.clone();
        scope.spawn(move || {
            let stats = pep
                .process(&ds_a, |_w, pe| {
                    let v: u64 = pe.load(&rlabel).unwrap().expect("A's product present");
                    let (r, s, e) = pe.event().coordinates();
                    assert_eq!(v, s * 100 + e);
                    seen.lock().insert((r, s, e));
                })
                .unwrap();
            assert_eq!(stats.total_events, 600);
        });
    });
    assert_eq!(seen.lock().len(), 600);
    // B also arrived intact.
    let ds_b = store.dataset("b").unwrap();
    let mut b_total = 0;
    for sr in ds_b.run(9).unwrap().subruns().unwrap() {
        b_total += sr.events().unwrap().len();
    }
    assert_eq!(b_total, 2000);
    dep.shutdown();
}
