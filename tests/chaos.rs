//! Deterministic chaos tests for the fault-tolerant RPC path.
//!
//! A seeded [`FaultPlan`] is installed on the deployment's fabric while a
//! full nova ingest runs through a retrying client. The resulting store
//! contents must be byte-identical to a fault-free run of the same
//! workload, with no RPC giving up — dropped frames are retried, duplicated
//! and replayed mutations are absorbed by the service's dedup window.
//!
//! Every fault decision is a pure function of `(seed, direction, rpc_id,
//! req_id)`, so a failure here is reproduced by re-running with the seed
//! printed in the assertion message.

use hepnos::testing::{local_deployment, LocalDeployment};
use hepnos::DataStore;
use mercurio::{FaultConfig, FaultPlan};
use nova::loader::{slice_label, summary_label, DataLoader};
use nova::{EventRecord, NovaGenerator};
use std::sync::Arc;
use std::time::Duration;

const NODES: usize = 2;

/// The fixed seeds the chaos suite replays; CI runs exactly these.
const SEEDS: [u64; 3] = [7, 21, 1042];

fn workload(seed: u64) -> Vec<EventRecord> {
    let gen = NovaGenerator::new(seed);
    let mut events = Vec::new();
    for run in 0..2u64 {
        for subrun in 0..2u64 {
            for event in 0..9u64 {
                events.push(gen.generate(run, subrun, event));
            }
        }
    }
    events
}

fn chaos_config(seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::new(seed);
    cfg.drop_request = 0.03;
    cfg.drop_response = 0.02;
    cfg.duplicate_request = 0.02;
    cfg.duplicate_response = 0.02;
    cfg.delay_probability = 0.10;
    cfg.delay_min = Duration::from_millis(10);
    cfg.delay_max = Duration::from_millis(50);
    cfg.disconnect_probability = 0.01;
    cfg
}

/// Retry aggressively enough that a plan's worst-case streak of drops
/// cannot exhaust the budget; `rpc_timeout` stays far above `delay_max` so
/// injected delays never masquerade as lost frames.
fn chaos_retry_policy(seed: u64) -> yokan::RetryPolicy {
    yokan::RetryPolicy {
        max_attempts: 8,
        rpc_timeout: Duration::from_millis(250),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        jitter_seed: seed,
    }
}

/// Everything the workload wrote, in deterministic order: per event its
/// coordinates plus the raw bytes of both products.
type Digest = Vec<(u64, u64, u64, Option<Vec<u8>>, Option<Vec<u8>>)>;

fn digest(store: &DataStore, dataset_name: &str) -> Digest {
    let ds = store
        .root()
        .dataset(dataset_name)
        .expect("dataset lookup failed");
    let slice = slice_label();
    let slice_ty = nova::loader::slice_type_name();
    let summary = summary_label();
    let summary_ty = nova::loader::summary_type_name();
    let mut out = Digest::new();
    for run in ds.runs().expect("list runs") {
        for sr in run.subruns().expect("list subruns") {
            for ev in sr.events().expect("list events") {
                let (r, s, e) = ev.coordinates();
                let slices = ev.load_raw(&slice, &slice_ty).expect("load slices");
                let sum = ev.load_raw(&summary, &summary_ty).expect("load summary");
                out.push((r, s, e, slices, sum));
            }
        }
    }
    out
}

fn ingest_serial(store: &DataStore, events: &[EventRecord]) {
    let ds = store.root().create_dataset("nova").expect("create dataset");
    DataLoader::new(store.clone(), ds)
        .ingest_events(events)
        .expect("ingest failed");
}

/// Fault-free reference run: fresh deployment, serial ingest, digest.
fn baseline_digest(seed: u64) -> Digest {
    let dep = local_deployment(NODES, Default::default());
    let store = dep.datastore();
    ingest_serial(&store, &workload(seed));
    let d = digest(&store, "nova");
    dep.shutdown();
    d
}

fn chaos_deployment(seed: u64) -> (LocalDeployment, DataStore, Arc<FaultPlan>) {
    let dep = local_deployment(NODES, Default::default());
    let store = dep.connect_client_with_retry("chaos-client", chaos_retry_policy(seed));
    let plan = Arc::new(FaultPlan::new(chaos_config(seed)));
    dep.fabric().install_fault_plan(plan.clone());
    (dep, store, plan)
}

/// The tentpole end-to-end check: for each fixed seed, ingest under an
/// active fault plan and require the store's contents to be byte-identical
/// to the fault-free baseline, with every RPC eventually succeeding.
#[test]
fn ingest_under_faults_matches_fault_free_baseline() {
    for seed in SEEDS {
        let want = baseline_digest(seed);

        let (dep, store, plan) = chaos_deployment(seed);
        ingest_serial(&store, &workload(seed));
        let got = digest(&store, "nova");
        let stats = store.retry_stats();
        let counts = plan.counts();
        dep.fabric().clear_fault_plan();
        dep.shutdown();

        assert_eq!(
            stats.gave_up, 0,
            "seed {seed}: {} RPC(s) exhausted their retry budget ({stats:?})",
            stats.gave_up
        );
        assert_eq!(
            got, want,
            "seed {seed}: store contents diverged under faults \
             (faults injected: {counts:?}, retries: {stats:?}) — \
             re-run `cargo test --test chaos` with this seed to reproduce"
        );
        // The plan must actually have interfered — otherwise this test
        // proves nothing about the retry path.
        assert!(
            counts.dropped + counts.duplicated + counts.disconnects > 0,
            "seed {seed}: fault plan injected nothing"
        );
    }
}

/// Same seed → same fault schedule: replaying a seed on a fresh deployment
/// yields an identical fault trace. Trace vectors are compared sorted —
/// entries are deterministic, but concurrent duplicate deliveries may
/// record them in either order.
#[test]
fn same_seed_replays_same_fault_schedule() {
    let seed = SEEDS[0];
    let mut traces = Vec::new();
    for _ in 0..2 {
        let (dep, store, plan) = chaos_deployment(seed);
        ingest_serial(&store, &workload(seed));
        let mut trace = plan.trace();
        trace.sort();
        traces.push(trace);
        dep.fabric().clear_fault_plan();
        dep.shutdown();
    }
    assert!(
        !traces[0].is_empty(),
        "seed {seed}: replay produced an empty fault trace"
    );
    assert_eq!(
        traces[0], traces[1],
        "seed {seed}: two replays produced different fault schedules"
    );
}

/// The async ingestion path ([`hepnos::AsyncWriteBatch`] flushes via
/// `ingest_events_overlapped`) must survive the same fault plan: contents
/// identical to the fault-free baseline and the batch's retry delta
/// reported through its stats.
#[test]
fn overlapped_ingest_under_faults_matches_baseline() {
    let seed = SEEDS[1];
    let want = baseline_digest(seed);

    let (dep, store, _plan) = chaos_deployment(seed);
    let ds = store.root().create_dataset("nova").expect("create dataset");
    let rt = argos::Runtime::simple(2);
    let stats = DataLoader::new(store.clone(), ds)
        .ingest_events_overlapped(&workload(seed), rt.default_pool().unwrap())
        .expect("overlapped ingest failed");
    let got = digest(&store, "nova");
    let retry = store.retry_stats();
    rt.shutdown();
    dep.fabric().clear_fault_plan();
    dep.shutdown();

    assert_eq!(
        retry.gave_up, 0,
        "seed {seed}: retries exhausted: {retry:?}"
    );
    assert_eq!(
        got, want,
        "seed {seed}: overlapped ingest diverged under faults ({retry:?})"
    );
    // The async batch observed the same client, so its per-batch retry
    // delta must not exceed the client totals.
    if let Some(batch) = stats.batch {
        assert!(batch.retry.attempts <= retry.attempts);
    }
}
