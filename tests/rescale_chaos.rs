//! Live-rescaling chaos suite: online shard migration under concurrent
//! faulted ingest, over real TCP sockets.
//!
//! For each fixed seed: a 2-node replicated deployment (R=2) serves a
//! 4+4-database topology of which clients initially use only 2+2. While
//! 8 concurrent writers ingest a seeded nova workload through the small
//! topology — behind a fault plan injecting drops, duplicates and delays —
//! a background [`hepnos::rescale::Migrator`] walks the event and product
//! groups onto the full topology, and one node is killed outright
//! mid-migration. The suite then requires:
//!
//! - **zero lost acks**: every writer completes without error and a client
//!   of the *new* topology reads contents byte-identical to a fault-free
//!   run;
//! - **zero double-applies**: duplicated mutation frames are absorbed by
//!   the dedup window, not re-applied (and the digest equality would
//!   expose any slip);
//! - **completes or cleanly resumes**: if the kill failed the migration
//!   pass, re-running the same pass converges;
//! - **handoff dual-writes**: overwrites of already-moved keys through the
//!   old topology are forwarded to the new owners;
//! - **epoch fencing**: once the rescale is finalized, a writer still
//!   stamping the old topology epoch is rejected, not silently accepted.
//!
//! Two in-process companions pin the read side: reads through the new
//! topology during Handoff (dual-read with old-owner fallback) must never
//! miss an acked key, and a fenced writer recovers by refreshing its
//! epoch.

use bedrock::{BackendKind, BedrockServer, ConnectionDescriptor, DbCounts, ServiceConfig};
use hepnos::placement::{ModuloPlacement, Placement};
use hepnos::rescale::{Migrator, MigratorConfig, PlacementInput};
use hepnos::testing::local_deployment;
use hepnos::{DataStore, HepnosError, ProductLabel, WriteBatch};
use mercurio::fault::{FaultConfig, FaultPlan};
use mercurio::tcp::TcpEndpoint;
use nova::loader::{slice_label, summary_label, DataLoader};
use nova::{EventRecord, NovaGenerator};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use yokan::{DbTarget, YokanClient};

/// The fixed seeds the suite replays; CI runs exactly these.
const SEEDS: [u64; 3] = [7, 21, 1042];
const WRITERS: usize = 8;

/// The deployment's physical capacity: the topology the rescale grows into.
fn counts_full() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 4,
        products: 4,
    }
}

/// The pre-rescale client view (2 event + 2 product databases).
fn counts_small() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 2,
        products: 2,
    }
}

fn replicated_config() -> ServiceConfig {
    let mut cfg = ServiceConfig::hepnos_topology(counts_full(), BackendKind::Map, None);
    cfg.replication = Some(bedrock::ReplicationConfig {
        factor: 2,
        forward_timeout_ms: 50,
        forward_attempts: 1,
        suspend_ms: 2_000,
    });
    cfg
}

/// Restrict descriptors to the databases the pre-rescale deployment used.
fn shrink_descriptors(
    full: &[ConnectionDescriptor],
    max_events: usize,
    max_products: usize,
) -> Vec<ConnectionDescriptor> {
    full.iter()
        .map(|d| {
            let mut d = d.clone();
            for p in &mut d.providers {
                p.databases.retain(|name| {
                    let keep = |prefix: &str, max: usize| {
                        name.strip_prefix(prefix)
                            .and_then(|s| s.strip_prefix('_'))
                            .and_then(|s| s.parse::<usize>().ok())
                            .map(|i| i < max)
                    };
                    if name.starts_with("events") {
                        keep("events", max_events).unwrap_or(false)
                    } else if name.starts_with("products") {
                        keep("products", max_products).unwrap_or(false)
                    } else {
                        true
                    }
                });
            }
            d.providers.retain(|p| !p.databases.is_empty());
            d
        })
        .collect()
}

/// The replica chains of one database group (`events` / `products`).
fn group_chains(descriptors: &[ConnectionDescriptor], prefix: &str) -> Vec<Vec<DbTarget>> {
    bedrock::deployment_chains(descriptors)
        .into_iter()
        .filter(|c| c[0].db.starts_with(prefix))
        .collect()
}

/// Every `DbTarget` of one group, for single-copy (in-process) topologies.
fn group_targets(descriptors: &[ConnectionDescriptor], prefix: &str) -> Vec<DbTarget> {
    let mut v: Vec<DbTarget> = descriptors
        .iter()
        .flat_map(|d| {
            d.providers.iter().flat_map(|p| {
                p.databases
                    .iter()
                    .filter(|n| n.starts_with(prefix))
                    .map(|n| DbTarget::new(d.address.clone(), p.provider_id, n))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    v.sort();
    v
}

fn workload(seed: u64) -> Vec<EventRecord> {
    let gen = NovaGenerator::new(seed);
    let mut events = Vec::new();
    for run in 0..2u64 {
        for subrun in 0..2u64 {
            for event in 0..12u64 {
                events.push(gen.generate(run, subrun, event));
            }
        }
    }
    events
}

/// A deep per-target budget: writers must ride out injected drops (300 ms
/// timeouts), `Busy` sheds from frozen ranges, and the failover after the
/// kill — losing an ack to an exhausted budget would void the suite.
fn writer_retry_policy(seed: u64) -> yokan::RetryPolicy {
    yokan::RetryPolicy {
        max_attempts: 16,
        rpc_timeout: Duration::from_millis(300),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        jitter_seed: seed,
    }
}

/// Everything the workload wrote, in deterministic order.
type Digest = Vec<(u64, u64, u64, Option<Vec<u8>>, Option<Vec<u8>>)>;

fn digest(store: &DataStore, dataset_name: &str) -> Digest {
    let ds = store
        .root()
        .dataset(dataset_name)
        .expect("dataset lookup failed");
    let slice = slice_label();
    let slice_ty = nova::loader::slice_type_name();
    let summary = summary_label();
    let summary_ty = nova::loader::summary_type_name();
    let mut out = Digest::new();
    for run in ds.runs().expect("list runs") {
        for sr in run.subruns().expect("list subruns") {
            for ev in sr.events().expect("list events") {
                let (r, s, e) = ev.coordinates();
                let slices = ev.load_raw(&slice, &slice_ty).expect("load slices");
                let sum = ev.load_raw(&summary, &summary_ty).expect("load summary");
                out.push((r, s, e, slices, sum));
            }
        }
    }
    out
}

/// Fault-free reference run (in-process fabric, pre-rescale topology — the
/// digest depends only on the data, not on transport or placement).
fn baseline_digest(seed: u64) -> Digest {
    let dep = local_deployment(1, counts_small());
    let store = dep.datastore();
    let ds = store.root().create_dataset("nova").expect("create dataset");
    DataLoader::new(store.clone(), ds)
        .ingest_events(&workload(seed))
        .expect("baseline ingest failed");
    let d = digest(&store, "nova");
    dep.shutdown();
    d
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Drops, duplicates and delays on every frame the writers' endpoint
/// sends or receives, derived deterministically from the seed.
fn fault_config(seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::new(seed);
    cfg.drop_request = 0.04;
    cfg.drop_response = 0.04;
    cfg.duplicate_request = 0.04;
    cfg.delay_probability = 0.15;
    cfg.delay_min = Duration::from_millis(1);
    cfg.delay_max = Duration::from_millis(6);
    cfg
}

fn live_migrator_config() -> MigratorConfig {
    MigratorConfig {
        batch_keys: 8,
        max_inflight_ranges: 2,
        freeze_retry_after: Duration::from_millis(2),
        range_pause: Duration::from_millis(25),
    }
}

#[test]
fn live_rescale_under_faulted_ingest_survives_node_kill() {
    for seed in SEEDS {
        let want = baseline_digest(seed);
        let cfg = replicated_config();
        let mut servers: Vec<Option<BedrockServer>> = (0..2)
            .map(|_| {
                Some(
                    bedrock::launch(TcpEndpoint::bind(0).expect("bind"), &cfg)
                        .expect("server bootstrap"),
                )
            })
            .collect();
        let descriptors: Vec<ConnectionDescriptor> = servers
            .iter()
            .map(|s| s.as_ref().unwrap().descriptor().clone())
            .collect();
        {
            let refs: Vec<&BedrockServer> = servers.iter().flatten().collect();
            bedrock::wire_replication(&refs);
        }
        let small = shrink_descriptors(&descriptors, 2, 2);
        let (old_events, new_events) = (
            group_chains(&small, "events"),
            group_chains(&descriptors, "events"),
        );
        let (old_products, new_products) = (
            group_chains(&small, "products"),
            group_chains(&descriptors, "products"),
        );
        assert_eq!(old_events.len(), 2);
        assert_eq!(new_events.len(), 4);

        // Writers use the pre-rescale topology behind a fault plan.
        let client_ep = TcpEndpoint::bind(0).expect("bind client");
        let store =
            DataStore::connect_with_retry(client_ep.clone(), &small, writer_retry_policy(seed))
                .expect("datastore connect");
        assert_eq!(store.replication_factor(), 2);
        assert_eq!(store.topology_epoch(), 1, "client must learn the epoch");
        store.root().create_dataset("nova").expect("create dataset");

        // The node that will die: the head of the first old events chain.
        let victim = (0..2)
            .find(|&i| {
                servers[i]
                    .as_ref()
                    .is_some_and(|s| s.address() == old_events[0][0].addr)
            })
            .expect("victim node index");

        // 8 writers, each ingesting an interleaved shard of the workload.
        // A barrier splits each shard: the first half runs fault-free, the
        // second half runs against faults, a live migration and the kill.
        let events = workload(seed);
        let gate = Arc::new(Barrier::new(WRITERS + 1));
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let shard: Vec<EventRecord> = events.iter().skip(w).step_by(WRITERS).cloned().collect();
            let store = store.clone();
            let gate = gate.clone();
            handles.push(std::thread::spawn(move || {
                let ds = store.root().dataset("nova").expect("dataset");
                let loader = DataLoader::new(store, ds);
                let mid = shard.len() / 2;
                loader
                    .ingest_events(&shard[..mid])
                    .expect("fault-free first half failed");
                gate.wait();
                loader.ingest_events(&shard[mid..])
            }));
        }
        gate.wait();
        client_ep.install_fault_plan(Arc::new(FaultPlan::new(fault_config(seed))));

        // The background migration: events then products, while writers run.
        let ev_mig = Arc::new(
            Migrator::new(
                YokanClient::new(TcpEndpoint::bind(0).expect("bind mig")),
                old_events.clone(),
                new_events.clone(),
                Arc::new(ModuloPlacement),
                PlacementInput::Prefix(32),
                live_migrator_config(),
            )
            .expect("events migrator"),
        );
        let pr_mig = Arc::new(
            Migrator::new(
                YokanClient::new(TcpEndpoint::bind(0).expect("bind mig2")),
                old_products.clone(),
                new_products.clone(),
                Arc::new(ModuloPlacement),
                PlacementInput::Product,
                live_migrator_config(),
            )
            .expect("products migrator"),
        );
        let mig_thread = {
            let (ev, pr) = (ev_mig.clone(), pr_mig.clone());
            std::thread::spawn(move || (ev.run(), pr.run()))
        };

        // Kill one node outright once the migration is demonstrably in
        // flight: at least one range frozen, copied and handed off.
        {
            let ev = ev_mig.clone();
            wait_until(
                "the migration to move a range",
                Duration::from_secs(30),
                || ev.progress().ranges_migrated >= 1,
            );
        }
        servers[victim].take().unwrap().shutdown();

        // Zero lost acks: every writer completes despite faults, frozen
        // ranges and the kill.
        for h in handles {
            h.join()
                .expect("writer panicked")
                .expect("acked ingest failed under live rescale — lost acks");
        }

        // The migration completes, or cleanly resumes after the kill: the
        // pass is idempotent, so re-running the failed group converges.
        let (ev_res, pr_res) = mig_thread.join().expect("migrator panicked");
        if ev_res.is_err() {
            ev_mig.run().expect("events migration failed to resume");
        }
        if pr_res.is_err() {
            pr_mig.run().expect("products migration failed to resume");
        }
        client_ep.clear_fault_plan();

        // Handoff dual-writes: overwriting already-moved products through
        // the *old* topology (identical bytes, so the digest is untouched)
        // must be forwarded to the new owners by the old ones.
        let replayable = {
            let ds = store.root().dataset("nova").expect("dataset");
            let slice = slice_label();
            let slice_ty = nova::loader::slice_type_name();
            let mut first = None;
            for run in ds.runs().expect("runs") {
                for sr in run.subruns().expect("subruns") {
                    for ev in sr.events().expect("events") {
                        let bytes = ev
                            .load_raw(&slice, &slice_ty)
                            .expect("load slices")
                            .expect("acked product missing");
                        ev.store_raw(&slice, &slice_ty, &bytes).expect("re-store");
                        first.get_or_insert((ev, bytes));
                    }
                }
            }
            first.expect("workload has events")
        };
        let forwarded: u64 = servers
            .iter()
            .flatten()
            .map(|s| s.yokan().migration_stats().forwarded_writes)
            .sum();
        assert!(
            forwarded > 0,
            "seed {seed}: no handed-off overwrite was dual-written to a new owner"
        );
        // Zero double-applies, deterministically: replay one overwrite with
        // every request frame duplicated — the copy must be answered from
        // the dedup window, not re-applied (a re-apply would also break the
        // digest equality below).
        {
            let (ev, bytes) = &replayable;
            let mut dup = FaultConfig::new(seed);
            dup.duplicate_request = 1.0;
            client_ep.install_fault_plan(Arc::new(FaultPlan::new(dup)));
            ev.store_raw(&slice_label(), &nova::loader::slice_type_name(), bytes)
                .expect("replayed re-store");
            client_ep.clear_fault_plan();
        }
        wait_until(
            "a duplicated frame to be absorbed by the dedup window",
            Duration::from_secs(10),
            || {
                servers
                    .iter()
                    .flatten()
                    .map(|s| s.yokan().deduped_replays())
                    .sum::<u64>()
                    > 0
            },
        );

        // Finalize: converge stragglers, bump the topology epoch on every
        // reachable node, retire the handoff state.
        assert_eq!(ev_mig.finalize(2).expect("finalize events"), 2);
        assert_eq!(pr_mig.finalize(2).expect("finalize products"), 2);

        // Epoch fencing: the writers' store still stamps epoch 1 — its next
        // mutation must be rejected, not silently accepted.
        let err = store
            .root()
            .create_dataset("stale-after-rescale")
            .expect_err("stale-epoch writer was silently accepted");
        assert!(
            matches!(
                err,
                HepnosError::Storage(yokan::YokanError::WrongEpoch { .. })
            ),
            "seed {seed}: expected WrongEpoch, got {err:?}"
        );

        // Byte-identical read-back through the *new* topology (reads fall
        // back from the dead chain members transparently).
        let fresh = DataStore::connect(TcpEndpoint::bind(0).expect("bind fresh"), &descriptors)
            .expect("fresh connect");
        assert_eq!(
            digest(&fresh, "nova"),
            want,
            "seed {seed}: contents diverged after live rescale + kill \
             (retries: {:?})",
            store.retry_stats()
        );
        for s in servers.into_iter().flatten() {
            s.shutdown();
        }
    }
}

/// Dual-read pin: a client of the new topology, reading concurrently with
/// the copy pass, must never miss an acked key — including keys written
/// *behind* the copier mid-migration — and must observe handed-off
/// overwrites. After finalize, a fresh client needs no fallback at all.
#[test]
fn dual_reads_never_miss_acked_keys_during_handoff() {
    let dep = local_deployment(1, counts_full());
    let full = dep.descriptors().to_vec();
    let small = shrink_descriptors(&full, 2, 2);
    let store_small = DataStore::connect_with_retry(
        dep.fabric().endpoint("pin-small"),
        &small,
        writer_retry_policy(7),
    )
    .unwrap();
    let label = ProductLabel::new("payload").unwrap();
    let v1 = |s: u64, e: u64| vec![(s * 1000 + e) as u32; 3];
    let v2 = |s: u64, e: u64| vec![(s * 1000 + e) as u32 + 500_000; 3];

    // Populate through the pre-rescale topology.
    let ds = store_small.root().create_dataset("pin").unwrap();
    let uuid = ds.uuid().unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..4u64 {
        let sr = run.create_subrun(s).unwrap();
        let mut batch = WriteBatch::new(&store_small);
        for e in 0..40u64 {
            let ev = batch.create_event(&sr, &uuid, e).unwrap();
            batch.store(&ev, &label, &v1(s, e)).unwrap();
        }
        batch.flush().unwrap();
    }

    // A client of the NEW topology, with dual-read fallbacks to the old
    // owners of both migrating groups.
    let store_full = DataStore::connect(dep.fabric().endpoint("pin-full"), &full).unwrap();
    for t in group_targets(&full, "events") {
        store_full.install_dual_read(&t.db, group_targets(&small, "events"));
    }
    for t in group_targets(&full, "products") {
        store_full.install_dual_read(&t.db, group_targets(&small, "products"));
    }
    let scan = |expected: &[(u64, usize)], value: &dyn Fn(u64, u64) -> Vec<u32>| {
        let run = store_full.dataset("pin").unwrap().run(1).unwrap();
        let mut seen: Vec<(u64, usize)> = Vec::new();
        for sr in run.subruns().unwrap() {
            let events = sr.events().unwrap();
            for ev in &events {
                let got: Vec<u32> = ev
                    .load(&label)
                    .expect("product read failed during handoff")
                    .expect("acked product missing during handoff");
                assert_eq!(got, value(sr.number(), ev.number()));
            }
            seen.push((sr.number(), events.len()));
        }
        assert_eq!(seen, expected, "a scan during handoff missed acked keys");
    };
    // Before any copying the new owners are empty: everything is served by
    // the old-owner fallback.
    let all_40: Vec<(u64, usize)> = (0..4u64).map(|s| (s, 40)).collect();
    scan(&all_40, &v1);
    assert!(
        store_full.retry_stats().dual_reads > 0,
        "pre-copy scans must have used the old-owner fallback"
    );

    // Copy pass in the background, deliberately slowed.
    let mig_cfg = MigratorConfig {
        batch_keys: 8,
        max_inflight_ranges: 2,
        freeze_retry_after: Duration::from_millis(2),
        range_pause: Duration::from_millis(10),
    };
    let to_chains = |ts: Vec<DbTarget>| ts.into_iter().map(|t| vec![t]).collect::<Vec<_>>();
    let ev_mig = Arc::new(
        Migrator::new(
            YokanClient::new(dep.fabric().endpoint("pin-mig-ev")),
            to_chains(group_targets(&small, "events")),
            to_chains(group_targets(&full, "events")),
            Arc::new(ModuloPlacement),
            PlacementInput::Prefix(32),
            mig_cfg.clone(),
        )
        .unwrap(),
    );
    let pr_mig = Arc::new(
        Migrator::new(
            YokanClient::new(dep.fabric().endpoint("pin-mig-pr")),
            to_chains(group_targets(&small, "products")),
            to_chains(group_targets(&full, "products")),
            Arc::new(ModuloPlacement),
            PlacementInput::Product,
            mig_cfg,
        )
        .unwrap(),
    );
    let done = Arc::new(AtomicBool::new(false));
    let mig_thread = {
        let (ev, pr, done) = (ev_mig.clone(), pr_mig.clone(), done.clone());
        std::thread::spawn(move || {
            let r = (ev.run(), pr.run());
            done.store(true, Ordering::SeqCst);
            r
        })
    };

    // Mid-migration, ack five late events *behind* the copier into subrun
    // 0 — from then on every scan must see 45 there.
    let sr0 = run.subruns().unwrap().remove(0);
    for i in 0..5u64 {
        let ev = sr0.create_event(1000 + i).unwrap();
        ev.store(&label, &v1(0, 1000 + i)).unwrap();
    }
    let with_late: Vec<(u64, usize)> = (0..4u64)
        .map(|s| (s, 40 + usize::from(s == 0) * 5))
        .collect();
    while !done.load(Ordering::SeqCst) {
        scan(&with_late, &v1);
    }
    let (ev_res, pr_res) = mig_thread.join().expect("migrator panicked");
    ev_res.expect("events migration failed");
    pr_res.expect("products migration failed");

    // Handoff: overwrite every product through the OLD topology; moved
    // keys are dual-written to the new owners, so the new-topology client
    // observes the update immediately.
    for sr in run.subruns().unwrap() {
        for ev in sr.events().unwrap() {
            let (_, s, e) = ev.coordinates();
            ev.store(&label, &v2(s, e)).unwrap();
        }
    }
    scan(&with_late, &v2);
    let mig_stats = dep.server(0).unwrap().yokan().migration_stats();
    assert!(
        mig_stats.forwarded_writes > 0,
        "handed-off overwrites were never dual-written: {mig_stats:?}"
    );

    // Finalize: stragglers (the late events) converge to their new homes,
    // the epoch advances, handoff state retires. A fresh client of the new
    // topology then needs no fallback at all.
    assert_eq!(ev_mig.finalize(2).unwrap(), 2);
    assert_eq!(pr_mig.finalize(2).unwrap(), 2);
    store_full.clear_dual_read();
    scan(&with_late, &v2);
    let fresh = DataStore::connect(dep.fabric().endpoint("pin-fresh"), &full).unwrap();
    assert_eq!(fresh.topology_epoch(), 2);
    let run_f = fresh.dataset("pin").unwrap().run(1).unwrap();
    let mut n = 0usize;
    for sr in run_f.subruns().unwrap() {
        n += sr.events().unwrap().len();
    }
    assert_eq!(n, 165, "post-finalize topology lost keys");
    assert_eq!(
        fresh.retry_stats().dual_reads,
        0,
        "a finalized rescale must not need old-owner fallbacks"
    );

    // Epoch fencing, all three writer flavours: the stale store is
    // rejected; a raw client stamping the old epoch is rejected with the
    // current epoch in the redirect; an epoch-0 (exempt) client passes.
    let err = store_small.root().create_dataset("stale").unwrap_err();
    assert!(matches!(
        err,
        HepnosError::Storage(yokan::YokanError::WrongEpoch { .. })
    ));
    let target = group_targets(&full, "events").remove(0);
    let stale = YokanClient::new(dep.fabric().endpoint("pin-stale"));
    stale.set_topology_epoch(1);
    match stale.put(&target, b"__stale_probe", b"x") {
        Err(yokan::YokanError::WrongEpoch { current }) => assert_eq!(current, 2),
        other => panic!("stale raw writer must be redirected, got {other:?}"),
    }
    let exempt = YokanClient::new(dep.fabric().endpoint("pin-exempt"));
    exempt.put(&target, b"__exempt_probe", b"x").unwrap();
    exempt.erase(&target, b"__exempt_probe").unwrap();
    dep.shutdown();
}

/// The teardown→converge window inside finalize: once `migration_complete`
/// stops the dual-writes, fresh clients own the destination copy outright.
/// A convergence pass that blindly re-copied the old owner's values would
/// clobber a fresh overwrite and resurrect a fresh erase — so converge must
/// treat handed-off keys as destination-authoritative (audit and erase the
/// old copy, never write it back) while still moving stragglers written
/// behind the copier, if-absent.
#[test]
fn finalize_window_preserves_fresh_writes_and_erases() {
    let dep = local_deployment(1, counts_full());
    let full = dep.descriptors().to_vec();
    let small = shrink_descriptors(&full, 2, 2);
    let old_ev = group_targets(&small, "events");
    let new_ev = group_targets(&full, "events");
    let place = ModuloPlacement;
    let raw = YokanClient::new(dep.fabric().endpoint("fin-raw"));

    // Synthetic event-style keys: a unique 32-byte prefix (the placement
    // input under `PlacementInput::Prefix(32)`) plus a short suffix. The
    // racing keys are picked to re-home onto a *brand-new* database
    // (index >= 2), so the post-teardown mutations below hit services with
    // no residual migration state of their own.
    let key = |i: usize| -> Vec<u8> {
        let mut k = format!("{i:032}").into_bytes();
        k.extend_from_slice(b"/p");
        k
    };
    let v1 = |i: usize| format!("v1-{i:04}").into_bytes();
    let homes = |k: &[u8]| {
        (
            place.place(&k[..32], old_ev.len()),
            place.place(&k[..32], new_ev.len()),
        )
    };
    const N: usize = 64;
    let mut fresh_keys: Vec<usize> = (0..N).filter(|&i| homes(&key(i)).1 >= 2).collect();
    let overwrite = fresh_keys.pop().expect("a re-homed key to overwrite");
    let erased = fresh_keys.pop().expect("a re-homed key to erase");
    let straggler = fresh_keys.pop().expect("a re-homed straggler key");
    let resident = (0..N)
        .find(|&i| {
            let (o, n) = homes(&key(i));
            new_ev[n].db == old_ev[o].db
        })
        .expect("a key that stays put");

    // Populate everything except the straggler, each key on its correct
    // old owner.
    for i in 0..N {
        if i == straggler {
            continue;
        }
        let k = key(i);
        let (o, _) = homes(&k);
        raw.put(&old_ev[o], &k, &v1(i)).unwrap();
    }

    let to_chains = |ts: Vec<DbTarget>| ts.into_iter().map(|t| vec![t]).collect::<Vec<_>>();
    let mig = Migrator::new(
        YokanClient::new(dep.fabric().endpoint("fin-mig")),
        to_chains(old_ev.clone()),
        to_chains(new_ev.clone()),
        Arc::new(ModuloPlacement),
        PlacementInput::Prefix(32),
        live_migrator_config(),
    )
    .unwrap();
    mig.run().unwrap();

    // Reproduce the window finalize itself opens: handoff torn down (the
    // dual-writes stop), convergence not yet run — and a fresh client
    // mutates re-homed keys on their new owners while a straggler lands
    // behind the copier on an old owner.
    for t in &old_ev {
        raw.migration_complete(t).unwrap();
    }
    let (k_ow, (o_ow, n_ow)) = (key(overwrite), homes(&key(overwrite)));
    let (k_er, (o_er, n_er)) = (key(erased), homes(&key(erased)));
    let (k_st, (o_st, n_st)) = (key(straggler), homes(&key(straggler)));
    raw.put(&new_ev[n_ow], &k_ow, b"fresh-v2").unwrap();
    raw.erase(&new_ev[n_er], &k_er).unwrap();
    raw.put(&old_ev[o_st], &k_st, &v1(straggler)).unwrap();

    assert_eq!(mig.finalize(2).unwrap(), 2);
    assert_eq!(
        mig.progress().under_replicated,
        0,
        "single-copy chains, all members up: nothing may be retained"
    );

    // The fresh overwrite survives converge and its old copy is gone.
    assert_eq!(
        raw.get(&new_ev[n_ow], &k_ow).unwrap().as_deref(),
        Some(&b"fresh-v2"[..]),
        "converge clobbered a fresh post-teardown overwrite"
    );
    assert_eq!(raw.get(&old_ev[o_ow], &k_ow).unwrap(), None);
    // The fresh erase stays erased — converge must not resurrect it from
    // the old owner's stale copy, and the stale copy itself is retired.
    assert_eq!(
        raw.get(&new_ev[n_er], &k_er).unwrap(),
        None,
        "converge resurrected a fresh post-teardown erase"
    );
    assert_eq!(raw.get(&old_ev[o_er], &k_er).unwrap(), None);
    // The straggler reached its new home and left the old one.
    assert_eq!(
        raw.get(&new_ev[n_st], &k_st).unwrap().as_deref(),
        Some(v1(straggler).as_slice()),
        "converge lost a straggler written behind the copier"
    );
    assert_eq!(raw.get(&old_ev[o_st], &k_st).unwrap(), None);
    // Bystanders: the resident never moved, and every other re-homed key
    // serves its original value from its new owner.
    let (o_rs, _) = homes(&key(resident));
    assert_eq!(
        raw.get(&old_ev[o_rs], &key(resident)).unwrap().as_deref(),
        Some(v1(resident).as_slice())
    );
    for i in fresh_keys {
        let k = key(i);
        let (_, n) = homes(&k);
        assert_eq!(
            raw.get(&new_ev[n], &k).unwrap().as_deref(),
            Some(v1(i).as_slice()),
            "re-homed key {i} lost in the finalize window"
        );
    }
    dep.shutdown();
}

/// A node that missed the finalize epoch bump (dead, partitioned, or
/// restarted since) re-converges from traffic: a mutation stamped with a
/// *newer* epoch than the node's own is proof the bump happened — clients
/// only learn epochs from services that installed them — so the node
/// adopts it instead of fencing the writer. And a recovering client must
/// learn the deployment's *max* epoch, not whatever the first node it
/// probes happens to believe.
#[test]
fn lagging_node_adopts_newer_epoch_from_traffic() {
    let dep = local_deployment(2, counts_small());
    let store = dep.datastore();
    assert_eq!(store.topology_epoch(), 1);

    // A finalize node 0 never saw: node 1 installs epoch 4.
    dep.server(1).unwrap().yokan().set_topology_epoch(4);

    // The refresh probes every node and adopts the max — probing only
    // node 0 would adopt the stale epoch 1 and get fenced by node 1.
    assert_eq!(store.refresh_topology_epoch().unwrap(), 4);

    // A stamped mutation at the lagging node is accepted and teaches it.
    let addr0 = dep.server(0).unwrap().address();
    let d0 = dep
        .descriptors()
        .iter()
        .find(|d| d.address == addr0)
        .expect("node 0 descriptor");
    let t0 = DbTarget::new(
        d0.address.clone(),
        d0.providers[0].provider_id,
        &d0.providers[0].databases[0],
    );
    let writer = YokanClient::new(dep.fabric().endpoint("adopt"));
    writer.set_topology_epoch(4);
    writer.put(&t0, b"__adopt_probe", b"x").unwrap();
    assert_eq!(
        dep.server(0).unwrap().yokan().topology_epoch(),
        4,
        "the lagging node must adopt the newer epoch it was shown"
    );
    writer.erase(&t0, b"__adopt_probe").unwrap();

    // Genuinely stale writers stay fenced — with the adopted epoch.
    let stale = YokanClient::new(dep.fabric().endpoint("adopt-stale"));
    stale.set_topology_epoch(2);
    match stale.put(&t0, b"__stale_probe", b"x") {
        Err(yokan::YokanError::WrongEpoch { current }) => assert_eq!(current, 4),
        other => panic!("stale writer must be fenced, got {other:?}"),
    }
    // The refreshed store keeps working against either node.
    store.root().create_dataset("post-adopt").unwrap();
    dep.shutdown();
}

/// A fenced writer is redirected, not stranded: after the epoch moves, a
/// refresh re-arms the client with the current epoch and its writes pass.
#[test]
fn stale_epoch_writer_is_fenced_and_recovers_after_refresh() {
    let dep = local_deployment(1, counts_small());
    let store = dep.datastore();
    assert_eq!(store.topology_epoch(), 1);
    store.root().create_dataset("before").unwrap();

    // Some other actor finalizes a rescale: the service epoch advances.
    dep.server(0).unwrap().yokan().set_topology_epoch(5);
    let err = store.root().create_dataset("during").unwrap_err();
    assert!(matches!(
        err,
        HepnosError::Storage(yokan::YokanError::WrongEpoch { current: 5 })
    ));

    // The redirect carries the cure: refresh, then retry.
    assert_eq!(store.refresh_topology_epoch().unwrap(), 5);
    store.root().create_dataset("after").unwrap();
    dep.shutdown();
}
