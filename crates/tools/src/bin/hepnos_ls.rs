//! `hepnos-ls` — inspect a running deployment's namespace.
//!
//! ```text
//! hepnos-ls --connect descriptors.json [path/to/dataset]
//! ```
//!
//! With no path: lists the top-level datasets. With a dataset path: lists
//! its child datasets and runs, and per run the subrun and event counts.

use hepnos_tools::{connect, Args};
use std::path::Path;

const USAGE: &str = "hepnos-ls --connect descriptors.json [dataset-path]";

fn main() {
    let args = Args::from_env();
    let file = args.require("connect", USAGE);
    let store = connect(Path::new(&file));
    match args.positional().first() {
        None => {
            let roots = store.root().datasets().unwrap_or_else(die);
            if roots.is_empty() {
                println!("(no datasets)");
            }
            for d in roots {
                println!("{}/", d.full_path());
            }
        }
        Some(path) => {
            let ds = store.dataset(path).unwrap_or_else(die);
            println!(
                "dataset {} (uuid {})",
                ds.full_path(),
                ds.uuid().expect("non-root")
            );
            for child in ds.datasets().unwrap_or_else(die) {
                println!("  {}/", child.name());
            }
            for run in ds.runs().unwrap_or_else(die) {
                let subruns = run.subruns().unwrap_or_else(die);
                let events: usize = subruns
                    .iter()
                    .map(|sr| sr.events().map(|e| e.len()).unwrap_or(0))
                    .sum();
                println!(
                    "  run {:>6}: {} subruns, {} events",
                    run.number(),
                    subruns.len(),
                    events
                );
            }
        }
    }
}

fn die<T>(e: hepnos::HepnosError) -> T {
    eprintln!("error: {e}");
    std::process::exit(1);
}
