//! `hepnos-select` — the candidate-selection client (the paper's HEPnOS
//! workflow, §IV-B) as a command-line program.
//!
//! ```text
//! hepnos-select --connect descriptors.json --dataset path/to/ds
//!               [--workers N] [--load-batch N] [--dispatch-batch N]
//!               [--spectrum] [--pushdown]
//! ```
//!
//! Runs the ParallelEventProcessor over the dataset, applies the ν_e
//! selection to every slice, prints the accepted count, throughput and
//! load-balance statistics, and optionally the energy spectrum. Slice
//! products stored as columnar page blobs (`hepnos-ingest --columnar`)
//! are decoded transparently. With `--pushdown`, the selection is instead
//! compiled to a predicate program and evaluated server-side against the
//! column pages — only surviving slice ids cross the wire (events without
//! columnar products fall back to fetch-and-cut automatically).

use hepnos::{ParallelEventProcessor, PepOptions};
use hepnos_tools::{connect, Args};
use nova::loader::{slice_label, slice_type_name};
use nova::{EventRecord, SelectionCuts, SliceQuantities, Spectrum};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::path::Path;

const USAGE: &str = "hepnos-select --connect descriptors.json --dataset PATH \
                     [--workers N] [--load-batch N] [--dispatch-batch N] \
                     [--spectrum] [--pushdown]";

fn main() {
    let args = Args::from_env();
    let file = args.require("connect", USAGE);
    let dataset_path = args.require("dataset", USAGE);
    let workers: usize = args.get_or("workers", "4").parse().unwrap_or(4);
    let store = connect(Path::new(&file));
    let ds = store.dataset(&dataset_path).unwrap_or_else(|e| {
        eprintln!("cannot open dataset: {e}");
        std::process::exit(1);
    });
    let cuts = SelectionCuts::default();
    if args.get("pushdown").is_some() {
        if args.get("spectrum").is_some() {
            eprintln!("--spectrum needs slice payloads; it is unavailable with --pushdown");
            std::process::exit(2);
        }
        let t = std::time::Instant::now();
        let (ids, stats) = nova::select_dataset_pushdown(&store, &ds, &cuts).unwrap_or_else(|e| {
            eprintln!("processing failed: {e}");
            std::process::exit(1);
        });
        let dt = t.elapsed();
        println!(
            "processed {} events / {} slices in {dt:.2?} ({:.0} slices/s, push-down)",
            stats.events,
            stats.rows_in,
            stats.rows_in as f64 / dt.as_secs_f64(),
        );
        println!(
            "accepted {} candidate slices (rejection ratio {:.1e})",
            ids.len(),
            stats.rows_in as f64 / ids.len().max(1) as f64
        );
        println!(
            "pushdown: {} pages scanned/{} skipped, {} stored bytes filtered in place, \
             {} fallback events",
            stats.pages_scanned, stats.pages_skipped, stats.bytes_stored, stats.fallback_events
        );
        return;
    }
    let accepted: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
    let spectrum: Mutex<Spectrum> = Mutex::new(Spectrum::nue_energy());
    let slices_seen = Mutex::new(0u64);
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            num_workers: workers,
            load_batch_size: args.get_or("load-batch", "16384").parse().unwrap_or(16384),
            dispatch_batch_size: args.get_or("dispatch-batch", "64").parse().unwrap_or(64),
            // Prefetch both representations: opaque blobs and columnar pages.
            prefetch: vec![
                (slice_label(), slice_type_name()),
                (slice_label(), nova::columnar::columnar_type_name()),
            ],
            ..Default::default()
        },
    );
    let stats = pep
        .process(&ds, |_w, pe| {
            let slices: Vec<SliceQuantities> = nova::loader::load_slices_prefetched(pe)
                .unwrap()
                .unwrap_or_default();
            let (run, subrun, event) = pe.event().coordinates();
            let rec = EventRecord {
                run,
                subrun,
                event,
                slices,
            };
            *slices_seen.lock() += rec.slices.len() as u64;
            let mut spec = spectrum.lock();
            spec.add_exposure(1.0);
            for s in rec.slices.iter().filter(|s| cuts.passes(s)) {
                spec.fill_slice(s);
            }
            drop(spec);
            accepted.lock().extend(nova::select_slices(&rec, &cuts));
        })
        .unwrap_or_else(|e| {
            eprintln!("processing failed: {e}");
            std::process::exit(1);
        });
    let accepted = accepted.into_inner();
    let slices_seen = slices_seen.into_inner();
    println!(
        "processed {} events / {} slices in {:.2?} ({:.0} slices/s, {workers} workers, \
         load imbalance {:.2})",
        stats.total_events,
        slices_seen,
        stats.wall_time,
        slices_seen as f64 / stats.wall_time.as_secs_f64(),
        stats.load_imbalance()
    );
    println!(
        "pipeline: overlap ratio {:.2} ({:.1?} blocked on storage), read-ahead hwm {}, \
         {} dispatch batches stolen",
        stats.overlap_ratio(),
        stats.blocked_time(),
        stats.read_ahead_hwm(),
        stats.total_steals()
    );
    println!(
        "accepted {} candidate slices (rejection ratio {:.1e})",
        accepted.len(),
        slices_seen as f64 / accepted.len().max(1) as f64
    );
    let r = store.retry_stats();
    if r.failovers > 0 || r.read_fallbacks > 0 {
        println!(
            "replication: {} failovers, {} read fallbacks",
            r.failovers, r.read_fallbacks
        );
    }
    if args.get("spectrum").is_some() {
        print!("{}", spectrum.into_inner().ascii());
    }
}
