//! `hepnos-serve` — run one HEPnOS server node as a real process.
//!
//! ```text
//! hepnos-serve [--config bedrock.json] [--port 0] [--backend map|lsm]
//!              [--data-dir DIR] [--wal-sync none|group|always]
//!              [--events N] [--products N] [--replication R]
//!              [--wire-from FILE] [--join [EPOCH]] [--drain]
//!              --descriptor-out FILE [--run-seconds N]
//! ```
//!
//! Bootstraps a Bedrock service on a TCP socket, writes the node's
//! connection descriptor (JSON) to `--descriptor-out` (clients concatenate
//! the descriptors of all nodes into one array), and serves until killed
//! (or for `--run-seconds`, for scripted tests). With `--backend lsm` the
//! node persists to `--data-dir` and survives restarts; `--wal-sync`
//! selects the WAL durability mode, and per-database LSM counters (levels,
//! compactions, stall/shed totals) are printed at exit.
//!
//! `--replication R` turns on chain replication: same-named databases on
//! different nodes become R-replica chains. After every node has written
//! its descriptor, point each node at the aggregated deployment file with
//! `--wire-from`: the server polls for the file and installs its
//! chain-forward routes once it parses.
//!
//! `--join EPOCH` marks the node as joining an already-running deployment
//! mid-rescale: the node adopts the given topology epoch (stale writers
//! fenced from the first request) and prints the epoch it joined at.
//! `--drain` marks the node as leaving: at exit it prints the epoch it
//! left at plus its live-migration counters, so deployment scripts can
//! log the handoff boundary.

use bedrock::{BackendKind, ConnectionDescriptor, DbCounts, LsmConfig, ServiceConfig};
use hepnos_tools::Args;
use mercurio::tcp::TcpEndpoint;
use std::path::PathBuf;

const USAGE: &str = "hepnos-serve [--config bedrock.json] [--port N] [--backend map|lsm] \
                     [--data-dir DIR] [--wal-sync none|group|always] \
                     [--events N] [--products N] [--replication R] [--wire-from FILE] \
                     [--join [EPOCH]] [--drain] --descriptor-out FILE [--run-seconds N]";

fn main() {
    let args = Args::from_env();
    let port: u16 = args.get_or("port", "0").parse().unwrap_or_else(|_| {
        eprintln!("bad --port");
        std::process::exit(2);
    });
    let config = match args.get("config") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read config {path}: {e}");
                std::process::exit(2);
            });
            ServiceConfig::from_json(&text).unwrap_or_else(|e| {
                eprintln!("bad config {path}: {e}");
                std::process::exit(2);
            })
        }
        None => {
            let backend = match args.get_or("backend", "map") {
                "map" => BackendKind::Map,
                "lsm" => BackendKind::Lsm,
                other => {
                    eprintln!("unknown backend {other}\nusage: {USAGE}");
                    std::process::exit(2);
                }
            };
            let data_dir = args.get("data-dir").map(PathBuf::from);
            if backend == BackendKind::Lsm && data_dir.is_none() {
                eprintln!("--backend lsm requires --data-dir");
                std::process::exit(2);
            }
            let counts = DbCounts {
                datasets: 1,
                runs: 1,
                subruns: 1,
                events: args.get_or("events", "8").parse().unwrap_or(8),
                products: args.get_or("products", "8").parse().unwrap_or(8),
            };
            let mut cfg = ServiceConfig::hepnos_topology(counts, backend, data_dir);
            if let Some(mode) = args.get("wal-sync") {
                if lsmdb::WalSync::parse(mode).is_none() {
                    eprintln!("unknown --wal-sync {mode} (want none|group|always)");
                    std::process::exit(2);
                }
                cfg.lsm = Some(LsmConfig {
                    wal_sync: mode.to_string(),
                    ..LsmConfig::default()
                });
            }
            if let Some(r) = args.get("replication") {
                let factor: usize = r.parse().unwrap_or_else(|_| {
                    eprintln!("bad --replication {r} (want a replica count)");
                    std::process::exit(2);
                });
                cfg.replication = Some(bedrock::ReplicationConfig {
                    factor,
                    ..Default::default()
                });
            }
            cfg
        }
    };
    let out = args.require("descriptor-out", USAGE);
    let endpoint = TcpEndpoint::bind(port).unwrap_or_else(|e| {
        eprintln!("cannot bind port {port}: {e}");
        std::process::exit(1);
    });
    let server = bedrock::launch(endpoint, &config).unwrap_or_else(|e| {
        eprintln!("bootstrap failed: {e}");
        std::process::exit(1);
    });
    let descriptor_json =
        serde_json::to_string_pretty(server.descriptor()).expect("descriptor serializes");
    std::fs::write(&out, &descriptor_json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "hepnos-serve: listening at {} ({} providers), descriptor written to {out}",
        server.address(),
        server.descriptor().providers.len()
    );
    // Replication needs the whole deployment's descriptors before forward
    // routes can be installed; poll for the aggregated file a job script
    // assembles from every node's --descriptor-out.
    if let Some(wire) = args.get("wire-from") {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            if let Ok(text) = std::fs::read_to_string(wire) {
                if let Ok(descriptors) = ConnectionDescriptor::parse_deployment(&text) {
                    bedrock::wire_replication_node(&server, &descriptors);
                    eprintln!(
                        "hepnos-serve: chain-forward routes wired from {wire} ({} nodes)",
                        descriptors.len()
                    );
                    break;
                }
            }
            if std::time::Instant::now() >= deadline {
                eprintln!("hepnos-serve: gave up waiting for {wire}; serving unreplicated");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
        }
    }
    // A node joining a live deployment mid-rescale adopts the deployment's
    // topology epoch up front, so a writer still stamping the pre-rescale
    // epoch is fenced from this node's very first request.
    if let Some(j) = args.get("join") {
        if j != "true" {
            let epoch: u64 = j.parse().unwrap_or_else(|_| {
                eprintln!("bad --join {j} (want an epoch number)");
                std::process::exit(2);
            });
            server.yokan().set_topology_epoch(epoch);
        }
        eprintln!(
            "hepnos-serve: joined topology at epoch {}",
            server.yokan().topology_epoch()
        );
    }
    let draining = args.get("drain").is_some();
    match args.get("run-seconds") {
        Some(s) => {
            let secs: u64 = s.parse().unwrap_or(1);
            std::thread::sleep(std::time::Duration::from_secs(secs));
            let ov = server.overload_stats();
            print_lsm_stats(&server);
            let fwd = server.yokan().forward_stats();
            if fwd.forwards_sent > 0 || fwd.forwards_applied > 0 || fwd.forward_degraded > 0 {
                eprintln!(
                    "hepnos-serve: replication: {} forwards sent, {} applied here, {} degraded",
                    fwd.forwards_sent, fwd.forwards_applied, fwd.forward_degraded
                );
            }
            let mig = server.yokan().migration_stats();
            if mig != Default::default() {
                eprintln!(
                    "hepnos-serve: migration: {} forwarded writes, {} handoff keys, \
                     {} frozen rejects, {} stale-epoch rejects",
                    mig.forwarded_writes,
                    mig.handoff_keys,
                    mig.frozen_rejects,
                    mig.wrong_epoch_rejects
                );
            }
            if draining {
                eprintln!(
                    "hepnos-serve: drained, left topology at epoch {}",
                    server.yokan().topology_epoch()
                );
            }
            server.shutdown();
            eprintln!(
                "hepnos-serve: done after {secs}s \
                 (admitted {}, shed {} [{} queue-full, {} deadline], queue hwm {})",
                ov.admitted,
                ov.shed(),
                ov.shed_queue_full,
                ov.shed_deadline,
                ov.queue_depth_hwm
            );
        }
        None => {
            // Serve until the process is killed.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

/// One line of engine counters per `lsm` database, so a scripted run can
/// see levels, amplification inputs and stall/shed totals without
/// attaching a client.
fn print_lsm_stats(server: &bedrock::BedrockServer) {
    for (pid, name, stats) in server.yokan().backend_stats() {
        let Some(lsm) = stats.lsm else { continue };
        eprintln!(
            "hepnos-serve: lsm provider{pid}/{name}: levels {:?} ({} tables, {} disk bytes), \
             {} flushes, {} compactions (+{} trivial), wal {} bytes / {} syncs, \
             {} stalls ({} us), {} sheds",
            lsm.level_bytes,
            lsm.total_tables(),
            lsm.disk_bytes(),
            lsm.flushes,
            lsm.compactions,
            lsm.trivial_moves,
            lsm.wal_bytes,
            lsm.wal_syncs,
            lsm.write_stalls,
            lsm.stall_micros,
            lsm.write_sheds
        );
    }
}
