//! `hepnos-serve` — run one HEPnOS server node as a real process.
//!
//! ```text
//! hepnos-serve [--config bedrock.json] [--port 0] [--backend map|lsm]
//!              [--data-dir DIR] [--wal-sync none|group|always]
//!              [--events N] [--products N]
//!              --descriptor-out FILE [--run-seconds N]
//! ```
//!
//! Bootstraps a Bedrock service on a TCP socket, writes the node's
//! connection descriptor (JSON) to `--descriptor-out` (clients concatenate
//! the descriptors of all nodes into one array), and serves until killed
//! (or for `--run-seconds`, for scripted tests). With `--backend lsm` the
//! node persists to `--data-dir` and survives restarts; `--wal-sync`
//! selects the WAL durability mode, and per-database LSM counters (levels,
//! compactions, stall/shed totals) are printed at exit.

use bedrock::{BackendKind, DbCounts, LsmConfig, ServiceConfig};
use hepnos_tools::Args;
use mercurio::tcp::TcpEndpoint;
use std::path::PathBuf;

const USAGE: &str = "hepnos-serve [--config bedrock.json] [--port N] [--backend map|lsm] \
                     [--data-dir DIR] [--wal-sync none|group|always] \
                     [--events N] [--products N] \
                     --descriptor-out FILE [--run-seconds N]";

fn main() {
    let args = Args::from_env();
    let port: u16 = args.get_or("port", "0").parse().unwrap_or_else(|_| {
        eprintln!("bad --port");
        std::process::exit(2);
    });
    let config = match args.get("config") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read config {path}: {e}");
                std::process::exit(2);
            });
            ServiceConfig::from_json(&text).unwrap_or_else(|e| {
                eprintln!("bad config {path}: {e}");
                std::process::exit(2);
            })
        }
        None => {
            let backend = match args.get_or("backend", "map") {
                "map" => BackendKind::Map,
                "lsm" => BackendKind::Lsm,
                other => {
                    eprintln!("unknown backend {other}\nusage: {USAGE}");
                    std::process::exit(2);
                }
            };
            let data_dir = args.get("data-dir").map(PathBuf::from);
            if backend == BackendKind::Lsm && data_dir.is_none() {
                eprintln!("--backend lsm requires --data-dir");
                std::process::exit(2);
            }
            let counts = DbCounts {
                datasets: 1,
                runs: 1,
                subruns: 1,
                events: args.get_or("events", "8").parse().unwrap_or(8),
                products: args.get_or("products", "8").parse().unwrap_or(8),
            };
            let mut cfg = ServiceConfig::hepnos_topology(counts, backend, data_dir);
            if let Some(mode) = args.get("wal-sync") {
                if lsmdb::WalSync::parse(mode).is_none() {
                    eprintln!("unknown --wal-sync {mode} (want none|group|always)");
                    std::process::exit(2);
                }
                cfg.lsm = Some(LsmConfig {
                    wal_sync: mode.to_string(),
                    ..LsmConfig::default()
                });
            }
            cfg
        }
    };
    let out = args.require("descriptor-out", USAGE);
    let endpoint = TcpEndpoint::bind(port).unwrap_or_else(|e| {
        eprintln!("cannot bind port {port}: {e}");
        std::process::exit(1);
    });
    let server = bedrock::launch(endpoint, &config).unwrap_or_else(|e| {
        eprintln!("bootstrap failed: {e}");
        std::process::exit(1);
    });
    let descriptor_json =
        serde_json::to_string_pretty(server.descriptor()).expect("descriptor serializes");
    std::fs::write(&out, &descriptor_json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "hepnos-serve: listening at {} ({} providers), descriptor written to {out}",
        server.address(),
        server.descriptor().providers.len()
    );
    match args.get("run-seconds") {
        Some(s) => {
            let secs: u64 = s.parse().unwrap_or(1);
            std::thread::sleep(std::time::Duration::from_secs(secs));
            let ov = server.overload_stats();
            print_lsm_stats(&server);
            server.shutdown();
            eprintln!(
                "hepnos-serve: done after {secs}s \
                 (admitted {}, shed {} [{} queue-full, {} deadline], queue hwm {})",
                ov.admitted,
                ov.shed(),
                ov.shed_queue_full,
                ov.shed_deadline,
                ov.queue_depth_hwm
            );
        }
        None => {
            // Serve until the process is killed.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

/// One line of engine counters per `lsm` database, so a scripted run can
/// see levels, amplification inputs and stall/shed totals without
/// attaching a client.
fn print_lsm_stats(server: &bedrock::BedrockServer) {
    for (pid, name, stats) in server.yokan().backend_stats() {
        let Some(lsm) = stats.lsm else { continue };
        eprintln!(
            "hepnos-serve: lsm provider{pid}/{name}: levels {:?} ({} tables, {} disk bytes), \
             {} flushes, {} compactions (+{} trivial), wal {} bytes / {} syncs, \
             {} stalls ({} us), {} sheds",
            lsm.level_bytes,
            lsm.total_tables(),
            lsm.disk_bytes(),
            lsm.flushes,
            lsm.compactions,
            lsm.trivial_moves,
            lsm.wal_bytes,
            lsm.wal_syncs,
            lsm.write_stalls,
            lsm.stall_micros,
            lsm.write_sheds
        );
    }
}
