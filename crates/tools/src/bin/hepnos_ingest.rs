//! `hepnos-ingest` — the HDF2HEPnOS DataLoader as a command-line client.
//!
//! ```text
//! hepnos-ingest --connect descriptors.json --dataset path/to/ds
//!               --input DIR [--loaders N] [--generate FILESxEVENTS --seed S]
//!               [--overlap [--xstreams N]]
//! ```
//!
//! Ingests every `*.hepf` file under `--input` into the target dataset,
//! file-parallel across `--loaders` ranks. With `--generate`, a synthetic
//! NOvA-layout dataset is produced into `--input` first (useful for
//! demos on a fresh deployment). With `--overlap`, product payloads ship
//! through the asynchronous write pipeline (bounded in-flight flushes on
//! an `--xstreams`-wide pool) and the pipeline counters are reported.

use hepnos_tools::{connect, Args};
use nova::loader::{parallel_ingest_overlapped_with, parallel_ingest_with};
use nova::NovaGenerator;
use std::path::{Path, PathBuf};

const USAGE: &str = "hepnos-ingest --connect descriptors.json --dataset PATH --input DIR \
                     [--loaders N] [--generate FILESxEVENTS --seed S] \
                     [--overlap [--xstreams N]] [--columnar [PAGE_ROWS]]";

fn main() {
    let args = Args::from_env();
    let file = args.require("connect", USAGE);
    let dataset_path = args.require("dataset", USAGE);
    let input = PathBuf::from(args.require("input", USAGE));
    let loaders: usize = args.get_or("loaders", "4").parse().unwrap_or(4);
    if let Some(spec) = args.get("generate") {
        let (files, events) = spec
            .split_once('x')
            .and_then(|(f, e)| Some((f.parse().ok()?, e.parse().ok()?)))
            .unwrap_or_else(|| {
                eprintln!("bad --generate (want FILESxEVENTS, e.g. 16x500)");
                std::process::exit(2);
            });
        let seed: u64 = args.get_or("seed", "1").parse().unwrap_or(1);
        let gen = NovaGenerator::new(seed);
        nova::files::write_dataset(&input, &gen, files, events).unwrap_or_else(|e| {
            eprintln!("generation failed: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "generated {files} files x {events} events under {}",
            input.display()
        );
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&input)
        .unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", input.display());
            std::process::exit(2);
        })
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "hepf"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no .hepf files under {}", input.display());
        std::process::exit(2);
    }
    let store = connect(Path::new(&file));
    let ds = store
        .root()
        .create_dataset(&dataset_path)
        .unwrap_or_else(|e| {
            eprintln!("cannot create dataset: {e}");
            std::process::exit(1);
        });
    let overlap = args.get("overlap").is_some();
    let xstreams: usize = args.get_or("xstreams", "2").parse().unwrap_or(2);
    // `--columnar` alone uses the default page size; `--columnar N` sets it.
    let columnar: Option<u32> = args.get("columnar").map(|v| {
        if v == "true" {
            nova::columnar::DEFAULT_PAGE_ROWS
        } else {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad --columnar (want a page row count)\nusage: {USAGE}");
                std::process::exit(2);
            })
        }
    });
    let t = std::time::Instant::now();
    let stats = if overlap {
        let rt = argos::Runtime::simple(xstreams.max(1));
        let pool = rt.default_pool().expect("runtime pool");
        let result = parallel_ingest_overlapped_with(&store, &ds, &paths, loaders, pool, columnar);
        rt.shutdown();
        result
    } else {
        parallel_ingest_with(&store, &ds, &paths, loaders, columnar)
    }
    .unwrap_or_else(|e| {
        eprintln!("ingest failed: {e}");
        std::process::exit(1);
    });
    let dt = t.elapsed();
    let repr = match columnar {
        Some(rows) => format!(", columnar pages of {rows} rows"),
        None => String::new(),
    };
    println!(
        "ingested {} files / {} events / {} slices into '{dataset_path}' \
         with {loaders} loaders in {dt:.2?} ({:.0} events/s{repr})",
        stats.files,
        stats.events,
        stats.slices,
        stats.events as f64 / dt.as_secs_f64()
    );
    if let Some(b) = stats.batch {
        println!(
            "pipeline: {} pairs acked/{} shipped in {} flush rpcs, \
             inflight hwm {}, {} backpressure stalls ({:.2?} stalled)",
            b.acked_pairs,
            b.shipped_pairs,
            b.acked_rpcs,
            b.inflight_hwm,
            b.backpressure_stalls,
            b.stall_time
        );
        if b.retry.busy_pushbacks > 0 || b.window_shrinks > 0 {
            println!(
                "overload: {} busy pushbacks, window {} shrinks/{} grows \
                 (min {}, final {})",
                b.retry.busy_pushbacks,
                b.window_shrinks,
                b.window_grows,
                b.window_min,
                b.window_final
            );
        }
        if b.retry.failovers > 0 || b.retry.deduped_replays > 0 {
            println!(
                "replication: {} failovers, {} replays suppressed by the dedup window",
                b.retry.failovers, b.retry.deduped_replays
            );
        }
    }
    let r = store.retry_stats();
    if r.failovers > 0 || r.read_fallbacks > 0 {
        println!(
            "replication (store client): {} failovers, {} read fallbacks",
            r.failovers, r.read_fallbacks
        );
    }
    if r.dual_reads > 0 || store.topology_epoch() > 1 {
        println!(
            "migration: {} dual reads (old-owner fallbacks), topology epoch {}",
            r.dual_reads,
            store.topology_epoch()
        );
    }
}
