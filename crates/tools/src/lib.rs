//! Shared plumbing for the `hepnos-*` command-line tools: a tiny argument
//! parser (no external dependency) and descriptor-file helpers.
//!
//! The tools turn this workspace into a deployable system: `hepnos-serve`
//! runs a Bedrock-bootstrapped server as a real process on a TCP socket and
//! writes its connection descriptor to a file; `hepnos-ingest`,
//! `hepnos-ls` and `hepnos-select` are clients that read that file — the
//! same division of roles as the paper's `aprun`-launched server and client
//! programs (§IV-D).

#![warn(missing_docs)]

use bedrock::ConnectionDescriptor;
use hepnos::DataStore;
use mercurio::tcp::TcpEndpoint;
use std::collections::HashMap;
use std::path::Path;

/// Minimal `--key value` / `--flag` argument parser.
#[derive(Debug, Default)]
pub struct Args {
    named: HashMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the program name).
    pub fn from_env() -> Args {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator.
    pub fn parse(items: impl Iterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut items = items.peekable();
        while let Some(item) = items.next() {
            if let Some(key) = item.strip_prefix("--") {
                let value = match items.peek() {
                    Some(v) if !v.starts_with("--") => items.next().expect("peeked"),
                    _ => String::from("true"),
                };
                args.named.insert(key.to_string(), value);
            } else {
                args.positional.push(item);
            }
        }
        args
    }

    /// Named option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.named.get(key).map(|s| s.as_str())
    }

    /// Named option with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required named option; exits with a usage message if absent.
    pub fn require(&self, key: &str, usage: &str) -> String {
        match self.get(key) {
            Some(v) => v.to_string(),
            None => {
                eprintln!("missing required option --{key}\nusage: {usage}");
                std::process::exit(2);
            }
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// Read a deployment descriptor file (JSON array of per-server
/// descriptors, as written by `hepnos-serve`).
pub fn read_descriptors(path: &Path) -> Vec<ConnectionDescriptor> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read descriptor file {}: {e}", path.display());
        std::process::exit(2);
    });
    ConnectionDescriptor::parse_deployment(&text).unwrap_or_else(|e| {
        eprintln!("bad descriptor file {}: {e}", path.display());
        std::process::exit(2);
    })
}

/// Connect a DataStore over TCP using a descriptor file.
///
/// CLI clients retry transient failures — including `Busy` pushback from
/// an admission-controlled service — with a budget deep enough to ride
/// out overload bursts, so shedding degrades throughput instead of
/// failing the run.
pub fn connect(path: &Path) -> DataStore {
    let descriptors = read_descriptors(path);
    let ep = TcpEndpoint::bind(0).unwrap_or_else(|e| {
        eprintln!("cannot bind client socket: {e}");
        std::process::exit(2);
    });
    let retry = hepnos::RetryPolicy {
        max_attempts: 64,
        base_backoff: std::time::Duration::from_millis(1),
        max_backoff: std::time::Duration::from_millis(50),
        ..Default::default()
    };
    DataStore::connect_with_retry(ep, &descriptors, retry).unwrap_or_else(|e| {
        eprintln!("cannot connect: {e}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(|x| x.to_string()))
    }

    #[test]
    fn named_and_positional() {
        let a = parse("--port 9000 input.json --verbose --name demo out");
        assert_eq!(a.get("port"), Some("9000"));
        assert_eq!(a.get("verbose"), Some("true"));
        assert_eq!(a.get("name"), Some("demo"));
        assert_eq!(
            a.positional(),
            &["input.json".to_string(), "out".to_string()]
        );
        assert_eq!(a.get("absent"), None);
        assert_eq!(a.get_or("absent", "d"), "d");
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("--a --b value");
        assert_eq!(a.get("a"), Some("true"));
        assert_eq!(a.get("b"), Some("value"));
    }
}
