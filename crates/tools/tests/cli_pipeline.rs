//! End-to-end multi-process test: the `hepnos-*` binaries run as real OS
//! processes talking over real TCP sockets — the closest this reproduction
//! gets to the paper's separately-launched server and client programs.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

fn workdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("hepnos-cli-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn serve_ingest_ls_select_pipeline() {
    let dir = workdir();
    let descriptor = dir.join("node0.json");
    // 1. Server as a real child process (runs for up to 120 s, killed at
    //    the end of the test).
    let mut server = Command::new(env!("CARGO_BIN_EXE_hepnos-serve"))
        .args([
            "--events",
            "2",
            "--products",
            "2",
            "--descriptor-out",
            descriptor.to_str().unwrap(),
            "--run-seconds",
            "120",
        ])
        .spawn()
        .expect("spawn hepnos-serve");
    // Wait for the descriptor file to appear.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !descriptor.exists() {
        assert!(
            Instant::now() < deadline,
            "server never wrote its descriptor"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // The client tools expect a deployment array; wrap the single node.
    let one = std::fs::read_to_string(&descriptor).unwrap();
    let deployment = dir.join("deployment.json");
    std::fs::write(&deployment, format!("[{one}]")).unwrap();

    // 2. Generate + ingest through the CLI.
    let input = dir.join("files");
    let out = Command::new(env!("CARGO_BIN_EXE_hepnos-ingest"))
        .args([
            "--connect",
            deployment.to_str().unwrap(),
            "--dataset",
            "cli/nova",
            "--input",
            input.to_str().unwrap(),
            "--loaders",
            "2",
            "--generate",
            "4x100",
            "--seed",
            "11",
        ])
        .output()
        .expect("run hepnos-ingest");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "ingest failed: {stdout} {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("ingested 4 files"), "{stdout}");
    // Events with zero slices are not representable in the columnar layout
    // (as in the HDF5 original), so the ingested count may be slightly
    // below 4x100; capture it for the select step's cross-check.
    let ingested_events: u64 = stdout
        .split('/')
        .nth(1)
        .and_then(|seg| seg.trim().split(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("cannot parse event count from: {stdout}"));
    assert!(
        ingested_events > 350 && ingested_events <= 400,
        "{ingested_events}"
    );

    // 3. Inspect with hepnos-ls.
    let out = Command::new(env!("CARGO_BIN_EXE_hepnos-ls"))
        .args(["--connect", deployment.to_str().unwrap(), "cli/nova"])
        .output()
        .expect("run hepnos-ls");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("dataset cli/nova"), "{stdout}");
    assert!(stdout.contains("run      0: 4 subruns"), "{stdout}");

    // 4. Run the selection with hepnos-select.
    let out = Command::new(env!("CARGO_BIN_EXE_hepnos-select"))
        .args([
            "--connect",
            deployment.to_str().unwrap(),
            "--dataset",
            "cli/nova",
            "--workers",
            "2",
            "--load-batch",
            "128",
        ])
        .output()
        .expect("run hepnos-select");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "select failed: {stdout} {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains(&format!("processed {ingested_events} events")),
        "select saw a different event count than ingest reported: {stdout}"
    );
    assert!(stdout.contains("accepted"), "{stdout}");

    server.kill().ok();
    server.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ls_on_empty_deployment() {
    let dir = workdir();
    let descriptor = dir.join("node.json");
    let mut server = Command::new(env!("CARGO_BIN_EXE_hepnos-serve"))
        .args([
            "--events",
            "1",
            "--products",
            "1",
            "--descriptor-out",
            descriptor.to_str().unwrap(),
            "--run-seconds",
            "60",
        ])
        .spawn()
        .expect("spawn hepnos-serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !descriptor.exists() {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(50));
    }
    let one = std::fs::read_to_string(&descriptor).unwrap();
    let deployment = dir.join("deployment.json");
    std::fs::write(&deployment, format!("[{one}]")).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_hepnos-ls"))
        .args(["--connect", deployment.to_str().unwrap()])
        .output()
        .expect("run hepnos-ls");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("(no datasets)"));
    server.kill().ok();
    server.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}
