//! Deterministic fault injection for transports.
//!
//! A [`FaultPlan`] decides, per frame, whether to drop, duplicate, delay or
//! disconnect it — entirely from a `u64` seed. Decisions are a *pure
//! function* of `(seed, direction, rpc id, request id)` through a small
//! xorshift PRNG (no global randomness, no shared mutable generator), so
//! the same seed replayed against the same request sequence produces the
//! same fault schedule regardless of thread interleaving. Every injected
//! fault is recorded in a trace that chaos tests compare across replays.
//!
//! Both transports accept a plan: [`crate::local::Fabric::install_fault_plan`]
//! applies it to every frame crossing the fabric, and
//! [`crate::tcp::TcpEndpoint::install_fault_plan`] to the frames sent and
//! answered by one endpoint.

use crate::wire::RpcId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which way a frame travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrameDirection {
    /// Caller → handler.
    Request,
    /// Handler → caller.
    Response,
}

/// One fault injected by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultAction {
    /// The frame was silently discarded.
    Drop,
    /// The frame was delivered twice.
    Duplicate,
    /// Delivery was delayed by this many microseconds.
    DelayUs(u64),
    /// The connection failed transiently before the frame was sent.
    Disconnect,
}

/// One recorded entry of a plan's fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Direction of the affected frame.
    pub direction: FrameDirection,
    /// RPC id of the affected call.
    pub rpc_id: u16,
    /// Transport request id of the affected call.
    pub req_id: u64,
    /// What was done to the frame.
    pub action: FaultAction,
}

/// Probabilities and knobs of a [`FaultPlan`]. All probabilities are in
/// `[0, 1]`; the default injects nothing.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed deriving every per-frame decision.
    pub seed: u64,
    /// Probability of dropping a request frame.
    pub drop_request: f64,
    /// Probability of dropping a response frame.
    pub drop_response: f64,
    /// Probability of duplicating a request frame.
    pub duplicate_request: f64,
    /// Probability of duplicating a response frame.
    pub duplicate_response: f64,
    /// Probability of delaying a frame (either direction).
    pub delay_probability: f64,
    /// Minimum injected delay.
    pub delay_min: Duration,
    /// Maximum injected delay.
    pub delay_max: Duration,
    /// Probability of a transient disconnect when sending a request (the
    /// call fails immediately with [`crate::RpcError::Transport`]).
    pub disconnect_probability: f64,
    /// Restrict injection to these RPC ids; `None` targets every RPC.
    pub target_rpcs: Option<Vec<u16>>,
}

impl FaultConfig {
    /// A config injecting nothing, with the given seed.
    pub fn new(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_request: 0.0,
            drop_response: 0.0,
            duplicate_request: 0.0,
            duplicate_response: 0.0,
            delay_probability: 0.0,
            delay_min: Duration::ZERO,
            delay_max: Duration::ZERO,
            disconnect_probability: 0.0,
            target_rpcs: None,
        }
    }
}

/// The plan's verdict for one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Discard the frame.
    pub drop: bool,
    /// Deliver the frame twice.
    pub duplicate: bool,
    /// Delay delivery by this much first.
    pub delay: Option<Duration>,
    /// Fail the send with a transient disconnect (requests only).
    pub disconnect: bool,
}

impl FaultDecision {
    /// Whether the frame passes through unharmed.
    pub fn is_benign(&self) -> bool {
        !self.drop && !self.duplicate && self.delay.is_none() && !self.disconnect
    }
}

/// Counters of injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Frames dropped.
    pub dropped: u64,
    /// Frames duplicated.
    pub duplicated: u64,
    /// Frames delayed.
    pub delayed: u64,
    /// Transient disconnects injected.
    pub disconnects: u64,
}

/// xorshift64* PRNG; seeded per frame so decisions are order-independent.
struct XorShift64 {
    state: u64,
}

/// splitmix64 finalizer — spreads structured inputs (ids, seeds) into
/// well-mixed PRNG states.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl XorShift64 {
    fn for_frame(seed: u64, direction: FrameDirection, rpc_id: u16, req_id: u64) -> XorShift64 {
        let dir = match direction {
            FrameDirection::Request => 0x51u64,
            FrameDirection::Response => 0x52u64,
        };
        let state = mix(seed ^ mix(req_id ^ ((rpc_id as u64) << 32) ^ (dir << 56)));
        XorShift64 {
            state: state.max(1), // xorshift dies on an all-zero state
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        // Draw unconditionally so each probability consumes a fixed slot of
        // the per-frame stream, independent of the other knobs' values.
        let draw = self.next_f64();
        p > 0.0 && draw < p
    }
}

/// A seeded, deterministic fault-injection schedule (see module docs).
pub struct FaultPlan {
    cfg: FaultConfig,
    trace: Mutex<Vec<FaultEvent>>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    disconnects: AtomicU64,
}

impl FaultPlan {
    /// Build a plan from its config.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            trace: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decide the fate of one frame. Pure in `(seed, direction, rpc_id,
    /// req_id)` apart from trace/counter recording.
    pub fn decide(&self, direction: FrameDirection, rpc_id: RpcId, req_id: u64) -> FaultDecision {
        if let Some(targets) = &self.cfg.target_rpcs {
            if !targets.contains(&rpc_id.0) {
                return FaultDecision::default();
            }
        }
        let mut rng = XorShift64::for_frame(self.cfg.seed, direction, rpc_id.0, req_id);
        let (drop_p, dup_p) = match direction {
            FrameDirection::Request => (self.cfg.drop_request, self.cfg.duplicate_request),
            FrameDirection::Response => (self.cfg.drop_response, self.cfg.duplicate_response),
        };
        let mut d = FaultDecision::default();
        // Fixed draw order; disconnect applies to requests only and
        // supersedes drop/duplicate (the frame never reaches the wire).
        let disconnect_draw = rng.chance(self.cfg.disconnect_probability);
        let drop_draw = rng.chance(drop_p);
        let dup_draw = rng.chance(dup_p);
        let delay_draw = rng.chance(self.cfg.delay_probability);
        let delay_frac = rng.next_f64();
        if direction == FrameDirection::Request && disconnect_draw {
            d.disconnect = true;
        } else if drop_draw {
            d.drop = true;
        } else if dup_draw {
            d.duplicate = true;
        }
        if delay_draw && !d.disconnect {
            let span = self
                .cfg
                .delay_max
                .saturating_sub(self.cfg.delay_min)
                .as_micros() as u64;
            let extra = (span as f64 * delay_frac) as u64;
            d.delay = Some(self.cfg.delay_min + Duration::from_micros(extra));
        }
        self.record(direction, rpc_id, req_id, &d);
        d
    }

    fn record(&self, direction: FrameDirection, rpc_id: RpcId, req_id: u64, d: &FaultDecision) {
        if d.is_benign() {
            return;
        }
        let mut trace = self.trace.lock();
        let mut push = |action: FaultAction| {
            trace.push(FaultEvent {
                direction,
                rpc_id: rpc_id.0,
                req_id,
                action,
            });
        };
        if d.disconnect {
            self.disconnects.fetch_add(1, Ordering::Relaxed);
            push(FaultAction::Disconnect);
        }
        if d.drop {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            push(FaultAction::Drop);
        }
        if d.duplicate {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            push(FaultAction::Duplicate);
        }
        if let Some(t) = d.delay {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            push(FaultAction::DelayUs(t.as_micros() as u64));
        }
    }

    /// Snapshot of the recorded fault trace. Entries from concurrent frames
    /// may interleave in any order; sort before comparing across replays.
    pub fn trace(&self) -> Vec<FaultEvent> {
        self.trace.lock().clone()
    }

    /// Counters of injected faults.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_cfg(seed: u64) -> FaultConfig {
        FaultConfig {
            drop_request: 0.05,
            drop_response: 0.05,
            duplicate_request: 0.02,
            duplicate_response: 0.02,
            delay_probability: 0.1,
            delay_min: Duration::from_millis(1),
            delay_max: Duration::from_millis(5),
            disconnect_probability: 0.01,
            ..FaultConfig::new(seed)
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(chaos_cfg(42));
        let b = FaultPlan::new(chaos_cfg(42));
        for req_id in 0..5000u64 {
            for dir in [FrameDirection::Request, FrameDirection::Response] {
                assert_eq!(
                    a.decide(dir, RpcId(101), req_id),
                    b.decide(dir, RpcId(101), req_id)
                );
            }
        }
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn decisions_are_order_independent() {
        let a = FaultPlan::new(chaos_cfg(7));
        let b = FaultPlan::new(chaos_cfg(7));
        let forward: Vec<_> = (0..1000u64)
            .map(|i| a.decide(FrameDirection::Request, RpcId(3), i))
            .collect();
        let mut backward: Vec<_> = (0..1000u64)
            .rev()
            .map(|i| b.decide(FrameDirection::Request, RpcId(3), i))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(chaos_cfg(1));
        let b = FaultPlan::new(chaos_cfg(2));
        let same = (0..2000u64).all(|i| {
            a.decide(FrameDirection::Request, RpcId(1), i)
                == b.decide(FrameDirection::Request, RpcId(1), i)
        });
        assert!(!same, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn probabilities_hit_expected_rates() {
        let plan = FaultPlan::new(chaos_cfg(99));
        let n = 20_000u64;
        for i in 0..n {
            plan.decide(FrameDirection::Request, RpcId(1), i);
        }
        let c = plan.counts();
        // 5% ± generous tolerance over 20k draws.
        assert!(c.dropped > n / 40 && c.dropped < n / 10, "{c:?}");
        assert!(c.delayed > n / 25 && c.delayed < n / 5, "{c:?}");
        assert!(c.duplicated > 0 && c.disconnects > 0, "{c:?}");
    }

    #[test]
    fn rpc_targeting_filters() {
        let mut cfg = chaos_cfg(5);
        cfg.target_rpcs = Some(vec![101]);
        let plan = FaultPlan::new(cfg);
        for i in 0..500u64 {
            assert!(plan
                .decide(FrameDirection::Request, RpcId(7), i)
                .is_benign());
        }
        assert!(plan.trace().is_empty());
        let hit = (0..500u64).any(|i| {
            !plan
                .decide(FrameDirection::Request, RpcId(101), i)
                .is_benign()
        });
        assert!(hit, "targeted rpc never faulted");
    }

    #[test]
    fn delays_stay_in_bounds() {
        let mut cfg = FaultConfig::new(11);
        cfg.delay_probability = 1.0;
        cfg.delay_min = Duration::from_millis(10);
        cfg.delay_max = Duration::from_millis(50);
        let plan = FaultPlan::new(cfg);
        for i in 0..1000u64 {
            let d = plan.decide(FrameDirection::Response, RpcId(1), i);
            let t = d.delay.expect("delay probability is 1");
            assert!(t >= Duration::from_millis(10) && t <= Duration::from_millis(50));
        }
    }
}
