//! Network model for the in-process transport.
//!
//! The paper's evaluation ran on Theta's Cray Aries interconnect. Two of its
//! properties matter for the results: message cost (latency + serialization
//! over the link bandwidth — what makes batching worthwhile) and the per-NIC
//! *injection bandwidth*, whose oversaturation crashed runs (§IV-E, footnote
//! 7). [`NetworkModel`] captures both for the [`crate::local`] transport.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Parameters governing simulated message delivery.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Fixed one-way latency added to every message.
    pub latency: Duration,
    /// Link bandwidth in bytes/second used to convert message size into
    /// transfer time. `f64::INFINITY` disables the size-dependent term.
    pub bandwidth: f64,
    /// Per-endpoint NIC injection budget in bytes/second.
    /// `f64::INFINITY` disables injection accounting.
    pub injection_bandwidth: f64,
    /// Sliding window over which injection bandwidth is measured.
    pub injection_window: Duration,
    /// If `true`, a sender that exceeds its injection budget gets
    /// [`crate::RpcError::NetworkSaturated`] instead of being throttled —
    /// the Aries NIC failure mode the paper reports.
    pub fail_on_saturation: bool,
    /// Bound of the per-endpoint outbound frame queue used by the
    /// coalescing sender (non-ideal models only); a full queue blocks the
    /// sender, mirroring the TCP transport's backpressure.
    pub send_queue_frames: usize,
    /// Maximum frames the sender charges to the NIC as one coalesced
    /// burst. `1` degenerates to per-frame injection accounting.
    pub coalesce_frames: usize,
}

impl Default for NetworkModel {
    /// An ideal network: zero latency, infinite bandwidth, no injection
    /// limit. Messages are delivered synchronously.
    fn default() -> Self {
        NetworkModel {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
            injection_bandwidth: f64::INFINITY,
            injection_window: Duration::from_millis(100),
            fail_on_saturation: false,
            send_queue_frames: 256,
            coalesce_frames: 64,
        }
    }
}

impl NetworkModel {
    /// A model loosely shaped like one Aries NIC hop: a few microseconds of
    /// latency and ~10 GB/s of link bandwidth.
    pub fn aries_like() -> Self {
        NetworkModel {
            latency: Duration::from_micros(3),
            bandwidth: 10.0e9,
            injection_bandwidth: 8.0e9,
            injection_window: Duration::from_millis(50),
            fail_on_saturation: false,
            send_queue_frames: 256,
            coalesce_frames: 64,
        }
    }

    /// Whether any delivery delay is configured.
    pub fn is_ideal(&self) -> bool {
        self.latency.is_zero() && self.bandwidth.is_infinite()
    }

    /// One-way transfer time for a message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bandwidth.is_infinite() {
            self.latency
        } else {
            self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
        }
    }
}

/// Sliding-window byte counter implementing the injection-bandwidth budget
/// of one NIC.
pub struct InjectionGauge {
    window: Duration,
    budget_bytes: f64,
    state: Mutex<GaugeState>,
}

struct GaugeState {
    window_start: Instant,
    bytes_in_window: u64,
    total_bytes: u64,
    total_frames: u64,
    bursts: u64,
    saturation_events: u64,
}

impl InjectionGauge {
    /// Create a gauge from the model's injection parameters.
    pub fn new(model: &NetworkModel) -> Self {
        InjectionGauge {
            window: model.injection_window,
            budget_bytes: if model.injection_bandwidth.is_infinite() {
                f64::INFINITY
            } else {
                model.injection_bandwidth * model.injection_window.as_secs_f64()
            },
            state: Mutex::new(GaugeState {
                window_start: Instant::now(),
                bytes_in_window: 0,
                total_bytes: 0,
                total_frames: 0,
                bursts: 0,
                saturation_events: 0,
            }),
        }
    }

    /// Record `bytes` of injected traffic. Returns `false` if this send
    /// pushed the window over budget (the caller decides whether that means
    /// failure or throttling).
    pub fn inject(&self, bytes: usize) -> bool {
        self.inject_burst(1, bytes)
    }

    /// Record a coalesced burst of `frames` frames totalling `bytes`. The
    /// token bucket is charged once for the whole burst — the NIC sees one
    /// injection, not `frames` of them. Returns `false` if the burst pushed
    /// the window over budget.
    pub fn inject_burst(&self, frames: u64, bytes: usize) -> bool {
        let mut st = self.state.lock();
        let now = Instant::now();
        if now.duration_since(st.window_start) >= self.window {
            st.window_start = now;
            st.bytes_in_window = 0;
        }
        st.bytes_in_window += bytes as u64;
        st.total_bytes += bytes as u64;
        st.total_frames += frames;
        st.bursts += 1;
        let ok =
            self.budget_bytes.is_infinite() || (st.bytes_in_window as f64) <= self.budget_bytes;
        if !ok {
            st.saturation_events += 1;
        }
        ok
    }

    /// Total bytes ever injected through this gauge.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().total_bytes
    }

    /// Total frames ever injected (a burst of N frames counts N).
    pub fn total_frames(&self) -> u64 {
        self.state.lock().total_frames
    }

    /// Number of injection charges (a coalesced burst counts once), so
    /// `total_frames / bursts` is the achieved coalescing factor.
    pub fn bursts(&self) -> u64 {
        self.state.lock().bursts
    }

    /// Number of sends that exceeded the budget.
    pub fn saturation_events(&self) -> u64 {
        self.state.lock().saturation_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_ideal() {
        let m = NetworkModel::default();
        assert!(m.is_ideal());
        assert_eq!(m.transfer_time(1 << 20), Duration::ZERO);
    }

    #[test]
    fn transfer_time_includes_bandwidth_term() {
        let m = NetworkModel {
            latency: Duration::from_micros(10),
            bandwidth: 1.0e6, // 1 MB/s
            ..Default::default()
        };
        let t = m.transfer_time(500_000);
        assert!(t >= Duration::from_millis(500));
        assert!(t < Duration::from_millis(501));
    }

    #[test]
    fn gauge_unlimited_never_saturates() {
        let g = InjectionGauge::new(&NetworkModel::default());
        for _ in 0..100 {
            assert!(g.inject(usize::MAX / 200));
        }
        assert_eq!(g.saturation_events(), 0);
    }

    #[test]
    fn gauge_trips_over_budget() {
        let m = NetworkModel {
            injection_bandwidth: 1000.0, // bytes/s
            injection_window: Duration::from_secs(1),
            ..Default::default()
        };
        let g = InjectionGauge::new(&m);
        assert!(g.inject(600));
        assert!(!g.inject(600)); // 1200 > 1000 budget
        assert_eq!(g.saturation_events(), 1);
        assert_eq!(g.total_bytes(), 1200);
    }

    #[test]
    fn burst_charges_bucket_once() {
        let m = NetworkModel {
            injection_bandwidth: 1000.0,
            injection_window: Duration::from_secs(1),
            ..Default::default()
        };
        let g = InjectionGauge::new(&m);
        // Eight 100-byte frames as one burst: within the 1000-byte budget,
        // one charge, no saturation.
        assert!(g.inject_burst(8, 800));
        assert_eq!(g.bursts(), 1);
        assert_eq!(g.total_frames(), 8);
        assert_eq!(g.total_bytes(), 800);
        assert_eq!(g.saturation_events(), 0);
        // A second burst trips the budget exactly once, not per frame.
        assert!(!g.inject_burst(4, 400));
        assert_eq!(g.saturation_events(), 1);
        assert_eq!(g.bursts(), 2);
    }

    #[test]
    fn gauge_window_resets() {
        let m = NetworkModel {
            injection_bandwidth: 1000.0,
            injection_window: Duration::from_millis(20),
            ..Default::default()
        };
        let g = InjectionGauge::new(&m);
        assert!(g.inject(20)); // budget = 20 bytes per 20ms window
        assert!(!g.inject(20));
        std::thread::sleep(Duration::from_millis(25));
        assert!(g.inject(10));
    }

    #[test]
    fn aries_like_has_latency() {
        let m = NetworkModel::aries_like();
        assert!(!m.is_ideal());
        assert!(m.transfer_time(0) >= Duration::from_micros(3));
    }
}
