//! The transport-independent endpoint API.

use crate::bulk::BulkHandle;
use crate::error::RpcError;
use crate::wire::RpcId;
use argos::Eventual;
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

/// An incoming RPC as seen by a handler.
#[derive(Debug, Clone)]
pub struct Request {
    /// Address of the calling endpoint.
    pub source: String,
    /// The RPC id that was invoked.
    pub rpc_id: RpcId,
    /// Provider id the caller targeted (Mochi multiplexes several providers
    /// behind one endpoint).
    pub provider_id: u16,
    /// The inlined payload.
    pub payload: Bytes,
}

/// A registered RPC handler. Closures `Fn(Request) -> Result<Bytes, RpcError>`
/// implement this automatically.
pub trait RpcHandler: Send + Sync {
    /// Handle one request, producing the response payload.
    fn handle(&self, req: Request) -> Result<Bytes, RpcError>;
}

impl<F> RpcHandler for F
where
    F: Fn(Request) -> Result<Bytes, RpcError> + Send + Sync,
{
    fn handle(&self, req: Request) -> Result<Bytes, RpcError> {
        self(req)
    }
}

/// Decides *where* a handler invocation runs.
///
/// The default executor runs handlers inline on the transport's delivery
/// thread (Mercury without Margo). Margo installs an executor that pushes
/// the closure into the argos pool configured for `(rpc_id, provider_id)`.
pub type Executor =
    Arc<dyn Fn(RpcId, u16, Box<dyn FnOnce() + Send + 'static>) + Send + Sync + 'static>;

/// Verdict of an [`AdmissionControl`] check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Execute the request.
    Admit,
    /// Reject the request with [`RpcError::Busy`] carrying `retry_after`;
    /// the handler is never invoked.
    Shed {
        /// Backoff hint returned to the caller.
        retry_after: Duration,
    },
}

/// Per-endpoint overload policy, consulted by the transport for every
/// incoming request (internal bulk pulls are exempt — they serve requests
/// that were already admitted).
///
/// The contract is exactly-once accounting: a request whose [`admit`] returns
/// [`Admission::Admit`] holds one admission slot until [`complete`] is called
/// for it, which the transport guarantees happens exactly once — whether the
/// handler ran, the request was shed at [`begin`], or the response was lost.
/// A request shed at [`admit`] never held a slot and gets no [`complete`].
///
/// [`admit`]: AdmissionControl::admit
/// [`begin`]: AdmissionControl::begin
/// [`complete`]: AdmissionControl::complete
pub trait AdmissionControl: Send + Sync {
    /// Called on the transport's delivery thread *before* the request is
    /// handed to the executor. [`Admission::Shed`] makes the transport
    /// answer [`RpcError::Busy`] immediately, bypassing the execution pools
    /// — the request is rejected, never silently dropped.
    fn admit(&self, rpc_id: RpcId, provider_id: u16) -> Admission;

    /// Called when an admitted request reaches the front of its execution
    /// pool, with the time it spent queued. [`Admission::Shed`] here turns
    /// into a [`RpcError::Busy`] response through the normal reply path
    /// (deadline-aware shedding: a request that waited too long is answered
    /// cheaply instead of doing work whose caller already gave up).
    fn begin(&self, rpc_id: RpcId, provider_id: u16, queued: Duration) -> Admission;

    /// Called exactly once per admitted request after its handler finished
    /// or it was shed at [`AdmissionControl::begin`], releasing the slot.
    fn complete(&self, rpc_id: RpcId, provider_id: u16);
}

/// Scriptable admission controller for the transport shed-path regression
/// tests: records how often each hook fired so tests can pin the
/// exactly-once accounting contract.
#[cfg(test)]
pub(crate) mod testctl {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Default)]
    pub(crate) struct TestAdmission {
        pub(crate) shed_at_admit: bool,
        pub(crate) shed_at_begin: bool,
        pub(crate) admits: AtomicUsize,
        pub(crate) begins: AtomicUsize,
        pub(crate) completes: AtomicUsize,
    }

    impl AdmissionControl for TestAdmission {
        fn admit(&self, _rpc_id: RpcId, _provider_id: u16) -> Admission {
            self.admits.fetch_add(1, Ordering::SeqCst);
            if self.shed_at_admit {
                Admission::Shed {
                    retry_after: Duration::from_millis(7),
                }
            } else {
                Admission::Admit
            }
        }

        fn begin(&self, _rpc_id: RpcId, _provider_id: u16, _queued: Duration) -> Admission {
            self.begins.fetch_add(1, Ordering::SeqCst);
            if self.shed_at_begin {
                Admission::Shed {
                    retry_after: Duration::from_millis(3),
                }
            } else {
                Admission::Admit
            }
        }

        fn complete(&self, _rpc_id: RpcId, _provider_id: u16) {
            self.completes.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// The in-flight result of an asynchronous call.
pub struct PendingResponse {
    pub(crate) ev: Eventual<Result<Bytes, RpcError>>,
    /// Removes the transport's pending-map entry when the caller abandons
    /// the call on timeout, so a deadline never leaks state. A late response
    /// for a cancelled call is dropped by the transport.
    pub(crate) cancel: Option<Box<dyn FnOnce() + Send>>,
}

impl PendingResponse {
    pub(crate) fn with_cancel(
        ev: Eventual<Result<Bytes, RpcError>>,
        cancel: Box<dyn FnOnce() + Send>,
    ) -> Self {
        PendingResponse {
            ev,
            cancel: Some(cancel),
        }
    }

    /// An already-failed response (e.g. the send itself failed).
    pub(crate) fn failed(err: RpcError) -> Self {
        let ev = Eventual::new();
        ev.set(Err(err));
        PendingResponse { ev, cancel: None }
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Result<Bytes, RpcError> {
        self.ev.wait()
    }

    /// Block with a timeout. On timeout the call is cancelled: the
    /// transport's pending entry is removed and [`RpcError::Timeout`] is
    /// returned, so an abandoned call cannot leak.
    pub fn wait_timeout(self, dur: Duration) -> Result<Bytes, RpcError> {
        let PendingResponse { ev, cancel } = self;
        match ev.wait_timeout(dur) {
            Ok(r) => r,
            Err(_) => {
                if let Some(cancel) = cancel {
                    cancel();
                }
                Err(RpcError::Timeout)
            }
        }
    }

    /// Whether the response has arrived.
    pub fn is_ready(&self) -> bool {
        self.ev.is_set()
    }
}

/// Traffic counters for one endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Requests sent by this endpoint.
    pub requests_sent: u64,
    /// Requests received (and dispatched to handlers).
    pub requests_received: u64,
    /// Total bytes sent (headers + payloads + bulk).
    pub bytes_sent: u64,
    /// Total bytes received.
    pub bytes_received: u64,
    /// Bulk bytes pulled *from* this endpoint by remote peers.
    pub bulk_bytes_served: u64,
    /// Frames handed to the send path (requests and responses).
    pub frames_sent: u64,
    /// Physical writes performed by the send path; with coalescing one
    /// write can carry many frames, so `frames_sent / wire_writes` is the
    /// achieved coalescing factor.
    pub wire_writes: u64,
    /// Times a sender blocked because the outbound queue was full
    /// (transport backpressure propagated to the caller).
    pub send_stalls: u64,
}

/// The common endpoint API implemented by [`crate::local::LocalEndpoint`] and
/// [`crate::tcp::TcpEndpoint`].
pub trait Endpoint: Send + Sync {
    /// This endpoint's address, routable by peers on the same transport.
    fn address(&self) -> String;

    /// Register (or replace) the handler for an RPC id.
    fn register(&self, id: RpcId, handler: Arc<dyn RpcHandler>);

    /// Install the executor deciding where handlers run.
    fn set_executor(&self, exec: Executor);

    /// Install (or clear) the admission controller consulted for incoming
    /// requests. Default: no admission control, every request is executed.
    fn set_admission(&self, ctrl: Option<Arc<dyn AdmissionControl>>);

    /// Issue an asynchronous call; the response is delivered through the
    /// returned [`PendingResponse`].
    fn call_async(
        &self,
        target: &str,
        id: RpcId,
        provider_id: u16,
        payload: Bytes,
    ) -> PendingResponse;

    /// Issue a blocking call.
    fn call(
        &self,
        target: &str,
        id: RpcId,
        provider_id: u16,
        payload: Bytes,
    ) -> Result<Bytes, RpcError> {
        self.call_async(target, id, provider_id, payload).wait()
    }

    /// Issue a blocking call with a deadline. Returns [`RpcError::Timeout`]
    /// if no response arrives in time; the abandoned call is cancelled so
    /// no pending entry is leaked.
    fn call_with_deadline(
        &self,
        target: &str,
        id: RpcId,
        provider_id: u16,
        payload: Bytes,
        deadline: Duration,
    ) -> Result<Bytes, RpcError> {
        self.call_async(target, id, provider_id, payload)
            .wait_timeout(deadline)
    }

    /// Expose a read-only memory region for remote bulk pulls; returns a
    /// handle that can be embedded in RPC payloads.
    fn expose_bulk(&self, data: Bytes) -> BulkHandle;

    /// Release a previously exposed bulk region.
    fn release_bulk(&self, handle: &BulkHandle);

    /// Pull `len` bytes at `offset` from a bulk region exposed by `owner`.
    fn bulk_pull(
        &self,
        owner: &str,
        handle: &BulkHandle,
        offset: usize,
        len: usize,
    ) -> Result<Bytes, RpcError>;

    /// Traffic counters.
    fn stats(&self) -> EndpointStats;

    /// Stop serving; in-flight calls fail with [`RpcError::Shutdown`].
    fn shutdown(&self);
}
