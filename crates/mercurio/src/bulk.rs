//! Bulk (RDMA stand-in) regions and handles.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A handle to a read-only memory region exposed by some endpoint, the
/// analogue of a Mercury bulk handle.
///
/// Handles are plain data and are meant to be embedded inside RPC payloads
/// ([`BulkHandle::encode`] / [`BulkHandle::decode`]); the peer then pulls
/// the bytes with [`crate::Endpoint::bulk_pull`], which models an RDMA get.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BulkHandle {
    /// Region id, unique within the owning endpoint.
    pub id: u64,
    /// Region size in bytes.
    pub len: usize,
}

impl BulkHandle {
    /// Encoded size on the wire.
    pub const WIRE_LEN: usize = 8 + 8;

    /// Append this handle to a buffer.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.id);
        buf.put_u64_le(self.len as u64);
    }

    /// Encode to a standalone buffer.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_LEN);
        self.encode_into(&mut b);
        b.freeze()
    }

    /// Decode from the front of `buf`, advancing it.
    pub fn decode_from(buf: &mut Bytes) -> Option<BulkHandle> {
        if buf.remaining() < Self::WIRE_LEN {
            return None;
        }
        let id = buf.get_u64_le();
        let len = buf.get_u64_le() as usize;
        Some(BulkHandle { id, len })
    }

    /// Decode from an exact buffer.
    pub fn decode(mut buf: Bytes) -> Option<BulkHandle> {
        Self::decode_from(&mut buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = BulkHandle {
            id: 99,
            len: 1 << 20,
        };
        assert_eq!(BulkHandle::decode(h.encode()), Some(h));
    }

    #[test]
    fn decode_short_buffer_is_none() {
        assert_eq!(BulkHandle::decode(Bytes::from_static(b"123")), None);
    }

    #[test]
    fn decode_from_advances() {
        let a = BulkHandle { id: 1, len: 2 };
        let b = BulkHandle { id: 3, len: 4 };
        let mut buf = BytesMut::new();
        a.encode_into(&mut buf);
        b.encode_into(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(BulkHandle::decode_from(&mut bytes), Some(a));
        assert_eq!(BulkHandle::decode_from(&mut bytes), Some(b));
        assert_eq!(BulkHandle::decode_from(&mut bytes), None);
    }
}
