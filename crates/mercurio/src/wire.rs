//! Wire framing shared by all transports.
//!
//! Every message is a [`Frame`]: either a request (`req_id`, `rpc_id`,
//! `provider_id`, payload) or a response (`req_id`, status, payload). The
//! encoding is a fixed little-endian header followed by the payload; the TCP
//! transport additionally length-prefixes each frame.

use crate::error::RpcError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Identifier of a registered RPC (Mercury registers RPCs by name and hashes
/// them to an id; we use explicit ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpcId(pub u16);

/// RPC id reserved for internal bulk pulls.
pub(crate) const RPC_BULK_PULL: RpcId = RpcId(u16::MAX);

const TAG_REQUEST: u8 = 1;
const TAG_RESPONSE_OK: u8 = 2;
const TAG_RESPONSE_ERR: u8 = 3;

/// A decoded wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Frame {
    Request {
        req_id: u64,
        rpc_id: RpcId,
        provider_id: u16,
        payload: Bytes,
    },
    Response {
        req_id: u64,
        result: Result<Bytes, (u8, String)>,
    },
}

impl Frame {
    /// Total encoded size in bytes (used by the network model for bandwidth
    /// accounting).
    pub(crate) fn encoded_len(&self) -> usize {
        match self {
            Frame::Request { payload, .. } => 1 + 8 + 2 + 2 + 4 + payload.len(),
            Frame::Response { result, .. } => match result {
                Ok(p) => 1 + 8 + 4 + p.len(),
                Err((_, detail)) => 1 + 8 + 1 + 4 + detail.len(),
            },
        }
    }

    pub(crate) fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        match self {
            Frame::Request {
                req_id,
                rpc_id,
                provider_id,
                payload,
            } => {
                buf.put_u8(TAG_REQUEST);
                buf.put_u64_le(*req_id);
                buf.put_u16_le(rpc_id.0);
                buf.put_u16_le(*provider_id);
                buf.put_u32_le(payload.len() as u32);
                buf.put_slice(payload);
            }
            Frame::Response { req_id, result } => match result {
                Ok(payload) => {
                    buf.put_u8(TAG_RESPONSE_OK);
                    buf.put_u64_le(*req_id);
                    buf.put_u32_le(payload.len() as u32);
                    buf.put_slice(payload);
                }
                Err((code, detail)) => {
                    buf.put_u8(TAG_RESPONSE_ERR);
                    buf.put_u64_le(*req_id);
                    buf.put_u8(*code);
                    buf.put_u32_le(detail.len() as u32);
                    buf.put_slice(detail.as_bytes());
                }
            },
        }
        buf.freeze()
    }

    pub(crate) fn decode(mut buf: Bytes) -> Result<Frame, RpcError> {
        let fail = |m: &str| RpcError::Protocol(m.to_string());
        if buf.remaining() < 1 {
            return Err(fail("empty frame"));
        }
        let tag = buf.get_u8();
        match tag {
            TAG_REQUEST => {
                if buf.remaining() < 8 + 2 + 2 + 4 {
                    return Err(fail("short request header"));
                }
                let req_id = buf.get_u64_le();
                let rpc_id = RpcId(buf.get_u16_le());
                let provider_id = buf.get_u16_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(fail("truncated request payload"));
                }
                Ok(Frame::Request {
                    req_id,
                    rpc_id,
                    provider_id,
                    payload: buf.split_to(len),
                })
            }
            TAG_RESPONSE_OK => {
                if buf.remaining() < 8 + 4 {
                    return Err(fail("short response header"));
                }
                let req_id = buf.get_u64_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(fail("truncated response payload"));
                }
                Ok(Frame::Response {
                    req_id,
                    result: Ok(buf.split_to(len)),
                })
            }
            TAG_RESPONSE_ERR => {
                if buf.remaining() < 8 + 1 + 4 {
                    return Err(fail("short error header"));
                }
                let req_id = buf.get_u64_le();
                let code = buf.get_u8();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(fail("truncated error detail"));
                }
                let detail = String::from_utf8_lossy(&buf.split_to(len)).into_owned();
                Ok(Frame::Response {
                    req_id,
                    result: Err((code, detail)),
                })
            }
            other => Err(fail(&format!("unknown frame tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let f = Frame::Request {
            req_id: 77,
            rpc_id: RpcId(3),
            provider_id: 12,
            payload: Bytes::from_static(b"hello"),
        };
        let enc = f.encode();
        assert_eq!(enc.len(), f.encoded_len());
        assert_eq!(Frame::decode(enc).unwrap(), f);
    }

    #[test]
    fn response_ok_round_trip() {
        let f = Frame::Response {
            req_id: 1,
            result: Ok(Bytes::from_static(b"data")),
        };
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn response_err_round_trip() {
        let f = Frame::Response {
            req_id: 9,
            result: Err((3, "kaboom".to_string())),
        };
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn empty_payload_round_trip() {
        let f = Frame::Request {
            req_id: 0,
            rpc_id: RpcId(0),
            provider_id: 0,
            payload: Bytes::new(),
        };
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Frame::decode(Bytes::from_static(b"")).is_err());
        assert!(Frame::decode(Bytes::from_static(b"\x09rest")).is_err());
        assert!(Frame::decode(Bytes::from_static(b"\x01\x01")).is_err());
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let f = Frame::Request {
            req_id: 5,
            rpc_id: RpcId(1),
            provider_id: 0,
            payload: Bytes::from_static(b"0123456789"),
        };
        let enc = f.encode();
        let cut = enc.slice(0..enc.len() - 3);
        assert!(Frame::decode(cut).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoding arbitrary bytes never panics — it returns a frame or a
        /// protocol error.
        #[test]
        fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Frame::decode(Bytes::from(data));
        }

        /// Any request round-trips exactly, and encoded_len is accurate.
        #[test]
        fn request_round_trips(
            req_id in any::<u64>(),
            rpc in any::<u16>(),
            provider in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let f = Frame::Request {
                req_id,
                rpc_id: RpcId(rpc),
                provider_id: provider,
                payload: Bytes::from(payload),
            };
            let enc = f.encode();
            prop_assert_eq!(enc.len(), f.encoded_len());
            prop_assert_eq!(Frame::decode(enc).unwrap(), f);
        }

        /// Any response (ok or error) round-trips exactly.
        #[test]
        fn response_round_trips(
            req_id in any::<u64>(),
            ok in any::<bool>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            code in any::<u8>(),
            detail in ".{0,64}",
        ) {
            let f = if ok {
                Frame::Response { req_id, result: Ok(Bytes::from(payload)) }
            } else {
                Frame::Response { req_id, result: Err((code, detail)) }
            };
            let enc = f.encode();
            prop_assert_eq!(enc.len(), f.encoded_len());
            prop_assert_eq!(Frame::decode(enc).unwrap(), f);
        }

        /// Truncating an encoded frame always errors, never mis-decodes.
        #[test]
        fn truncation_always_errors(
            payload in proptest::collection::vec(any::<u8>(), 1..128),
            cut in 1usize..16,
        ) {
            let f = Frame::Request {
                req_id: 1,
                rpc_id: RpcId(2),
                provider_id: 3,
                payload: Bytes::from(payload),
            };
            let enc = f.encode();
            if enc.len() > cut {
                prop_assert!(Frame::decode(enc.slice(..enc.len() - cut)).is_err());
            }
        }
    }
}
