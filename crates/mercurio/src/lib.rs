//! `mercurio` — an RPC and bulk-transfer framework modeled after [Mercury].
//!
//! Mercury provides the communication layer of the Mochi stack: registered
//! RPCs addressed by id, small payloads inlined in the RPC message, and
//! *bulk* handles through which large payloads are pulled over RDMA. HEPnOS
//! (via Yokan) uses RPCs for single small objects and bulk transfers for
//! large objects and batches.
//!
//! This crate rebuilds that layer in safe Rust (the paper's stack has no Rust
//! bindings):
//!
//! * [`Endpoint`] — the common API: register handlers, issue blocking or
//!   asynchronous calls, expose and pull bulk regions.
//! * [`local`] — an in-process transport routed through a shared
//!   [`local::Fabric`], governed by a configurable [`NetworkModel`]
//!   (per-message latency, serialization bandwidth, and a per-NIC *injection
//!   bandwidth* token bucket that can be configured to fail when
//!   oversaturated — reproducing the Cray Aries NIC failure mode reported in
//!   the paper's evaluation §IV-E).
//! * [`tcp`] — a real TCP transport (length-prefixed frames) for
//!   multi-process deployments.
//!
//! Handlers run wherever the installed [`Executor`] puts them; Margo installs
//! an executor that pushes each request into the argos pool of the target
//! provider, reproducing Mochi's decoupling of RPC execution resources from
//! the data resources the RPC touches.
//!
//! [Mercury]: https://mercury-hpc.github.io
//!
//! # Example
//!
//! ```
//! use mercurio::{local::Fabric, Endpoint, RpcId};
//! use bytes::Bytes;
//!
//! let fabric = Fabric::new(Default::default());
//! let server = fabric.endpoint("server");
//! let client = fabric.endpoint("client");
//! server.register(RpcId(7), std::sync::Arc::new(|req: mercurio::Request| {
//!     let n = u64::from_le_bytes(req.payload[..8].try_into().unwrap());
//!     Ok(bytes::Bytes::copy_from_slice(&(n * 2).to_le_bytes()))
//! }));
//! let reply = client
//!     .call(&server.address(), RpcId(7), 0, bytes::Bytes::copy_from_slice(&21u64.to_le_bytes()))
//!     .unwrap();
//! assert_eq!(u64::from_le_bytes(reply[..8].try_into().unwrap()), 42);
//! ```

#![warn(missing_docs)]

mod bulk;
mod endpoint;
mod error;
pub mod fault;
pub mod local;
mod model;
pub mod tcp;
mod wire;

pub use bulk::BulkHandle;
pub use endpoint::{
    Admission, AdmissionControl, Endpoint, EndpointStats, Executor, PendingResponse, Request,
    RpcHandler,
};
pub use error::RpcError;
pub use fault::{FaultAction, FaultConfig, FaultDecision, FaultEvent, FaultPlan, FrameDirection};
pub use model::{InjectionGauge, NetworkModel};
pub use wire::RpcId;
