//! RPC error type.

use std::fmt;

/// Errors surfaced by RPC calls and bulk transfers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The target address is not registered on the fabric / reachable.
    NoSuchEndpoint(String),
    /// The target endpoint has no handler for the requested RPC id.
    NoSuchRpc(u16),
    /// The handler ran and returned an application-level error.
    Handler(String),
    /// The call did not complete within the configured timeout.
    Timeout,
    /// The sending NIC exceeded its injection bandwidth budget and the
    /// network model is configured to fail on saturation (the Aries failure
    /// mode from the paper's evaluation).
    NetworkSaturated,
    /// The referenced bulk region does not exist (or was released).
    NoSuchBulk(u64),
    /// Requested byte range exceeds the bulk region.
    BulkOutOfRange {
        /// Offset requested.
        offset: usize,
        /// Length requested.
        len: usize,
        /// Actual region size.
        size: usize,
    },
    /// Transport-level failure (connection refused, reset, framing error...).
    Transport(String),
    /// A message could not be encoded or decoded.
    Protocol(String),
    /// The endpoint is shutting down.
    Shutdown,
    /// The service is overloaded and shed the request before executing it
    /// (admission queue full, deadline already passed, or a backend hard
    /// watermark tripped). The request was *not* applied; the caller should
    /// back off for at least `retry_after` and try again.
    Busy {
        /// Server-suggested minimum backoff before retrying.
        retry_after: std::time::Duration,
    },
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::NoSuchEndpoint(a) => write!(f, "no such endpoint: {a}"),
            RpcError::NoSuchRpc(id) => write!(f, "no handler registered for rpc id {id}"),
            RpcError::Handler(msg) => write!(f, "handler error: {msg}"),
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::NetworkSaturated => write!(f, "NIC injection bandwidth saturated"),
            RpcError::NoSuchBulk(id) => write!(f, "no such bulk region: {id}"),
            RpcError::BulkOutOfRange { offset, len, size } => write!(
                f,
                "bulk range {offset}..{} out of bounds for region of {size} bytes",
                offset + len
            ),
            RpcError::Transport(msg) => write!(f, "transport error: {msg}"),
            RpcError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            RpcError::Shutdown => write!(f, "endpoint is shut down"),
            RpcError::Busy { retry_after } => write!(
                f,
                "service overloaded, retry after {}ms",
                retry_after.as_millis()
            ),
        }
    }
}

impl std::error::Error for RpcError {}

/// Compact status codes used on the wire to carry errors back to callers.
impl RpcError {
    pub(crate) fn to_wire(&self) -> (u8, String) {
        match self {
            RpcError::NoSuchEndpoint(a) => (1, a.clone()),
            RpcError::NoSuchRpc(id) => (2, id.to_string()),
            RpcError::Handler(m) => (3, m.clone()),
            RpcError::Timeout => (4, String::new()),
            RpcError::NetworkSaturated => (5, String::new()),
            RpcError::NoSuchBulk(id) => (6, id.to_string()),
            RpcError::BulkOutOfRange { offset, len, size } => (7, format!("{offset}:{len}:{size}")),
            RpcError::Transport(m) => (8, m.clone()),
            RpcError::Protocol(m) => (9, m.clone()),
            RpcError::Shutdown => (10, String::new()),
            RpcError::Busy { retry_after } => (11, retry_after.as_millis().to_string()),
        }
    }

    pub(crate) fn from_wire(code: u8, detail: &str) -> RpcError {
        match code {
            1 => RpcError::NoSuchEndpoint(detail.to_string()),
            2 => RpcError::NoSuchRpc(detail.parse().unwrap_or(0)),
            3 => RpcError::Handler(detail.to_string()),
            4 => RpcError::Timeout,
            5 => RpcError::NetworkSaturated,
            6 => RpcError::NoSuchBulk(detail.parse().unwrap_or(0)),
            7 => {
                let mut it = detail.splitn(3, ':').map(|s| s.parse().unwrap_or(0));
                RpcError::BulkOutOfRange {
                    offset: it.next().unwrap_or(0),
                    len: it.next().unwrap_or(0),
                    size: it.next().unwrap_or(0),
                }
            }
            8 => RpcError::Transport(detail.to_string()),
            10 => RpcError::Shutdown,
            11 => RpcError::Busy {
                retry_after: std::time::Duration::from_millis(detail.parse().unwrap_or(0)),
            },
            _ => RpcError::Protocol(detail.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let cases = vec![
            RpcError::NoSuchEndpoint("x".into()),
            RpcError::NoSuchRpc(9),
            RpcError::Handler("boom".into()),
            RpcError::Timeout,
            RpcError::NetworkSaturated,
            RpcError::NoSuchBulk(42),
            RpcError::BulkOutOfRange {
                offset: 1,
                len: 2,
                size: 3,
            },
            RpcError::Transport("reset".into()),
            RpcError::Protocol("bad frame".into()),
            RpcError::Shutdown,
            RpcError::Busy {
                retry_after: std::time::Duration::from_millis(25),
            },
        ];
        for e in cases {
            let (code, detail) = e.to_wire();
            assert_eq!(RpcError::from_wire(code, &detail), e);
        }
    }

    #[test]
    fn display_is_informative() {
        let s = RpcError::BulkOutOfRange {
            offset: 10,
            len: 5,
            size: 12,
        }
        .to_string();
        assert!(s.contains("10..15"));
        assert!(s.contains("12 bytes"));
    }
}
