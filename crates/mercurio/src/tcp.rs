//! TCP transport: real sockets with length-prefixed frames.
//!
//! Used for multi-process deployments (the paper runs servers and clients as
//! separate `aprun`-launched MPI programs; our analogue is separate OS
//! processes connected over TCP). Each endpoint owns a listener; connections
//! are established lazily, carry a one-frame handshake announcing the
//! dialer's canonical address, and are then used bidirectionally.
//!
//! Bulk transfers are implemented with an internal RPC
//! (`RPC_BULK_PULL`, a reserved id) that streams the requested range back —
//! the closest TCP analogue of an RDMA get.

use crate::bulk::BulkHandle;
use crate::endpoint::{Endpoint, EndpointStats, Executor, PendingResponse, Request, RpcHandler};
use crate::error::RpcError;
use crate::wire::{Frame, RpcId, RPC_BULK_PULL};
use argos::Eventual;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Address scheme prefix for the TCP transport.
pub const SCHEME: &str = "tcp://";

fn write_frame(stream: &mut TcpStream, frame: &Bytes) -> std::io::Result<()> {
    let mut hdr = [0u8; 4];
    hdr.copy_from_slice(&(frame.len() as u32).to_le_bytes());
    stream.write_all(&hdr)?;
    stream.write_all(frame)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Bytes> {
    let mut hdr = [0u8; 4];
    stream.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr) as usize;
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(Bytes::from(buf))
}

struct Conn {
    writer: Mutex<TcpStream>,
}

impl Conn {
    fn send(&self, frame: &Bytes) -> Result<(), RpcError> {
        write_frame(&mut self.writer.lock(), frame).map_err(|e| RpcError::Transport(e.to_string()))
    }
}

#[derive(Default)]
struct Counters {
    requests_sent: AtomicU64,
    requests_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    bulk_bytes_served: AtomicU64,
}

struct TcpInner {
    addr: String,
    handlers: RwLock<HashMap<RpcId, Arc<dyn RpcHandler>>>,
    executor: RwLock<Executor>,
    pending: Mutex<HashMap<u64, Eventual<Result<Bytes, RpcError>>>>,
    conns: Mutex<HashMap<String, Arc<Conn>>>,
    next_req: AtomicU64,
    next_bulk: AtomicU64,
    bulks: RwLock<HashMap<u64, Bytes>>,
    counters: Counters,
    down: AtomicBool,
}

/// A TCP endpoint: a listener plus a lazily-populated connection pool.
pub struct TcpEndpoint {
    inner: Arc<TcpInner>,
    listener_port: u16,
}

impl TcpEndpoint {
    /// Bind to `127.0.0.1:port` (`port` 0 picks a free port) and start the
    /// accept loop.
    pub fn bind(port: u16) -> std::io::Result<Arc<TcpEndpoint>> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let actual = listener.local_addr()?.port();
        let addr = format!("{SCHEME}127.0.0.1:{actual}");
        let inner = Arc::new(TcpInner {
            addr,
            handlers: RwLock::new(HashMap::new()),
            executor: RwLock::new(Arc::new(|_, _, f: Box<dyn FnOnce() + Send>| f())),
            pending: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_req: AtomicU64::new(1),
            next_bulk: AtomicU64::new(1),
            bulks: RwLock::new(HashMap::new()),
            counters: Counters::default(),
            down: AtomicBool::new(false),
        });
        let ep = Arc::new(TcpEndpoint {
            inner: Arc::clone(&inner),
            listener_port: actual,
        });
        ep.register_bulk_handler();
        let accept_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name(format!("mercurio-accept-{actual}"))
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("failed to spawn accept thread");
        Ok(ep)
    }

    /// The local listener port.
    pub fn port(&self) -> u16 {
        self.listener_port
    }

    fn register_bulk_handler(&self) {
        let inner = Arc::clone(&self.inner);
        self.inner.handlers.write().insert(
            RPC_BULK_PULL,
            Arc::new(move |req: Request| {
                let mut p = req.payload;
                if p.remaining() < 24 {
                    return Err(RpcError::Protocol("short bulk-pull request".into()));
                }
                let id = p.get_u64_le();
                let offset = p.get_u64_le() as usize;
                let len = p.get_u64_le() as usize;
                let region = inner
                    .bulks
                    .read()
                    .get(&id)
                    .cloned()
                    .ok_or(RpcError::NoSuchBulk(id))?;
                if offset.checked_add(len).is_none_or(|end| end > region.len()) {
                    return Err(RpcError::BulkOutOfRange {
                        offset,
                        len,
                        size: region.len(),
                    });
                }
                inner
                    .counters
                    .bulk_bytes_served
                    .fetch_add(len as u64, Ordering::Relaxed);
                Ok(region.slice(offset..offset + len))
            }),
        );
    }

    fn connect(&self, target: &str) -> Result<Arc<Conn>, RpcError> {
        if let Some(c) = self.inner.conns.lock().get(target) {
            return Ok(Arc::clone(c));
        }
        let hostport = target
            .strip_prefix(SCHEME)
            .ok_or_else(|| RpcError::NoSuchEndpoint(target.to_string()))?;
        let stream = TcpStream::connect(hostport)
            .map_err(|e| RpcError::NoSuchEndpoint(format!("{target}: {e}")))?;
        stream.set_nodelay(true).ok();
        let mut write_half = stream
            .try_clone()
            .map_err(|e| RpcError::Transport(e.to_string()))?;
        // Handshake: announce our canonical address so the peer can route
        // responses and future requests back.
        let mut hello = BytesMut::new();
        hello.put_slice(self.inner.addr.as_bytes());
        write_frame(&mut write_half, &hello.freeze())
            .map_err(|e| RpcError::Transport(e.to_string()))?;
        let conn = Arc::new(Conn {
            writer: Mutex::new(write_half),
        });
        self.inner
            .conns
            .lock()
            .insert(target.to_string(), Arc::clone(&conn));
        let inner = Arc::clone(&self.inner);
        let peer = target.to_string();
        let conn2 = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("mercurio-tcp-rx".into())
            .spawn(move || reader_loop(stream, inner, peer, conn2))
            .expect("failed to spawn reader thread");
        Ok(conn)
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<TcpInner>) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => return,
        };
        if inner.down.load(Ordering::Acquire) {
            return;
        }
        stream.set_nodelay(true).ok();
        // Read the handshake to learn the peer's canonical address.
        let peer_addr = match read_frame(&mut stream) {
            Ok(f) => String::from_utf8_lossy(&f).into_owned(),
            Err(_) => continue,
        };
        let write_half = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let conn = Arc::new(Conn {
            writer: Mutex::new(write_half),
        });
        inner
            .conns
            .lock()
            .insert(peer_addr.clone(), Arc::clone(&conn));
        let inner2 = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("mercurio-tcp-rx".into())
            .spawn(move || reader_loop(stream, inner2, peer_addr, conn))
            .expect("failed to spawn reader thread");
    }
}

fn reader_loop(mut stream: TcpStream, inner: Arc<TcpInner>, peer: String, conn: Arc<Conn>) {
    while let Ok(raw) = read_frame(&mut stream) {
        inner
            .counters
            .bytes_received
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        let frame = match Frame::decode(raw) {
            Ok(f) => f,
            Err(_) => break,
        };
        match frame {
            Frame::Request {
                req_id,
                rpc_id,
                provider_id,
                payload,
            } => {
                inner
                    .counters
                    .requests_received
                    .fetch_add(1, Ordering::Relaxed);
                let handler = inner.handlers.read().get(&rpc_id).cloned();
                let exec = inner.executor.read().clone();
                let conn = Arc::clone(&conn);
                let inner2 = Arc::clone(&inner);
                let peer2 = peer.clone();
                exec(
                    rpc_id,
                    provider_id,
                    Box::new(move || {
                        let result = match handler {
                            None => Err(RpcError::NoSuchRpc(rpc_id.0)),
                            Some(h) => h.handle(Request {
                                source: peer2,
                                rpc_id,
                                provider_id,
                                payload,
                            }),
                        };
                        let resp = Frame::Response {
                            req_id,
                            result: result.map_err(|e| e.to_wire()),
                        }
                        .encode();
                        inner2
                            .counters
                            .bytes_sent
                            .fetch_add(resp.len() as u64, Ordering::Relaxed);
                        let _ = conn.send(&resp);
                    }),
                );
            }
            Frame::Response { req_id, result } => {
                if let Some(ev) = inner.pending.lock().remove(&req_id) {
                    ev.set(result.map_err(|(c, d)| RpcError::from_wire(c, &d)));
                }
            }
        }
    }
    // Connection lost: drop it from the pool so a future call re-dials.
    inner.conns.lock().remove(&peer);
}

impl Endpoint for TcpEndpoint {
    fn address(&self) -> String {
        self.inner.addr.clone()
    }

    fn register(&self, id: RpcId, handler: Arc<dyn RpcHandler>) {
        assert!(
            id != RPC_BULK_PULL,
            "rpc id {} is reserved",
            RPC_BULK_PULL.0
        );
        self.inner.handlers.write().insert(id, handler);
    }

    fn set_executor(&self, exec: Executor) {
        *self.inner.executor.write() = exec;
    }

    fn call_async(
        &self,
        target: &str,
        id: RpcId,
        provider_id: u16,
        payload: Bytes,
    ) -> PendingResponse {
        if self.inner.down.load(Ordering::Acquire) {
            return PendingResponse::failed(RpcError::Shutdown);
        }
        let conn = match self.connect(target) {
            Ok(c) => c,
            Err(e) => return PendingResponse::failed(e),
        };
        let req_id = self.inner.next_req.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Request {
            req_id,
            rpc_id: id,
            provider_id,
            payload,
        }
        .encode();
        let ev = Eventual::new();
        self.inner.pending.lock().insert(req_id, ev.clone());
        self.inner
            .counters
            .requests_sent
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_sent
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        if let Err(e) = conn.send(&frame) {
            self.inner.pending.lock().remove(&req_id);
            return PendingResponse::failed(e);
        }
        PendingResponse::new(ev)
    }

    fn expose_bulk(&self, data: Bytes) -> BulkHandle {
        let id = self.inner.next_bulk.fetch_add(1, Ordering::Relaxed);
        let len = data.len();
        self.inner.bulks.write().insert(id, data);
        BulkHandle { id, len }
    }

    fn release_bulk(&self, handle: &BulkHandle) {
        self.inner.bulks.write().remove(&handle.id);
    }

    fn bulk_pull(
        &self,
        owner: &str,
        handle: &BulkHandle,
        offset: usize,
        len: usize,
    ) -> Result<Bytes, RpcError> {
        if owner == self.inner.addr {
            // Local fast path: pulling from ourselves needs no socket.
            let region = self
                .inner
                .bulks
                .read()
                .get(&handle.id)
                .cloned()
                .ok_or(RpcError::NoSuchBulk(handle.id))?;
            if offset.checked_add(len).is_none_or(|end| end > region.len()) {
                return Err(RpcError::BulkOutOfRange {
                    offset,
                    len,
                    size: region.len(),
                });
            }
            return Ok(region.slice(offset..offset + len));
        }
        let mut payload = BytesMut::with_capacity(24);
        payload.put_u64_le(handle.id);
        payload.put_u64_le(offset as u64);
        payload.put_u64_le(len as u64);
        self.call(owner, RPC_BULK_PULL, 0, payload.freeze())
    }

    fn stats(&self) -> EndpointStats {
        let c = &self.inner.counters;
        EndpointStats {
            requests_sent: c.requests_sent.load(Ordering::Relaxed),
            requests_received: c.requests_received.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            bytes_received: c.bytes_received.load(Ordering::Relaxed),
            bulk_bytes_served: c.bulk_bytes_served.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        self.inner.down.store(true, Ordering::Release);
        // Unblock the accept loop by dialing ourselves once.
        let _ = TcpStream::connect(("127.0.0.1", self.listener_port));
        let mut conns = self.inner.conns.lock();
        for (_, conn) in conns.drain() {
            let _ = conn.writer.lock().shutdown(std::net::Shutdown::Both);
        }
        drop(conns);
        let mut pending = self.inner.pending.lock();
        for (_, ev) in pending.drain() {
            ev.set(Err(RpcError::Shutdown));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo() -> Arc<dyn RpcHandler> {
        Arc::new(|req: Request| Ok(req.payload))
    }

    #[test]
    fn call_over_tcp() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        let out = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"over tcp"))
            .unwrap();
        assert_eq!(&out[..], b"over tcp");
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn large_payload_round_trip() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        let big: Vec<u8> = (0..1_000_000u32).map(|i| i as u8).collect();
        let out = c
            .call(&s.address(), RpcId(1), 0, Bytes::from(big.clone()))
            .unwrap();
        assert_eq!(&out[..], &big[..]);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn error_propagates_over_tcp() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(
            RpcId(2),
            Arc::new(|_req: Request| Err(RpcError::Handler("remote boom".into()))),
        );
        let err = c.call(&s.address(), RpcId(2), 0, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Handler("remote boom".into()));
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn unknown_rpc_over_tcp() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        let err = c.call(&s.address(), RpcId(9), 0, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::NoSuchRpc(9));
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn bulk_pull_over_tcp() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        let h = s.expose_bulk(Bytes::from_static(b"abcdefgh"));
        let out = c.bulk_pull(&s.address(), &h, 2, 3).unwrap();
        assert_eq!(&out[..], b"cde");
        assert_eq!(s.stats().bulk_bytes_served, 3);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn connection_reuse_and_concurrency() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        let addr = s.address();
        let pending: Vec<_> = (0..50u8)
            .map(|i| c.call_async(&addr, RpcId(1), 0, Bytes::copy_from_slice(&[i])))
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap()[0] as usize, i);
        }
        assert_eq!(s.stats().requests_received, 50);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn dead_endpoint_is_unreachable() {
        let s = TcpEndpoint::bind(0).unwrap();
        let addr = s.address();
        s.shutdown();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let c = TcpEndpoint::bind(0).unwrap();
        // Either the connect fails outright, or a pending call dies with the
        // connection; both surface as an error rather than a hang.
        let res = c
            .call_async(&addr, RpcId(1), 0, Bytes::new())
            .wait_timeout(std::time::Duration::from_secs(2));
        assert!(res.is_err());
        c.shutdown();
    }
}
