//! TCP transport: real sockets with length-prefixed frames.
//!
//! Used for multi-process deployments (the paper runs servers and clients as
//! separate `aprun`-launched MPI programs; our analogue is separate OS
//! processes connected over TCP). Each endpoint owns a listener; connections
//! are established lazily, carry a one-frame handshake announcing the
//! dialer's canonical address, and are then used bidirectionally.
//!
//! Sending is pipelined: every connection owns a writer thread draining a
//! bounded outbound queue. All frames queued at drain time are coalesced
//! into one buffered write (one syscall for N frames), which is what lets
//! many concurrent ingest writers share a connection without serializing on
//! per-frame `write`/`flush` pairs. A full queue blocks the sender — that
//! transport backpressure is counted in [`EndpointStats::send_stalls`].
//!
//! Bulk transfers are implemented with an internal RPC
//! (`RPC_BULK_PULL`, a reserved id) that streams the requested range back —
//! the closest TCP analogue of an RDMA get.

use crate::bulk::BulkHandle;
use crate::endpoint::{
    Admission, AdmissionControl, Endpoint, EndpointStats, Executor, PendingResponse, Request,
    RpcHandler,
};
use crate::error::RpcError;
use crate::fault::{FaultDecision, FaultPlan, FrameDirection};
use crate::wire::{Frame, RpcId, RPC_BULK_PULL};
use argos::Eventual;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Address scheme prefix for the TCP transport.
pub const SCHEME: &str = "tcp://";

/// Tuning knobs for the outbound send path of a [`TcpEndpoint`].
#[derive(Debug, Clone)]
pub struct TcpSendConfig {
    /// Maximum number of frames coalesced into one physical write.
    /// `1` degenerates to one write+flush per frame (the pre-pipelining
    /// behaviour, kept selectable for benchmarking).
    pub max_coalesce_frames: usize,
    /// Bound of the per-connection outbound queue; a sender hitting a full
    /// queue blocks until the writer thread drains it.
    pub max_queued_frames: usize,
}

impl Default for TcpSendConfig {
    fn default() -> Self {
        TcpSendConfig {
            max_coalesce_frames: 64,
            max_queued_frames: 256,
        }
    }
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Bytes> {
    let mut hdr = [0u8; 4];
    stream.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr) as usize;
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(Bytes::from(buf))
}

struct SendState {
    queue: VecDeque<Bytes>,
    closed: bool,
}

/// One established connection: a bounded outbound frame queue drained by a
/// dedicated writer thread.
struct Conn {
    state: Mutex<SendState>,
    not_empty: Condvar,
    not_full: Condvar,
    cfg: TcpSendConfig,
    counters: Arc<Counters>,
    /// Clone of the underlying socket used only to tear the connection
    /// down (unblocks both the reader and writer threads).
    socket: TcpStream,
}

impl Conn {
    fn spawn(stream: TcpStream, cfg: TcpSendConfig, counters: Arc<Counters>) -> Arc<Conn> {
        let socket = stream.try_clone().unwrap_or_else(|_| {
            // If the clone fails the socket is already dying; the writer
            // thread will discover that on first write.
            stream.try_clone().expect("tcp socket clone failed twice")
        });
        let conn = Arc::new(Conn {
            state: Mutex::new(SendState {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cfg,
            counters,
            socket,
        });
        let c2 = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("mercurio-tcp-tx".into())
            .spawn(move || writer_loop(c2, stream))
            .expect("failed to spawn writer thread");
        conn
    }

    /// Enqueue one frame for transmission; blocks when the outbound queue
    /// is full (backpressure) and fails once the connection is closed.
    fn send(&self, frame: &Bytes) -> Result<(), RpcError> {
        let mut st = self.state.lock();
        if st.queue.len() >= self.cfg.max_queued_frames && !st.closed {
            self.counters.send_stalls.fetch_add(1, Ordering::Relaxed);
            while st.queue.len() >= self.cfg.max_queued_frames && !st.closed {
                self.not_full.wait(&mut st);
            }
        }
        if st.closed {
            return Err(RpcError::Transport("connection closed".into()));
        }
        st.queue.push_back(frame.clone());
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Stop the writer thread; queued-but-unwritten frames are dropped
    /// (their requests are failed through the pending map by the caller).
    fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Close the queue and the socket (kills the peer's reader too).
    fn close_hard(&self) {
        self.close();
        let _ = self.socket.shutdown(std::net::Shutdown::Both);
    }
}

/// Drain the connection's outbound queue, coalescing every frame available
/// at drain time (bounded by `max_coalesce_frames`) into one vectored
/// buffered write: one syscall carries N frames.
fn writer_loop(conn: Arc<Conn>, mut stream: TcpStream) {
    let mut wire = BytesMut::new();
    let mut batch: Vec<Bytes> = Vec::new();
    loop {
        {
            let mut st = conn.state.lock();
            while st.queue.is_empty() {
                if st.closed {
                    return;
                }
                conn.not_empty.wait(&mut st);
            }
            let n = st.queue.len().min(conn.cfg.max_coalesce_frames);
            batch.extend(st.queue.drain(..n));
        }
        conn.not_full.notify_all();
        let total: usize = batch.iter().map(|f| 4 + f.len()).sum();
        wire.clear();
        wire.reserve(total);
        for f in &batch {
            wire.put_u32_le(f.len() as u32);
            wire.put_slice(f);
        }
        conn.counters
            .frames_sent
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        conn.counters.wire_writes.fetch_add(1, Ordering::Relaxed);
        batch.clear();
        if stream
            .write_all(&wire)
            .and_then(|_| stream.flush())
            .is_err()
        {
            // The socket is gone: closing it hard makes the reader loop
            // exit, which fails this peer's pending requests.
            conn.close_hard();
            return;
        }
    }
}

#[derive(Default)]
struct Counters {
    requests_sent: AtomicU64,
    requests_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    bulk_bytes_served: AtomicU64,
    frames_sent: AtomicU64,
    wire_writes: AtomicU64,
    send_stalls: AtomicU64,
}

type PendingMap = HashMap<u64, (String, Eventual<Result<Bytes, RpcError>>)>;

struct TcpInner {
    addr: String,
    handlers: RwLock<HashMap<RpcId, Arc<dyn RpcHandler>>>,
    executor: RwLock<Executor>,
    admission: RwLock<Option<Arc<dyn AdmissionControl>>>,
    /// In-flight requests tagged with the peer they were sent to, so a lost
    /// connection fails exactly the calls routed through it.
    pending: Mutex<PendingMap>,
    conns: Mutex<HashMap<String, Arc<Conn>>>,
    send_cfg: TcpSendConfig,
    next_req: AtomicU64,
    next_bulk: AtomicU64,
    bulks: RwLock<HashMap<u64, Bytes>>,
    counters: Arc<Counters>,
    fault: RwLock<Option<Arc<FaultPlan>>>,
    down: AtomicBool,
}

impl TcpInner {
    fn fault_decision(&self, dir: FrameDirection, rpc_id: RpcId, req_id: u64) -> FaultDecision {
        match &*self.fault.read() {
            Some(plan) => plan.decide(dir, rpc_id, req_id),
            None => FaultDecision::default(),
        }
    }
}

/// Fail every pending request that was routed to `peer`.
fn fail_pending_for_peer(inner: &TcpInner, peer: &str) {
    let mut pending = inner.pending.lock();
    let dead: Vec<u64> = pending
        .iter()
        .filter(|(_, (p, _))| p == peer)
        .map(|(&id, _)| id)
        .collect();
    for id in dead {
        if let Some((_, ev)) = pending.remove(&id) {
            ev.set(Err(RpcError::Transport(format!(
                "connection to {peer} lost"
            ))));
        }
    }
}

/// A TCP endpoint: a listener plus a lazily-populated connection pool.
pub struct TcpEndpoint {
    inner: Arc<TcpInner>,
    listener_port: u16,
}

impl TcpEndpoint {
    /// Bind to `127.0.0.1:port` (`port` 0 picks a free port) and start the
    /// accept loop, with the default send-path configuration.
    pub fn bind(port: u16) -> std::io::Result<Arc<TcpEndpoint>> {
        Self::bind_with(port, TcpSendConfig::default())
    }

    /// [`TcpEndpoint::bind`] with explicit send-path tuning.
    pub fn bind_with(port: u16, send_cfg: TcpSendConfig) -> std::io::Result<Arc<TcpEndpoint>> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let actual = listener.local_addr()?.port();
        let addr = format!("{SCHEME}127.0.0.1:{actual}");
        let inner = Arc::new(TcpInner {
            addr,
            handlers: RwLock::new(HashMap::new()),
            executor: RwLock::new(Arc::new(|_, _, f: Box<dyn FnOnce() + Send>| f())),
            admission: RwLock::new(None),
            pending: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            send_cfg,
            next_req: AtomicU64::new(1),
            next_bulk: AtomicU64::new(1),
            bulks: RwLock::new(HashMap::new()),
            counters: Arc::new(Counters::default()),
            fault: RwLock::new(None),
            down: AtomicBool::new(false),
        });
        let ep = Arc::new(TcpEndpoint {
            inner: Arc::clone(&inner),
            listener_port: actual,
        });
        ep.register_bulk_handler();
        let accept_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name(format!("mercurio-accept-{actual}"))
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("failed to spawn accept thread");
        Ok(ep)
    }

    /// The local listener port.
    pub fn port(&self) -> u16 {
        self.listener_port
    }

    /// Install a [`FaultPlan`] applied to RPC frames this endpoint sends
    /// (requests) and answers (responses). Handshake frames are never
    /// faulted. Replaces any previously installed plan.
    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.inner.fault.write() = Some(plan);
    }

    /// Remove the installed [`FaultPlan`], restoring fault-free delivery.
    pub fn clear_fault_plan(&self) {
        *self.inner.fault.write() = None;
    }

    /// Calls currently awaiting a response. A timed-out (cancelled) call is
    /// removed immediately, so this exposes pending-entry leaks to tests.
    pub fn pending_calls(&self) -> usize {
        self.inner.pending.lock().len()
    }

    fn register_bulk_handler(&self) {
        let inner = Arc::clone(&self.inner);
        self.inner.handlers.write().insert(
            RPC_BULK_PULL,
            Arc::new(move |req: Request| {
                let mut p = req.payload;
                if p.remaining() < 24 {
                    return Err(RpcError::Protocol("short bulk-pull request".into()));
                }
                let id = p.get_u64_le();
                let offset = p.get_u64_le() as usize;
                let len = p.get_u64_le() as usize;
                let region = inner
                    .bulks
                    .read()
                    .get(&id)
                    .cloned()
                    .ok_or(RpcError::NoSuchBulk(id))?;
                if offset.checked_add(len).is_none_or(|end| end > region.len()) {
                    return Err(RpcError::BulkOutOfRange {
                        offset,
                        len,
                        size: region.len(),
                    });
                }
                inner
                    .counters
                    .bulk_bytes_served
                    .fetch_add(len as u64, Ordering::Relaxed);
                Ok(region.slice(offset..offset + len))
            }),
        );
    }

    fn connect(&self, target: &str) -> Result<Arc<Conn>, RpcError> {
        if let Some(c) = self.inner.conns.lock().get(target) {
            return Ok(Arc::clone(c));
        }
        let hostport = target
            .strip_prefix(SCHEME)
            .ok_or_else(|| RpcError::NoSuchEndpoint(target.to_string()))?;
        let stream = TcpStream::connect(hostport)
            .map_err(|e| RpcError::NoSuchEndpoint(format!("{target}: {e}")))?;
        stream.set_nodelay(true).ok();
        let write_half = stream
            .try_clone()
            .map_err(|e| RpcError::Transport(e.to_string()))?;
        let conn = Conn::spawn(
            write_half,
            self.inner.send_cfg.clone(),
            Arc::clone(&self.inner.counters),
        );
        // Handshake: announce our canonical address so the peer can route
        // responses and future requests back. Queued like any other frame;
        // FIFO order guarantees it goes out first.
        let mut hello = BytesMut::new();
        hello.put_slice(self.inner.addr.as_bytes());
        conn.send(&hello.freeze())?;
        self.inner
            .conns
            .lock()
            .insert(target.to_string(), Arc::clone(&conn));
        let inner = Arc::clone(&self.inner);
        let peer = target.to_string();
        let conn2 = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("mercurio-tcp-rx".into())
            .spawn(move || reader_loop(stream, inner, peer, conn2))
            .expect("failed to spawn reader thread");
        Ok(conn)
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<TcpInner>) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => return,
        };
        if inner.down.load(Ordering::Acquire) {
            return;
        }
        stream.set_nodelay(true).ok();
        // Read the handshake to learn the peer's canonical address.
        let peer_addr = match read_frame(&mut stream) {
            Ok(f) => String::from_utf8_lossy(&f).into_owned(),
            Err(_) => continue,
        };
        let write_half = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let conn = Conn::spawn(
            write_half,
            inner.send_cfg.clone(),
            Arc::clone(&inner.counters),
        );
        inner
            .conns
            .lock()
            .insert(peer_addr.clone(), Arc::clone(&conn));
        let inner2 = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("mercurio-tcp-rx".into())
            .spawn(move || reader_loop(stream, inner2, peer_addr, conn))
            .expect("failed to spawn reader thread");
    }
}

fn reader_loop(mut stream: TcpStream, inner: Arc<TcpInner>, peer: String, conn: Arc<Conn>) {
    while let Ok(raw) = read_frame(&mut stream) {
        inner
            .counters
            .bytes_received
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        let frame = match Frame::decode(raw) {
            Ok(f) => f,
            Err(_) => break,
        };
        match frame {
            Frame::Request {
                req_id,
                rpc_id,
                provider_id,
                payload,
            } => {
                inner
                    .counters
                    .requests_received
                    .fetch_add(1, Ordering::Relaxed);
                // Admission check on the reader thread; internal bulk pulls
                // are exempt (they serve already-admitted requests). A shed
                // request is answered Busy right here, bypassing the
                // executor — rejected, never silently dropped.
                let admission = if rpc_id == RPC_BULK_PULL {
                    None
                } else {
                    inner.admission.read().clone()
                };
                if let Some(ctrl) = &admission {
                    if let Admission::Shed { retry_after } = ctrl.admit(rpc_id, provider_id) {
                        let resp = Frame::Response {
                            req_id,
                            result: Err(RpcError::Busy { retry_after }.to_wire()),
                        }
                        .encode();
                        let fd = inner.fault_decision(FrameDirection::Response, rpc_id, req_id);
                        if let Some(t) = fd.delay {
                            std::thread::sleep(t);
                        }
                        if !(fd.drop || fd.disconnect) {
                            inner
                                .counters
                                .bytes_sent
                                .fetch_add(resp.len() as u64, Ordering::Relaxed);
                            let _ = conn.send(&resp);
                        }
                        continue;
                    }
                }
                let handler = inner.handlers.read().get(&rpc_id).cloned();
                let exec = inner.executor.read().clone();
                let conn = Arc::clone(&conn);
                let inner2 = Arc::clone(&inner);
                let peer2 = peer.clone();
                let queued_at = Instant::now();
                exec(
                    rpc_id,
                    provider_id,
                    Box::new(move || {
                        // Deadline-aware shed at the front of the pool.
                        let shed_late = admission.as_ref().and_then(|ctrl| {
                            match ctrl.begin(rpc_id, provider_id, queued_at.elapsed()) {
                                Admission::Admit => None,
                                Admission::Shed { retry_after } => Some(retry_after),
                            }
                        });
                        let result = match (shed_late, handler) {
                            (Some(retry_after), _) => Err(RpcError::Busy { retry_after }),
                            (None, None) => Err(RpcError::NoSuchRpc(rpc_id.0)),
                            (None, Some(h)) => h.handle(Request {
                                source: peer2,
                                rpc_id,
                                provider_id,
                                payload,
                            }),
                        };
                        if let Some(ctrl) = &admission {
                            ctrl.complete(rpc_id, provider_id);
                        }
                        let resp = Frame::Response {
                            req_id,
                            result: result.map_err(|e| e.to_wire()),
                        }
                        .encode();
                        let fd = inner2.fault_decision(FrameDirection::Response, rpc_id, req_id);
                        if let Some(t) = fd.delay {
                            std::thread::sleep(t);
                        }
                        if fd.drop || fd.disconnect {
                            // Response lost: the caller's deadline fires.
                            return;
                        }
                        inner2
                            .counters
                            .bytes_sent
                            .fetch_add(resp.len() as u64, Ordering::Relaxed);
                        let _ = conn.send(&resp);
                        if fd.duplicate {
                            // Harmless to the caller: the first delivery
                            // removes the pending entry, the second no-ops.
                            let _ = conn.send(&resp);
                        }
                    }),
                );
            }
            Frame::Response { req_id, result } => {
                if let Some((_, ev)) = inner.pending.lock().remove(&req_id) {
                    ev.set(result.map_err(|(c, d)| RpcError::from_wire(c, &d)));
                }
            }
        }
    }
    // Connection lost: stop its writer, drop it from the pool so a future
    // call re-dials, and fail the requests that were awaiting this peer —
    // a killed service must surface as an error, not a hang.
    conn.close();
    inner.conns.lock().remove(&peer);
    fail_pending_for_peer(&inner, &peer);
}

impl Endpoint for TcpEndpoint {
    fn address(&self) -> String {
        self.inner.addr.clone()
    }

    fn register(&self, id: RpcId, handler: Arc<dyn RpcHandler>) {
        assert!(
            id != RPC_BULK_PULL,
            "rpc id {} is reserved",
            RPC_BULK_PULL.0
        );
        self.inner.handlers.write().insert(id, handler);
    }

    fn set_executor(&self, exec: Executor) {
        *self.inner.executor.write() = exec;
    }

    fn set_admission(&self, ctrl: Option<Arc<dyn AdmissionControl>>) {
        *self.inner.admission.write() = ctrl;
    }

    fn call_async(
        &self,
        target: &str,
        id: RpcId,
        provider_id: u16,
        payload: Bytes,
    ) -> PendingResponse {
        if self.inner.down.load(Ordering::Acquire) {
            return PendingResponse::failed(RpcError::Shutdown);
        }
        let conn = match self.connect(target) {
            Ok(c) => c,
            Err(e) => return PendingResponse::failed(e),
        };
        let req_id = self.inner.next_req.fetch_add(1, Ordering::Relaxed);
        let fd = self
            .inner
            .fault_decision(FrameDirection::Request, id, req_id);
        if fd.disconnect {
            return PendingResponse::failed(RpcError::Transport(
                "injected transient disconnect".into(),
            ));
        }
        let frame = Frame::Request {
            req_id,
            rpc_id: id,
            provider_id,
            payload,
        }
        .encode();
        let ev = Eventual::new();
        self.inner
            .pending
            .lock()
            .insert(req_id, (target.to_string(), ev.clone()));
        self.inner
            .counters
            .requests_sent
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_sent
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        // Abandoning the call (deadline) removes the pending entry so a
        // dropped frame cannot leak state; a late response then no-ops.
        let cancel_inner = Arc::clone(&self.inner);
        let pending = PendingResponse::with_cancel(
            ev,
            Box::new(move || {
                cancel_inner.pending.lock().remove(&req_id);
            }),
        );
        if let Some(t) = fd.delay {
            std::thread::sleep(t);
        }
        if fd.drop {
            // The request frame is lost in transit; the caller's deadline
            // fires and retries.
            return pending;
        }
        if let Err(e) = conn.send(&frame) {
            self.inner.pending.lock().remove(&req_id);
            return PendingResponse::failed(e);
        }
        if fd.duplicate {
            let _ = conn.send(&frame);
        }
        pending
    }

    fn expose_bulk(&self, data: Bytes) -> BulkHandle {
        let id = self.inner.next_bulk.fetch_add(1, Ordering::Relaxed);
        let len = data.len();
        self.inner.bulks.write().insert(id, data);
        BulkHandle { id, len }
    }

    fn release_bulk(&self, handle: &BulkHandle) {
        self.inner.bulks.write().remove(&handle.id);
    }

    fn bulk_pull(
        &self,
        owner: &str,
        handle: &BulkHandle,
        offset: usize,
        len: usize,
    ) -> Result<Bytes, RpcError> {
        if owner == self.inner.addr {
            // Local fast path: pulling from ourselves needs no socket.
            let region = self
                .inner
                .bulks
                .read()
                .get(&handle.id)
                .cloned()
                .ok_or(RpcError::NoSuchBulk(handle.id))?;
            if offset.checked_add(len).is_none_or(|end| end > region.len()) {
                return Err(RpcError::BulkOutOfRange {
                    offset,
                    len,
                    size: region.len(),
                });
            }
            return Ok(region.slice(offset..offset + len));
        }
        let mut payload = BytesMut::with_capacity(24);
        payload.put_u64_le(handle.id);
        payload.put_u64_le(offset as u64);
        payload.put_u64_le(len as u64);
        self.call(owner, RPC_BULK_PULL, 0, payload.freeze())
    }

    fn stats(&self) -> EndpointStats {
        let c = &self.inner.counters;
        EndpointStats {
            requests_sent: c.requests_sent.load(Ordering::Relaxed),
            requests_received: c.requests_received.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            bytes_received: c.bytes_received.load(Ordering::Relaxed),
            bulk_bytes_served: c.bulk_bytes_served.load(Ordering::Relaxed),
            frames_sent: c.frames_sent.load(Ordering::Relaxed),
            wire_writes: c.wire_writes.load(Ordering::Relaxed),
            send_stalls: c.send_stalls.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        self.inner.down.store(true, Ordering::Release);
        // Unblock the accept loop by dialing ourselves once.
        let _ = TcpStream::connect(("127.0.0.1", self.listener_port));
        let mut conns = self.inner.conns.lock();
        for (_, conn) in conns.drain() {
            conn.close_hard();
        }
        drop(conns);
        let mut pending = self.inner.pending.lock();
        for (_, (_, ev)) in pending.drain() {
            ev.set(Err(RpcError::Shutdown));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn echo() -> Arc<dyn RpcHandler> {
        Arc::new(|req: Request| Ok(req.payload))
    }

    #[test]
    fn call_over_tcp() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        let out = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"over tcp"))
            .unwrap();
        assert_eq!(&out[..], b"over tcp");
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn large_payload_round_trip() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        let big: Vec<u8> = (0..1_000_000u32).map(|i| i as u8).collect();
        let out = c
            .call(&s.address(), RpcId(1), 0, Bytes::from(big.clone()))
            .unwrap();
        assert_eq!(&out[..], &big[..]);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn admit_shed_answers_busy_without_leaking() {
        use crate::endpoint::testctl::TestAdmission;
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        let ctl = Arc::new(TestAdmission {
            shed_at_admit: true,
            ..Default::default()
        });
        s.set_admission(Some(Arc::clone(&ctl) as Arc<dyn AdmissionControl>));
        let err = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(
            err,
            RpcError::Busy {
                retry_after: Duration::from_millis(7)
            }
        );
        // Every shed request produced exactly one Busy response; nothing
        // is stuck in the client's pending map.
        assert_eq!(c.pending_calls(), 0);
        assert_eq!(ctl.begins.load(std::sync::atomic::Ordering::SeqCst), 0);
        assert_eq!(ctl.completes.load(std::sync::atomic::Ordering::SeqCst), 0);
        s.set_admission(None);
        let out = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"y"))
            .unwrap();
        assert_eq!(&out[..], b"y");
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn begin_shed_releases_slot_exactly_once() {
        use crate::endpoint::testctl::TestAdmission;
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        let ctl = Arc::new(TestAdmission {
            shed_at_begin: true,
            ..Default::default()
        });
        s.set_admission(Some(Arc::clone(&ctl) as Arc<dyn AdmissionControl>));
        let err = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(
            err,
            RpcError::Busy {
                retry_after: Duration::from_millis(3)
            }
        );
        assert_eq!(c.pending_calls(), 0);
        assert_eq!(ctl.admits.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(ctl.begins.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(ctl.completes.load(std::sync::atomic::Ordering::SeqCst), 1);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn bulk_pulls_are_exempt_from_admission() {
        use crate::endpoint::testctl::TestAdmission;
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        let ctl = Arc::new(TestAdmission {
            shed_at_admit: true,
            ..Default::default()
        });
        s.set_admission(Some(Arc::clone(&ctl) as Arc<dyn AdmissionControl>));
        // The region belongs to an already-admitted request; pulling it must
        // not be shed even while the endpoint rejects new work.
        let data = Bytes::from_static(b"bulk payload survives overload");
        let handle = s.expose_bulk(data.clone());
        let out = c.bulk_pull(&s.address(), &handle, 0, data.len()).unwrap();
        assert_eq!(&out[..], &data[..]);
        assert_eq!(ctl.admits.load(std::sync::atomic::Ordering::SeqCst), 0);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn error_propagates_over_tcp() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(
            RpcId(2),
            Arc::new(|_req: Request| Err(RpcError::Handler("remote boom".into()))),
        );
        let err = c.call(&s.address(), RpcId(2), 0, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Handler("remote boom".into()));
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn unknown_rpc_over_tcp() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        let err = c.call(&s.address(), RpcId(9), 0, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::NoSuchRpc(9));
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn bulk_pull_over_tcp() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        let h = s.expose_bulk(Bytes::from_static(b"abcdefgh"));
        let out = c.bulk_pull(&s.address(), &h, 2, 3).unwrap();
        assert_eq!(&out[..], b"cde");
        assert_eq!(s.stats().bulk_bytes_served, 3);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn connection_reuse_and_concurrency() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        let addr = s.address();
        let pending: Vec<_> = (0..50u8)
            .map(|i| c.call_async(&addr, RpcId(1), 0, Bytes::copy_from_slice(&[i])))
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap()[0] as usize, i);
        }
        assert_eq!(s.stats().requests_received, 50);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn coalescing_batches_frames_per_write() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        let addr = s.address();
        // Fire a burst of async calls: the writer thread drains whatever is
        // queued per wakeup, so wire writes must not exceed frames sent and
        // should generally be far fewer under a burst.
        let pending: Vec<_> = (0..200u8)
            .map(|i| c.call_async(&addr, RpcId(1), 0, Bytes::copy_from_slice(&[i])))
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        let st = c.stats();
        // 200 requests + 1 handshake frame.
        assert_eq!(st.frames_sent, 201);
        assert!(st.wire_writes >= 1);
        assert!(
            st.wire_writes <= st.frames_sent,
            "writes {} > frames {}",
            st.wire_writes,
            st.frames_sent
        );
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn per_frame_mode_writes_every_frame() {
        let cfg = TcpSendConfig {
            max_coalesce_frames: 1,
            max_queued_frames: 256,
        };
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind_with(0, cfg).unwrap();
        s.register(RpcId(1), echo());
        let addr = s.address();
        for i in 0..20u8 {
            c.call(&addr, RpcId(1), 0, Bytes::copy_from_slice(&[i]))
                .unwrap();
        }
        let st = c.stats();
        assert_eq!(st.frames_sent, 21); // 20 requests + handshake
        assert_eq!(st.wire_writes, st.frames_sent);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn full_queue_counts_backpressure_stalls() {
        let cfg = TcpSendConfig {
            max_coalesce_frames: 64,
            max_queued_frames: 2,
        };
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind_with(0, cfg).unwrap();
        s.register(RpcId(1), echo());
        let addr = s.address();
        // A tiny queue with a burst of medium frames forces senders to wait
        // on the writer thread at least occasionally.
        let payload = Bytes::from(vec![7u8; 64 << 10]);
        let pending: Vec<_> = (0..64)
            .map(|_| c.call_async(&addr, RpcId(1), 0, payload.clone()))
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        let st = c.stats();
        assert_eq!(st.requests_sent, 64);
        // Not guaranteed on every scheduling, but with queue depth 2 and 64
        // large frames the writer cannot stay ahead of the caller.
        assert!(st.send_stalls > 0, "expected at least one send stall");
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn dead_endpoint_is_unreachable() {
        let s = TcpEndpoint::bind(0).unwrap();
        let addr = s.address();
        s.shutdown();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let c = TcpEndpoint::bind(0).unwrap();
        // Either the connect fails outright, or a pending call dies with the
        // connection; both surface as an error rather than a hang.
        let res = c
            .call_async(&addr, RpcId(1), 0, Bytes::new())
            .wait_timeout(std::time::Duration::from_secs(2));
        assert!(res.is_err());
        c.shutdown();
    }

    #[test]
    fn deadline_against_stalled_handler_leaves_no_pending_entry() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        let release = Arc::new(AtomicBool::new(false));
        let release2 = Arc::clone(&release);
        s.register(
            RpcId(1),
            Arc::new(move |_req: Request| {
                while !release2.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Ok(Bytes::new())
            }),
        );
        s.set_executor(Arc::new(|_rpc, _prov, job| {
            std::thread::spawn(job);
        }));
        let err = c
            .call_with_deadline(
                &s.address(),
                RpcId(1),
                0,
                Bytes::new(),
                std::time::Duration::from_millis(20),
            )
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // The abandoned call must not leak a pending entry.
        assert_eq!(c.pending_calls(), 0);
        // Unstick the handler; its late response must be dropped harmlessly
        // and the endpoint stays usable.
        release.store(true, Ordering::Release);
        let ok = c
            .call_async(&s.address(), RpcId(1), 0, Bytes::from_static(b"ok"))
            .wait_timeout(std::time::Duration::from_secs(5));
        assert!(ok.is_ok());
        assert_eq!(c.pending_calls(), 0);
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn dropped_response_times_out_and_cancels() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        s.register(RpcId(1), echo());
        // Drop every response the server sends; the client's deadline must
        // fire and cancel the call instead of hanging.
        let mut cfg = crate::fault::FaultConfig::new(13);
        cfg.drop_response = 1.0;
        s.install_fault_plan(Arc::new(crate::fault::FaultPlan::new(cfg)));
        let err = c
            .call_with_deadline(
                &s.address(),
                RpcId(1),
                0,
                Bytes::from_static(b"x"),
                std::time::Duration::from_millis(50),
            )
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        assert_eq!(c.pending_calls(), 0);
        // The request itself did arrive — only the response was lost.
        assert_eq!(s.stats().requests_received, 1);
        s.clear_fault_plan();
        let out = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"y"))
            .unwrap();
        assert_eq!(&out[..], b"y");
        s.shutdown();
        c.shutdown();
    }

    #[test]
    fn lost_connection_fails_pending_calls() {
        let s = TcpEndpoint::bind(0).unwrap();
        let c = TcpEndpoint::bind(0).unwrap();
        // A handler that never answers quickly: the response would only
        // arrive after the server dies.
        s.register(
            RpcId(1),
            Arc::new(|_req: Request| {
                std::thread::sleep(std::time::Duration::from_secs(10));
                Ok(Bytes::new())
            }),
        );
        s.set_executor(Arc::new(|_rpc, _prov, job| {
            std::thread::spawn(job);
        }));
        let pending = c.call_async(&s.address(), RpcId(1), 0, Bytes::new());
        std::thread::sleep(std::time::Duration::from_millis(50));
        s.shutdown();
        // The client's reader loop notices the closed socket and fails the
        // in-flight request — no 10-second hang, no silent loss.
        let err = pending
            .wait_timeout(std::time::Duration::from_secs(2))
            .unwrap_err();
        assert!(
            matches!(err, RpcError::Transport(_) | RpcError::Shutdown),
            "unexpected error: {err}"
        );
        c.shutdown();
    }
}
