//! In-process transport: endpoints routed through a shared [`Fabric`] under
//! a configurable [`NetworkModel`].
//!
//! This is the substitute for Mercury-over-uGNI on the Cray Aries fabric:
//! every "node" of a simulated deployment creates one endpoint on a common
//! fabric, and the model injects per-message latency, size-dependent
//! transfer time, and per-NIC injection-bandwidth accounting (optionally
//! failing on saturation, as the Aries NIC did in the paper's runs).

use crate::bulk::BulkHandle;
use crate::endpoint::{
    Admission, AdmissionControl, Endpoint, EndpointStats, Executor, PendingResponse, Request,
    RpcHandler,
};
use crate::error::RpcError;
use crate::fault::{FaultDecision, FaultPlan, FrameDirection};
use crate::model::{InjectionGauge, NetworkModel};
use crate::wire::{Frame, RpcId};
use argos::Eventual;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Address scheme prefix for the local transport.
pub const SCHEME: &str = "local://";

type DeliveryFn = Box<dyn FnOnce() + Send + 'static>;

struct DelayItem {
    due: Instant,
    seq: u64,
    run: DeliveryFn,
}

impl PartialEq for DelayItem {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayItem {}
impl PartialOrd for DelayItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by due time (BinaryHeap is a max-heap).
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct DelayLine {
    queue: Mutex<BinaryHeap<DelayItem>>,
    cond: Condvar,
    stop: AtomicBool,
    seq: AtomicU64,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl DelayLine {
    fn start() -> Arc<DelayLine> {
        let line = Arc::new(DelayLine {
            queue: Mutex::new(BinaryHeap::new()),
            cond: Condvar::new(),
            stop: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            handle: Mutex::new(None),
        });
        let l2 = Arc::clone(&line);
        let h = std::thread::Builder::new()
            .name("mercurio-delay".into())
            .spawn(move || l2.run())
            .expect("failed to spawn delay-line thread");
        *line.handle.lock() = Some(h);
        line
    }

    fn schedule(&self, delay: Duration, run: DeliveryFn) {
        let item = DelayItem {
            due: Instant::now() + delay,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            run,
        };
        self.queue.lock().push(item);
        self.cond.notify_one();
    }

    fn run(&self) {
        let mut q = self.queue.lock();
        loop {
            let now = Instant::now();
            while q.peek().is_some_and(|i| i.due <= now) {
                let item = q.pop().expect("peeked item must pop");
                drop(q);
                (item.run)();
                q = self.queue.lock();
            }
            if self.stop.load(Ordering::Acquire) && q.is_empty() {
                return;
            }
            match q.peek().map(|i| i.due) {
                Some(due) => {
                    self.cond.wait_until(&mut q, due);
                }
                None => {
                    self.cond.wait_for(&mut q, Duration::from_millis(50));
                }
            }
        }
    }

    fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.cond.notify_all();
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

#[derive(Default)]
struct Counters {
    requests_sent: AtomicU64,
    requests_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    bulk_bytes_served: AtomicU64,
    frames_sent: AtomicU64,
    wire_writes: AtomicU64,
    send_stalls: AtomicU64,
}

/// One frame awaiting its endpoint's sender thread. `deliver` runs (through
/// the fabric's delay line) when the injection charge succeeds; `fail` runs
/// instead when the NIC budget is blown and the model fails on saturation.
struct OutboundFrame {
    len: usize,
    deliver: DeliveryFn,
    fail: Box<dyn FnOnce(RpcError) + Send + 'static>,
}

struct SenderState {
    queue: VecDeque<OutboundFrame>,
    closed: bool,
}

/// Bounded outbound queue drained by a per-endpoint sender thread — the
/// local-transport mirror of the TCP writer thread. All frames drained
/// together are charged to the injection gauge as ONE coalesced burst.
struct Sender {
    state: Mutex<SenderState>,
    not_empty: Condvar,
    not_full: Condvar,
    max_queued: usize,
    max_coalesce: usize,
}

impl Sender {
    fn new(max_queued: usize, max_coalesce: usize) -> Sender {
        Sender {
            state: Mutex::new(SenderState {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            max_queued: max_queued.max(1),
            max_coalesce: max_coalesce.max(1),
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

fn sender_loop(ep: Arc<EndpointInner>, fabric: Arc<FabricInner>) {
    let sender = ep.sender.as_ref().expect("sender loop without sender");
    let mut batch: Vec<OutboundFrame> = Vec::new();
    loop {
        {
            let mut st = sender.state.lock();
            while st.queue.is_empty() {
                if st.closed {
                    return;
                }
                sender.not_empty.wait(&mut st);
            }
            let n = st.queue.len().min(sender.max_coalesce);
            batch.extend(st.queue.drain(..n));
        }
        sender.not_full.notify_all();
        let total: usize = batch.iter().map(|f| f.len).sum();
        // One injection charge for the whole burst: the simulated NIC sees
        // the coalesced write, not `batch.len()` individual frames.
        let ok = ep.gauge.inject_burst(batch.len() as u64, total);
        ep.counters
            .frames_sent
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        ep.counters.wire_writes.fetch_add(1, Ordering::Relaxed);
        if !ok && fabric.model.fail_on_saturation {
            for f in batch.drain(..) {
                (f.fail)(RpcError::NetworkSaturated);
            }
        } else {
            for f in batch.drain(..) {
                fabric.deliver(f.len, f.deliver);
            }
        }
    }
}

struct EndpointInner {
    addr: String,
    handlers: RwLock<HashMap<RpcId, Arc<dyn RpcHandler>>>,
    executor: RwLock<Executor>,
    admission: RwLock<Option<Arc<dyn AdmissionControl>>>,
    pending: Mutex<HashMap<u64, Eventual<Result<Bytes, RpcError>>>>,
    next_req: AtomicU64,
    next_bulk: AtomicU64,
    bulks: RwLock<HashMap<u64, Bytes>>,
    gauge: InjectionGauge,
    counters: Counters,
    /// Present on non-ideal fabrics; `None` keeps the ideal model's fully
    /// synchronous send path (tests rely on synchronous saturation errors).
    sender: Option<Arc<Sender>>,
    down: AtomicBool,
}

impl EndpointInner {
    /// Route one outbound frame through this endpoint's NIC. Queued to the
    /// coalescing sender when one exists; otherwise charged and delivered
    /// synchronously. A full queue blocks (counted as a send stall).
    fn send_frame(
        self: &Arc<Self>,
        fabric: &Arc<FabricInner>,
        len: usize,
        deliver: DeliveryFn,
        fail: Box<dyn FnOnce(RpcError) + Send + 'static>,
    ) {
        match &self.sender {
            None => {
                let ok = self.gauge.inject_burst(1, len);
                self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                self.counters.wire_writes.fetch_add(1, Ordering::Relaxed);
                if !ok && fabric.model.fail_on_saturation {
                    fail(RpcError::NetworkSaturated);
                } else {
                    fabric.deliver(len, deliver);
                }
            }
            Some(sender) => {
                let mut st = sender.state.lock();
                if st.queue.len() >= sender.max_queued && !st.closed {
                    self.counters.send_stalls.fetch_add(1, Ordering::Relaxed);
                    while st.queue.len() >= sender.max_queued && !st.closed {
                        sender.not_full.wait(&mut st);
                    }
                }
                if st.closed {
                    drop(st);
                    fail(RpcError::Shutdown);
                    return;
                }
                st.queue.push_back(OutboundFrame { len, deliver, fail });
                drop(st);
                sender.not_empty.notify_one();
            }
        }
    }
}

struct FabricInner {
    model: NetworkModel,
    endpoints: RwLock<HashMap<String, Arc<EndpointInner>>>,
    delay: Option<Arc<DelayLine>>,
    fault: RwLock<Option<Arc<FaultPlan>>>,
}

impl FabricInner {
    fn fault_decision(&self, dir: FrameDirection, rpc_id: RpcId, req_id: u64) -> FaultDecision {
        match &*self.fault.read() {
            Some(plan) => plan.decide(dir, rpc_id, req_id),
            None => FaultDecision::default(),
        }
    }
}

/// An in-process network shared by a set of [`LocalEndpoint`]s.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl Fabric {
    /// Create a fabric with the given network model. [`NetworkModel::default`]
    /// gives an ideal network with synchronous delivery.
    pub fn new(model: NetworkModel) -> Fabric {
        let delay = if model.is_ideal() {
            None
        } else {
            Some(DelayLine::start())
        };
        Fabric {
            inner: Arc::new(FabricInner {
                model,
                endpoints: RwLock::new(HashMap::new()),
                delay,
                fault: RwLock::new(None),
            }),
        }
    }

    /// The fabric's network model.
    pub fn model(&self) -> &NetworkModel {
        &self.inner.model
    }

    /// Create and register an endpoint named `name` (address
    /// `local://<name>`).
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken — endpoint identity must be
    /// unambiguous on a fabric.
    pub fn endpoint(&self, name: &str) -> Arc<LocalEndpoint> {
        let addr = format!("{SCHEME}{name}");
        let model = &self.inner.model;
        let sender = if model.is_ideal() {
            None
        } else {
            Some(Arc::new(Sender::new(
                model.send_queue_frames,
                model.coalesce_frames,
            )))
        };
        let inner = Arc::new(EndpointInner {
            addr: addr.clone(),
            handlers: RwLock::new(HashMap::new()),
            executor: RwLock::new(Arc::new(|_, _, f: Box<dyn FnOnce() + Send>| f())),
            admission: RwLock::new(None),
            pending: Mutex::new(HashMap::new()),
            next_req: AtomicU64::new(1),
            next_bulk: AtomicU64::new(1),
            bulks: RwLock::new(HashMap::new()),
            gauge: InjectionGauge::new(model),
            counters: Counters::default(),
            sender,
            down: AtomicBool::new(false),
        });
        if inner.sender.is_some() {
            let ep = Arc::clone(&inner);
            let fabric = Arc::clone(&self.inner);
            std::thread::Builder::new()
                .name(format!("mercurio-send-{name}"))
                .spawn(move || sender_loop(ep, fabric))
                .expect("failed to spawn sender thread");
        }
        let mut eps = self.inner.endpoints.write();
        assert!(
            !eps.contains_key(&addr),
            "endpoint name already registered: {addr}"
        );
        eps.insert(addr, Arc::clone(&inner));
        drop(eps);
        Arc::new(LocalEndpoint {
            inner,
            fabric: Arc::clone(&self.inner),
        })
    }

    /// Addresses of all registered endpoints.
    pub fn addresses(&self) -> Vec<String> {
        let mut v: Vec<_> = self.inner.endpoints.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Stop the sender threads and the delay-line thread (if any).
    /// Endpoints remain usable with synchronous delivery semantics
    /// afterwards only on an ideal model; normally called at teardown.
    pub fn stop(&self) {
        for ep in self.inner.endpoints.read().values() {
            if let Some(s) = &ep.sender {
                s.close();
            }
        }
        if let Some(d) = &self.inner.delay {
            d.stop();
        }
    }

    /// Whether an endpoint with this address is currently registered.
    pub fn is_registered(&self, addr: &str) -> bool {
        self.inner.endpoints.read().contains_key(addr)
    }

    /// Install a [`FaultPlan`] applied to every RPC frame crossing this
    /// fabric (requests and responses; bulk pulls and handshakes are not
    /// faulted). Replaces any previously installed plan.
    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.inner.fault.write() = Some(plan);
    }

    /// Remove the installed [`FaultPlan`], restoring fault-free delivery.
    pub fn clear_fault_plan(&self) {
        *self.inner.fault.write() = None;
    }
}

impl FabricInner {
    /// Deliver a closure after the model's transfer time for `bytes`.
    fn deliver(&self, bytes: usize, run: DeliveryFn) {
        match &self.delay {
            None => run(),
            Some(line) => {
                let t = self.model.transfer_time(bytes);
                if t.is_zero() {
                    run()
                } else {
                    line.schedule(t, run)
                }
            }
        }
    }
}

/// One endpoint on a local [`Fabric`].
pub struct LocalEndpoint {
    inner: Arc<EndpointInner>,
    fabric: Arc<FabricInner>,
}

impl LocalEndpoint {
    /// Bytes this endpoint has pushed through its NIC injection gauge.
    pub fn injected_bytes(&self) -> u64 {
        self.inner.gauge.total_bytes()
    }

    /// Number of sends that exceeded the injection budget.
    pub fn saturation_events(&self) -> u64 {
        self.inner.gauge.saturation_events()
    }

    /// Frames charged through the injection gauge.
    pub fn injected_frames(&self) -> u64 {
        self.inner.gauge.total_frames()
    }

    /// Injection charges made against the NIC token bucket — one per
    /// coalesced burst, so `injected_frames / injection_bursts` is the
    /// achieved coalescing factor on the simulated NIC.
    pub fn injection_bursts(&self) -> u64 {
        self.inner.gauge.bursts()
    }

    /// Calls currently awaiting a response. A timed-out (cancelled) call is
    /// removed immediately, so this exposes pending-entry leaks to tests.
    pub fn pending_calls(&self) -> usize {
        self.inner.pending.lock().len()
    }

    /// Send `result` back to `src_addr` through the fabric (also modeled).
    fn send_response(
        fabric: &Arc<FabricInner>,
        responder: &Arc<EndpointInner>,
        src_addr: &str,
        req_id: u64,
        rpc_id: RpcId,
        result: Result<Bytes, RpcError>,
    ) {
        let resp_len = match &result {
            Ok(b) => b.len(),
            Err(_) => 32,
        };
        responder
            .counters
            .bytes_sent
            .fetch_add(resp_len as u64, Ordering::Relaxed);
        let fd = fabric.fault_decision(FrameDirection::Response, rpc_id, req_id);
        if let Some(t) = fd.delay {
            std::thread::sleep(t);
        }
        if fd.drop || fd.disconnect {
            // Response lost: the caller's pending entry stays until its
            // deadline fires (or shutdown fails it).
            return;
        }
        let caller = fabric.endpoints.read().get(src_addr).cloned();
        if let Some(caller) = caller {
            // The response goes back out through the responder's NIC:
            // queued to its coalescing sender (non-ideal models) and
            // charged as part of whatever burst it lands in. A duplicated
            // response is harmless to the caller: the first delivery
            // removes the pending entry, the second finds nothing.
            let sends = if fd.duplicate { 2 } else { 1 };
            for _ in 0..sends {
                let deliver_caller = Arc::clone(&caller);
                let fail_caller = Arc::clone(&caller);
                let result = result.clone();
                responder.send_frame(
                    fabric,
                    resp_len,
                    Box::new(move || {
                        deliver_caller
                            .counters
                            .bytes_received
                            .fetch_add(resp_len as u64, Ordering::Relaxed);
                        if let Some(ev) = deliver_caller.pending.lock().remove(&req_id) {
                            ev.set(result);
                        }
                    }),
                    Box::new(move |e| {
                        if let Some(ev) = fail_caller.pending.lock().remove(&req_id) {
                            ev.set(Err(e));
                        }
                    }),
                );
            }
        }
    }

    fn dispatch_request(
        self_fabric: &Arc<FabricInner>,
        target: &Arc<EndpointInner>,
        src_addr: String,
        req_id: u64,
        rpc_id: RpcId,
        provider_id: u16,
        payload: Bytes,
    ) {
        target
            .counters
            .requests_received
            .fetch_add(1, Ordering::Relaxed);
        target
            .counters
            .bytes_received
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        // Admission check on the delivery thread: an over-bound request is
        // answered `Busy` right here, bypassing the execution pools, so an
        // overloaded provider rejects cheaply instead of queueing unboundedly.
        // Never a silent drop — the caller always gets a response.
        let admission = target.admission.read().clone();
        if let Some(ctrl) = &admission {
            if let Admission::Shed { retry_after } = ctrl.admit(rpc_id, provider_id) {
                Self::send_response(
                    self_fabric,
                    target,
                    &src_addr,
                    req_id,
                    rpc_id,
                    Err(RpcError::Busy { retry_after }),
                );
                return;
            }
        }
        let handler = target.handlers.read().get(&rpc_id).cloned();
        let fabric = Arc::clone(self_fabric);
        let target2 = Arc::clone(target);
        let exec = target.executor.read().clone();
        let queued_at = Instant::now();
        let job: Box<dyn FnOnce() + Send> = Box::new(move || {
            // Deadline-aware shed at the front of the pool: a request that
            // queued past the controller's bound is answered Busy instead of
            // doing work its caller has likely abandoned.
            let shed_late = admission.as_ref().and_then(|ctrl| {
                match ctrl.begin(rpc_id, provider_id, queued_at.elapsed()) {
                    Admission::Admit => None,
                    Admission::Shed { retry_after } => Some(retry_after),
                }
            });
            let result = match (shed_late, handler) {
                (Some(retry_after), _) => Err(RpcError::Busy { retry_after }),
                (None, None) => Err(RpcError::NoSuchRpc(rpc_id.0)),
                (None, Some(h)) => {
                    if target2.down.load(Ordering::Acquire) {
                        Err(RpcError::Shutdown)
                    } else {
                        h.handle(Request {
                            source: src_addr.clone(),
                            rpc_id,
                            provider_id,
                            payload,
                        })
                    }
                }
            };
            // Release the admission slot exactly once per admitted request,
            // before the (possibly faulted) response send.
            if let Some(ctrl) = &admission {
                ctrl.complete(rpc_id, provider_id);
            }
            Self::send_response(&fabric, &target2, &src_addr, req_id, rpc_id, result);
        });
        exec(rpc_id, provider_id, job);
    }
}

impl Endpoint for LocalEndpoint {
    fn address(&self) -> String {
        self.inner.addr.clone()
    }

    fn register(&self, id: RpcId, handler: Arc<dyn RpcHandler>) {
        self.inner.handlers.write().insert(id, handler);
    }

    fn set_executor(&self, exec: Executor) {
        *self.inner.executor.write() = exec;
    }

    fn set_admission(&self, ctrl: Option<Arc<dyn AdmissionControl>>) {
        *self.inner.admission.write() = ctrl;
    }

    fn call_async(
        &self,
        target: &str,
        id: RpcId,
        provider_id: u16,
        payload: Bytes,
    ) -> PendingResponse {
        if self.inner.down.load(Ordering::Acquire) {
            return PendingResponse::failed(RpcError::Shutdown);
        }
        let Some(target_inner) = self.fabric.endpoints.read().get(target).cloned() else {
            return PendingResponse::failed(RpcError::NoSuchEndpoint(target.to_string()));
        };
        if target_inner.down.load(Ordering::Acquire) {
            return PendingResponse::failed(RpcError::NoSuchEndpoint(target.to_string()));
        }
        let req_id = self.inner.next_req.fetch_add(1, Ordering::Relaxed);
        let fd = self
            .fabric
            .fault_decision(FrameDirection::Request, id, req_id);
        if fd.disconnect {
            return PendingResponse::failed(RpcError::Transport(
                "injected transient disconnect".into(),
            ));
        }
        // Frame-size accounting matches the wire codec even though the local
        // transport short-circuits actual encoding for speed.
        let frame_len = Frame::Request {
            req_id,
            rpc_id: id,
            provider_id,
            payload: payload.clone(),
        }
        .encoded_len();
        self.inner
            .counters
            .requests_sent
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_sent
            .fetch_add(frame_len as u64, Ordering::Relaxed);
        let ev = Eventual::new();
        self.inner.pending.lock().insert(req_id, ev.clone());
        // Abandoning the call (deadline) removes the pending entry so a
        // dropped frame cannot leak state; a late response then no-ops.
        let cancel_inner = Arc::clone(&self.inner);
        let pending = PendingResponse::with_cancel(
            ev,
            Box::new(move || {
                cancel_inner.pending.lock().remove(&req_id);
            }),
        );
        if let Some(t) = fd.delay {
            std::thread::sleep(t);
        }
        if fd.drop {
            // The request frame is lost in transit: it was charged to the
            // caller's intent but never reaches the target. The caller's
            // deadline fires and retries.
            return pending;
        }
        let sends = if fd.duplicate { 2 } else { 1 };
        for _ in 0..sends {
            let fabric = Arc::clone(&self.fabric);
            let target_inner = Arc::clone(&target_inner);
            let src = self.inner.addr.clone();
            let caller = Arc::clone(&self.inner);
            let payload = payload.clone();
            self.inner.send_frame(
                &self.fabric,
                frame_len,
                Box::new(move || {
                    LocalEndpoint::dispatch_request(
                        &fabric,
                        &target_inner,
                        src,
                        req_id,
                        id,
                        provider_id,
                        payload,
                    );
                }),
                Box::new(move |e| {
                    if let Some(ev) = caller.pending.lock().remove(&req_id) {
                        ev.set(Err(e));
                    }
                }),
            );
        }
        pending
    }

    fn expose_bulk(&self, data: Bytes) -> BulkHandle {
        let id = self.inner.next_bulk.fetch_add(1, Ordering::Relaxed);
        let len = data.len();
        self.inner.bulks.write().insert(id, data);
        BulkHandle { id, len }
    }

    fn release_bulk(&self, handle: &BulkHandle) {
        self.inner.bulks.write().remove(&handle.id);
    }

    fn bulk_pull(
        &self,
        owner: &str,
        handle: &BulkHandle,
        offset: usize,
        len: usize,
    ) -> Result<Bytes, RpcError> {
        if self.inner.down.load(Ordering::Acquire) {
            return Err(RpcError::Shutdown);
        }
        let owner_inner = self
            .fabric
            .endpoints
            .read()
            .get(owner)
            .cloned()
            .ok_or_else(|| RpcError::NoSuchEndpoint(owner.to_string()))?;
        let region = owner_inner
            .bulks
            .read()
            .get(&handle.id)
            .cloned()
            .ok_or(RpcError::NoSuchBulk(handle.id))?;
        if offset.checked_add(len).is_none_or(|end| end > region.len()) {
            return Err(RpcError::BulkOutOfRange {
                offset,
                len,
                size: region.len(),
            });
        }
        // The transfer consumes the owner's injection budget (it is the
        // owner's NIC that pushes the data, as in an RDMA get).
        let ok = owner_inner.gauge.inject(len);
        if !ok && self.fabric.model.fail_on_saturation {
            return Err(RpcError::NetworkSaturated);
        }
        owner_inner
            .counters
            .bulk_bytes_served
            .fetch_add(len as u64, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_received
            .fetch_add(len as u64, Ordering::Relaxed);
        let t = self.fabric.model.transfer_time(len);
        if !t.is_zero() {
            std::thread::sleep(t);
        }
        Ok(region.slice(offset..offset + len))
    }

    fn stats(&self) -> EndpointStats {
        let c = &self.inner.counters;
        EndpointStats {
            requests_sent: c.requests_sent.load(Ordering::Relaxed),
            requests_received: c.requests_received.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            bytes_received: c.bytes_received.load(Ordering::Relaxed),
            bulk_bytes_served: c.bulk_bytes_served.load(Ordering::Relaxed),
            frames_sent: c.frames_sent.load(Ordering::Relaxed),
            wire_writes: c.wire_writes.load(Ordering::Relaxed),
            send_stalls: c.send_stalls.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        self.inner.down.store(true, Ordering::Release);
        self.fabric.endpoints.write().remove(&self.inner.addr);
        if let Some(s) = &self.inner.sender {
            s.close();
        }
        let mut pending = self.inner.pending.lock();
        for (_, ev) in pending.drain() {
            ev.set(Err(RpcError::Shutdown));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn echo_handler() -> Arc<dyn RpcHandler> {
        Arc::new(|req: Request| Ok(req.payload))
    }

    #[test]
    fn basic_call_response() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        let out = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"ping"))
            .unwrap();
        assert_eq!(&out[..], b"ping");
    }

    #[test]
    fn unknown_rpc_id_errors() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        let err = c.call(&s.address(), RpcId(5), 0, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::NoSuchRpc(5));
    }

    #[test]
    fn unknown_endpoint_errors() {
        let fabric = Fabric::new(NetworkModel::default());
        let c = fabric.endpoint("c");
        let err = c
            .call("local://ghost", RpcId(1), 0, Bytes::new())
            .unwrap_err();
        assert!(matches!(err, RpcError::NoSuchEndpoint(_)));
    }

    #[test]
    fn handler_error_propagates() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(
            RpcId(1),
            Arc::new(|_req: Request| Err(RpcError::Handler("nope".into()))),
        );
        let err = c.call(&s.address(), RpcId(1), 0, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Handler("nope".into()));
    }

    #[test]
    fn provider_id_reaches_handler() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(
            RpcId(1),
            Arc::new(|req: Request| Ok(Bytes::copy_from_slice(&req.provider_id.to_le_bytes()))),
        );
        let out = c.call(&s.address(), RpcId(1), 42, Bytes::new()).unwrap();
        assert_eq!(u16::from_le_bytes([out[0], out[1]]), 42);
    }

    #[test]
    fn async_calls_complete_out_of_band() {
        let fabric = Fabric::new(NetworkModel {
            latency: Duration::from_millis(5),
            ..Default::default()
        });
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        let pending: Vec<_> = (0..10u8)
            .map(|i| c.call_async(&s.address(), RpcId(1), 0, Bytes::copy_from_slice(&[i])))
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap()[0] as usize, i);
        }
        fabric.stop();
    }

    #[test]
    fn latency_is_applied_both_ways() {
        let fabric = Fabric::new(NetworkModel {
            latency: Duration::from_millis(10),
            ..Default::default()
        });
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        let t0 = Instant::now();
        c.call(&s.address(), RpcId(1), 0, Bytes::new()).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
        fabric.stop();
    }

    #[test]
    fn bulk_expose_pull_release() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        let h = s.expose_bulk(Bytes::from_static(b"0123456789"));
        assert_eq!(&c.bulk_pull(&s.address(), &h, 2, 4).unwrap()[..], b"2345");
        assert_eq!(
            &c.bulk_pull(&s.address(), &h, 0, 10).unwrap()[..],
            b"0123456789"
        );
        let err = c.bulk_pull(&s.address(), &h, 8, 5).unwrap_err();
        assert!(matches!(err, RpcError::BulkOutOfRange { .. }));
        s.release_bulk(&h);
        assert_eq!(
            c.bulk_pull(&s.address(), &h, 0, 1).unwrap_err(),
            RpcError::NoSuchBulk(h.id)
        );
    }

    #[test]
    fn saturation_fails_calls_when_configured() {
        let fabric = Fabric::new(NetworkModel {
            injection_bandwidth: 64.0, // 64 B/s x 1 s window = 64-byte budget
            injection_window: Duration::from_secs(1),
            fail_on_saturation: true,
            ..Default::default()
        });
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        let payload = Bytes::from(vec![0u8; 128]);
        let err = c.call(&s.address(), RpcId(1), 0, payload).unwrap_err();
        assert_eq!(err, RpcError::NetworkSaturated);
        assert_eq!(c.saturation_events(), 1);
    }

    #[test]
    fn admit_shed_answers_busy_without_leaking() {
        use crate::endpoint::testctl::TestAdmission;
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        let ctl = Arc::new(TestAdmission {
            shed_at_admit: true,
            ..Default::default()
        });
        s.set_admission(Some(Arc::clone(&ctl) as Arc<dyn AdmissionControl>));
        let err = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(
            err,
            RpcError::Busy {
                retry_after: Duration::from_millis(7)
            }
        );
        // The one-response-per-request invariant: a shed call still got its
        // answer, so the client's pending map is empty.
        assert_eq!(c.pending_calls(), 0);
        // Admit-shed bypasses the pools and holds no slot.
        assert_eq!(ctl.begins.load(Ordering::SeqCst), 0);
        assert_eq!(ctl.completes.load(Ordering::SeqCst), 0);
        // Clearing the controller restores normal service.
        s.set_admission(None);
        let out = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"y"))
            .unwrap();
        assert_eq!(&out[..], b"y");
    }

    #[test]
    fn begin_shed_releases_slot_exactly_once() {
        use crate::endpoint::testctl::TestAdmission;
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        let ctl = Arc::new(TestAdmission {
            shed_at_begin: true,
            ..Default::default()
        });
        s.set_admission(Some(Arc::clone(&ctl) as Arc<dyn AdmissionControl>));
        let err = c
            .call(&s.address(), RpcId(1), 0, Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(
            err,
            RpcError::Busy {
                retry_after: Duration::from_millis(3)
            }
        );
        assert_eq!(c.pending_calls(), 0);
        assert_eq!(ctl.admits.load(Ordering::SeqCst), 1);
        assert_eq!(ctl.begins.load(Ordering::SeqCst), 1);
        assert_eq!(ctl.completes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn admitted_calls_balance_admission_accounting() {
        use crate::endpoint::testctl::TestAdmission;
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        let ctl = Arc::new(TestAdmission::default());
        s.set_admission(Some(Arc::clone(&ctl) as Arc<dyn AdmissionControl>));
        for i in 0..8u8 {
            let out = c
                .call(&s.address(), RpcId(1), 3, Bytes::from(vec![i]))
                .unwrap();
            assert_eq!(&out[..], &[i]);
        }
        assert_eq!(ctl.admits.load(Ordering::SeqCst), 8);
        assert_eq!(ctl.begins.load(Ordering::SeqCst), 8);
        assert_eq!(ctl.completes.load(Ordering::SeqCst), 8);
        assert_eq!(c.pending_calls(), 0);
    }

    #[test]
    fn coalesced_bursts_charge_gauge_once_per_drain() {
        let fabric = Fabric::new(NetworkModel {
            latency: Duration::from_millis(2),
            ..Default::default()
        });
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        let pending: Vec<_> = (0..32u8)
            .map(|i| c.call_async(&s.address(), RpcId(1), 0, Bytes::copy_from_slice(&[i])))
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap()[0] as usize, i);
        }
        let st = c.stats();
        assert_eq!(st.frames_sent, 32);
        assert!(st.wire_writes >= 1 && st.wire_writes <= st.frames_sent);
        // The NIC token bucket is charged once per drained burst, never
        // per frame: gauge charges mirror physical writes exactly.
        assert_eq!(c.injected_frames(), 32);
        assert_eq!(c.injection_bursts(), st.wire_writes);
        fabric.stop();
    }

    #[test]
    fn stats_count_traffic() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        c.call(&s.address(), RpcId(1), 0, Bytes::from_static(b"xyz"))
            .unwrap();
        let cs = c.stats();
        let ss = s.stats();
        assert_eq!(cs.requests_sent, 1);
        assert_eq!(ss.requests_received, 1);
        assert!(cs.bytes_sent > 3);
        assert!(cs.bytes_received >= 3);
    }

    #[test]
    fn shutdown_fails_new_and_pending_calls() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        s.shutdown();
        let err = c.call(&s.address(), RpcId(1), 0, Bytes::new()).unwrap_err();
        assert!(matches!(err, RpcError::NoSuchEndpoint(_)));
        c.shutdown();
        let err = c.call(&s.address(), RpcId(1), 0, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Shutdown);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_endpoint_name_panics() {
        let fabric = Fabric::new(NetworkModel::default());
        let _a = fabric.endpoint("same");
        let _b = fabric.endpoint("same");
    }

    #[test]
    fn custom_executor_receives_all_requests() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        let c = fabric.endpoint("c");
        s.register(RpcId(1), echo_handler());
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        s.set_executor(Arc::new(move |_rpc, _prov, f| {
            hits2.fetch_add(1, Ordering::SeqCst);
            f();
        }));
        for _ in 0..5 {
            c.call(&s.address(), RpcId(1), 0, Bytes::new()).unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn many_concurrent_callers() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("s");
        s.register(
            RpcId(1),
            Arc::new(|req: Request| {
                let n = u64::from_le_bytes(req.payload[..8].try_into().unwrap());
                Ok(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
            }),
        );
        let addr = s.address();
        let mut threads = Vec::new();
        for t in 0..8u64 {
            let fabric = fabric.clone();
            let addr = addr.clone();
            threads.push(std::thread::spawn(move || {
                let c = fabric.endpoint(&format!("c{t}"));
                for i in 0..100u64 {
                    let out = c
                        .call(&addr, RpcId(1), 0, Bytes::copy_from_slice(&i.to_le_bytes()))
                        .unwrap();
                    assert_eq!(u64::from_le_bytes(out[..8].try_into().unwrap()), i + 1);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.stats().requests_received, 800);
    }
}

#[cfg(test)]
mod timeout_tests {
    use super::*;
    use crate::endpoint::Request;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn pending_response_times_out_on_slow_handler() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("slow");
        let c = fabric.endpoint("client");
        s.register(
            RpcId(1),
            Arc::new(|_req: Request| {
                std::thread::sleep(Duration::from_millis(200));
                Ok(bytes::Bytes::new())
            }),
        );
        // Push handler execution off the caller's thread so the timeout can
        // actually fire while the handler sleeps.
        s.set_executor(Arc::new(|_rpc, _prov, job| {
            std::thread::spawn(job);
        }));
        let pending = c.call_async(&s.address(), RpcId(1), 0, bytes::Bytes::new());
        let err = pending.wait_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // A patient caller still gets the response.
        let ok = c
            .call_async(&s.address(), RpcId(1), 0, bytes::Bytes::new())
            .wait_timeout(Duration::from_secs(5));
        assert!(ok.is_ok());
    }

    #[test]
    fn deadline_against_stalled_handler_leaves_no_pending_entry() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("stalled");
        let c = fabric.endpoint("client");
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release2 = Arc::clone(&release);
        s.register(
            RpcId(1),
            Arc::new(move |_req: Request| {
                while !release2.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Ok(bytes::Bytes::new())
            }),
        );
        s.set_executor(Arc::new(|_rpc, _prov, job| {
            std::thread::spawn(job);
        }));
        let err = c
            .call_with_deadline(
                &s.address(),
                RpcId(1),
                0,
                bytes::Bytes::new(),
                Duration::from_millis(20),
            )
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // The abandoned call must not leak a pending entry.
        assert_eq!(c.pending_calls(), 0);
        // Unstick the handler; its late response must be dropped harmlessly.
        release.store(true, Ordering::Release);
        let ok = c
            .call_async(&s.address(), RpcId(1), 0, bytes::Bytes::new())
            .wait_timeout(Duration::from_secs(5));
        assert!(ok.is_ok());
        assert_eq!(c.pending_calls(), 0);
    }

    #[test]
    fn dropped_request_times_out_and_cancels() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("srv");
        let c = fabric.endpoint("cli");
        s.register(RpcId(1), Arc::new(|req: Request| Ok(req.payload)));
        let mut cfg = crate::fault::FaultConfig::new(77);
        cfg.drop_request = 1.0;
        fabric.install_fault_plan(Arc::new(crate::fault::FaultPlan::new(cfg)));
        let err = c
            .call_with_deadline(
                &s.address(),
                RpcId(1),
                0,
                bytes::Bytes::from_static(b"x"),
                Duration::from_millis(20),
            )
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        assert_eq!(c.pending_calls(), 0);
        assert_eq!(s.stats().requests_received, 0);
        // Clearing the plan restores delivery.
        fabric.clear_fault_plan();
        let out = c
            .call(&s.address(), RpcId(1), 0, bytes::Bytes::from_static(b"y"))
            .unwrap();
        assert_eq!(&out[..], b"y");
    }

    #[test]
    fn duplicated_request_delivers_once_to_caller() {
        let fabric = Fabric::new(NetworkModel::default());
        let s = fabric.endpoint("srv");
        let c = fabric.endpoint("cli");
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        s.register(
            RpcId(1),
            Arc::new(move |req: Request| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Ok(req.payload)
            }),
        );
        let mut cfg = crate::fault::FaultConfig::new(5);
        cfg.duplicate_request = 1.0;
        fabric.install_fault_plan(Arc::new(crate::fault::FaultPlan::new(cfg)));
        let out = c
            .call(&s.address(), RpcId(1), 0, bytes::Bytes::from_static(b"dup"))
            .unwrap();
        assert_eq!(&out[..], b"dup");
        // The handler ran twice (at-most-once is the service layer's job),
        // but the caller saw exactly one response.
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(c.pending_calls(), 0);
    }
}
