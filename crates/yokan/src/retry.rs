//! Client-side retry policy with deterministic backoff and retry counters.
//!
//! Transport-level failures (timeouts, transient disconnects, saturation)
//! are retried with exponential backoff; handler errors are not — they mean
//! the request *arrived* and the service rejected it, so retrying cannot
//! help. Retried mutations are made safe by the service-side dedup window
//! (see [`crate::YokanService`]): the client stamps every mutation with a
//! `(client id, sequence number)` pair that is reused verbatim across
//! retries of the same logical request, so a retry whose original actually
//! landed is recognized and answered from the cached response instead of
//! being applied twice.

use mercurio::RpcError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Retry policy for client RPCs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts for one logical request (first try included).
    pub max_attempts: u32,
    /// Per-attempt deadline; an attempt exceeding it is abandoned (the
    /// transport's pending entry is cancelled) and retried.
    pub rpc_timeout: Duration,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on the computed backoff.
    pub max_backoff: Duration,
    /// Seed for deterministic backoff jitter (no global randomness).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            rpc_timeout: Duration::from_secs(2),
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
            jitter_seed: 0,
        }
    }
}

/// splitmix64 finalizer, used to derive deterministic jitter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Whether `err` is worth retrying. Transport-level failures are, and so
    /// is [`RpcError::Busy`] — explicit overload pushback meaning "not now",
    /// not "no" (the request was shed before being applied, so retrying
    /// after the server's hint is both safe and the intended reaction).
    /// Other handler errors (the service saw the request and said no) are
    /// not.
    pub fn is_retryable(err: &RpcError) -> bool {
        matches!(
            err,
            RpcError::Timeout
                | RpcError::NetworkSaturated
                | RpcError::Transport(_)
                | RpcError::Busy { .. }
        )
    }

    /// The server-provided backoff hint, when `err` carries one.
    pub fn retry_hint(err: &RpcError) -> Option<Duration> {
        match err {
            RpcError::Busy { retry_after } => Some(*retry_after),
            _ => None,
        }
    }

    /// Backoff before retry number `attempt` (1-based) of the logical
    /// request identified by `nonce`. Exponential with a deterministic
    /// jitter in the upper half: `[cap/2, cap]` where
    /// `cap = min(base * 2^(attempt-1), max)`.
    pub fn backoff(&self, attempt: u32, nonce: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let cap = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let half = cap / 2;
        let draw = mix(self.jitter_seed ^ mix(nonce ^ ((attempt as u64) << 48)));
        let frac = (draw >> 11) as f64 / (1u64 << 53) as f64;
        half + Duration::from_nanos((half.as_nanos() as f64 * frac) as u64)
    }
}

/// Counters describing the retry behaviour of a client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// RPC attempts issued (first tries and retries).
    pub attempts: u64,
    /// Logical requests that needed at least one retry.
    pub retried_rpcs: u64,
    /// Retries answered from the service's dedup window (the original
    /// request had already been applied).
    pub deduped_replays: u64,
    /// Logical requests that exhausted every attempt and failed.
    pub gave_up: u64,
    /// `Busy` pushback responses received (overload shedding by the server,
    /// distinct from transport failures).
    pub busy_pushbacks: u64,
    /// Mutations redirected to the next replica of their chain after the
    /// acting head was unreachable (see [`crate::replica`]). A per-target
    /// `gave_up` may precede a successful failover: the *target* was given
    /// up on, not the logical request.
    pub failovers: u64,
    /// Reads answered by a non-tail replica after the tail (or a replica
    /// closer to it) was unreachable.
    pub read_fallbacks: u64,
    /// Reads answered by the *old* owner of a migrating database after the
    /// new owner had no value yet (the dual-read window of a live rescale,
    /// see [`crate::YokanClient::install_dual_read`]).
    pub dual_reads: u64,
}

impl RetryStats {
    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &RetryStats) {
        self.attempts += other.attempts;
        self.retried_rpcs += other.retried_rpcs;
        self.deduped_replays += other.deduped_replays;
        self.gave_up += other.gave_up;
        self.busy_pushbacks += other.busy_pushbacks;
        self.failovers += other.failovers;
        self.read_fallbacks += other.read_fallbacks;
        self.dual_reads += other.dual_reads;
    }

    /// The change relative to an earlier snapshot (saturating).
    pub fn delta_since(&self, baseline: &RetryStats) -> RetryStats {
        RetryStats {
            attempts: self.attempts.saturating_sub(baseline.attempts),
            retried_rpcs: self.retried_rpcs.saturating_sub(baseline.retried_rpcs),
            deduped_replays: self
                .deduped_replays
                .saturating_sub(baseline.deduped_replays),
            gave_up: self.gave_up.saturating_sub(baseline.gave_up),
            busy_pushbacks: self.busy_pushbacks.saturating_sub(baseline.busy_pushbacks),
            failovers: self.failovers.saturating_sub(baseline.failovers),
            read_fallbacks: self.read_fallbacks.saturating_sub(baseline.read_fallbacks),
            dual_reads: self.dual_reads.saturating_sub(baseline.dual_reads),
        }
    }
}

/// Shared atomic counters behind [`RetryStats`].
#[derive(Default)]
pub(crate) struct RetryCounters {
    pub(crate) attempts: AtomicU64,
    pub(crate) retried_rpcs: AtomicU64,
    pub(crate) deduped_replays: AtomicU64,
    pub(crate) gave_up: AtomicU64,
    pub(crate) busy_pushbacks: AtomicU64,
    pub(crate) failovers: AtomicU64,
    pub(crate) read_fallbacks: AtomicU64,
    pub(crate) dual_reads: AtomicU64,
}

impl RetryCounters {
    pub(crate) fn snapshot(&self) -> RetryStats {
        RetryStats {
            attempts: self.attempts.load(Ordering::Relaxed),
            retried_rpcs: self.retried_rpcs.load(Ordering::Relaxed),
            deduped_replays: self.deduped_replays.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
            busy_pushbacks: self.busy_pushbacks.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            read_fallbacks: self.read_fallbacks.load(Ordering::Relaxed),
            dual_reads: self.dual_reads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(RetryPolicy::is_retryable(&RpcError::Timeout));
        assert!(RetryPolicy::is_retryable(&RpcError::NetworkSaturated));
        assert!(RetryPolicy::is_retryable(&RpcError::Transport(
            "rst".into()
        )));
        assert!(RetryPolicy::is_retryable(&RpcError::Busy {
            retry_after: Duration::from_millis(3)
        }));
        assert!(!RetryPolicy::is_retryable(&RpcError::Handler("no".into())));
        assert!(!RetryPolicy::is_retryable(&RpcError::NoSuchRpc(3)));
        assert!(!RetryPolicy::is_retryable(&RpcError::Shutdown));
        assert!(!RetryPolicy::is_retryable(&RpcError::Protocol(
            "bad".into()
        )));
    }

    #[test]
    fn busy_carries_its_hint() {
        assert_eq!(
            RetryPolicy::retry_hint(&RpcError::Busy {
                retry_after: Duration::from_millis(9)
            }),
            Some(Duration::from_millis(9))
        );
        assert_eq!(RetryPolicy::retry_hint(&RpcError::Timeout), None);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            ..Default::default()
        };
        let mut prev_cap = Duration::ZERO;
        for attempt in 1..=10 {
            let b = p.backoff(attempt, 7);
            // Within [cap/2, cap] for the attempt's cap.
            let cap = Duration::from_millis(2)
                .saturating_mul(1 << (attempt - 1).min(20))
                .min(Duration::from_millis(100));
            assert!(b >= cap / 2 && b <= cap, "attempt {attempt}: {b:?}");
            assert!(cap >= prev_cap);
            prev_cap = cap;
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = RetryPolicy {
            jitter_seed: 9,
            ..Default::default()
        };
        let b = RetryPolicy {
            jitter_seed: 9,
            ..Default::default()
        };
        let c = RetryPolicy {
            jitter_seed: 10,
            ..Default::default()
        };
        assert_eq!(a.backoff(2, 5), b.backoff(2, 5));
        let differs = (0..32u64).any(|n| a.backoff(2, n) != c.backoff(2, n));
        assert!(differs, "different seeds never changed the jitter");
    }

    #[test]
    fn stats_merge_and_delta() {
        let mut a = RetryStats {
            attempts: 10,
            retried_rpcs: 2,
            deduped_replays: 1,
            gave_up: 0,
            busy_pushbacks: 4,
            failovers: 2,
            read_fallbacks: 3,
            dual_reads: 2,
        };
        let b = RetryStats {
            attempts: 5,
            retried_rpcs: 1,
            deduped_replays: 0,
            gave_up: 1,
            busy_pushbacks: 1,
            failovers: 1,
            read_fallbacks: 0,
            dual_reads: 1,
        };
        a.merge(&b);
        assert_eq!(a.attempts, 15);
        assert_eq!(a.gave_up, 1);
        assert_eq!(a.busy_pushbacks, 5);
        assert_eq!(a.failovers, 3);
        assert_eq!(a.read_fallbacks, 3);
        assert_eq!(a.dual_reads, 3);
        let d = a.delta_since(&b);
        assert_eq!(d.attempts, 10);
        assert_eq!(d.retried_rpcs, 2);
        assert_eq!(d.busy_pushbacks, 4);
        assert_eq!(d.failovers, 2);
    }
}
