//! Server-side predicate evaluation over columnar pages — the push-down
//! half of the columnar product path.
//!
//! A client compiles its selection into a tiny [`Program`] (a conjunction
//! of per-column predicates), serializes it into the `filter` RPC, and the
//! service evaluates it against stored [`crate::pages`] blobs: pages whose
//! zone map proves no row can pass are skipped without decoding, the rest
//! are evaluated vectorized (one predicate over a whole column into a
//! selection bitmap), and only the id-column values of surviving rows are
//! returned. The ~99% of rows a HEP selection rejects never cross the wire.
//!
//! Predicate semantics mirror the scalar cut style they compile from, NaN
//! included: `NotGt(b)` passes NaN (because `NaN > b` is false, so the
//! scalar code does not reject), while `InRange` fails NaN (because
//! `NaN >= lo` is false). Equality with the scalar loop is pinned by
//! property tests in `nova`.

use crate::error::YokanError;
use crate::pages::{Column, PageReader, ZoneMap};

/// One predicate over one column. All predicates *pass* rows; the program
/// is their conjunction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Pass iff `!(|v| > bound)` — fiducial containment; NaN passes.
    AbsNotGt {
        /// Column index.
        col: u16,
        /// Bound (compared in f64, exact for f32 columns).
        bound: f64,
    },
    /// Pass iff `!(v < bound)`; NaN passes.
    NotLt {
        /// Column index.
        col: u16,
        /// Bound.
        bound: f64,
    },
    /// Pass iff `!(v > bound)`; NaN passes.
    NotGt {
        /// Column index.
        col: u16,
        /// Bound.
        bound: f64,
    },
    /// Pass iff `v >= lo && v <= hi`; NaN fails.
    InRange {
        /// Column index.
        col: u16,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Pass iff `lo <= v <= hi` on an integer column.
    UIntInRange {
        /// Column index.
        col: u16,
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
}

impl Predicate {
    fn col(&self) -> u16 {
        match *self {
            Predicate::AbsNotGt { col, .. }
            | Predicate::NotLt { col, .. }
            | Predicate::NotGt { col, .. }
            | Predicate::InRange { col, .. }
            | Predicate::UIntInRange { col, .. } => col,
        }
    }

    /// Evaluate over one f64-widened value (exact for f32 columns since the
    /// widening conversion preserves order, value and NaN-ness).
    ///
    /// The negated comparisons are load-bearing, not a style accident: NaN
    /// must PASS the `Not*` predicates (`!(NaN > b)` is true while
    /// `NaN <= b` is false), exactly mirroring the scalar cuts that reject
    /// via `>` / `<`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn pass_f64(&self, v: f64) -> bool {
        match *self {
            Predicate::AbsNotGt { bound, .. } => !(v.abs() > bound),
            Predicate::NotLt { bound, .. } => !(v < bound),
            Predicate::NotGt { bound, .. } => !(v > bound),
            Predicate::InRange { lo, hi, .. } => v >= lo && v <= hi,
            Predicate::UIntInRange { .. } => false,
        }
    }

    fn pass_u64(&self, v: u64) -> bool {
        match *self {
            Predicate::UIntInRange { lo, hi, .. } => v >= lo && v <= hi,
            // Float predicates over integer columns widen the value.
            _ => self.pass_f64(v as f64),
        }
    }

    /// Can any row of a page with this zone map pass? `false` means the
    /// whole page is provably rejected and need not be decoded.
    fn page_may_pass(&self, z: &ZoneMap, ty: u8) -> bool {
        let int = ty <= 1;
        match *self {
            // NaN passes these three, so a NaN-bearing page always may pass.
            Predicate::AbsNotGt { bound, .. } => {
                if z.has_nan {
                    return true;
                }
                // All-fail iff every |v| > bound: min > bound or max < -bound.
                !(z.min > bound || z.max < -bound)
            }
            Predicate::NotLt { bound, .. } => {
                if z.has_nan {
                    return true;
                }
                // min/max are NaN-free here (all-NaN pages set has_nan).
                z.max >= bound
            }
            Predicate::NotGt { bound, .. } => {
                if z.has_nan {
                    return true;
                }
                // min/max are NaN-free here (all-NaN pages set has_nan).
                z.min <= bound
            }
            // NaN fails InRange, so NaN cannot rescue a page. An all-NaN
            // float page has min=+inf/max=-inf which correctly fails.
            Predicate::InRange { lo, hi, .. } => !(z.max < lo || z.min > hi),
            Predicate::UIntInRange { lo, hi, .. } => {
                if int {
                    !(z.max_bits < lo || z.min_bits > hi)
                } else {
                    // Program/column mismatch; let row evaluation reject.
                    true
                }
            }
        }
    }

    /// Can every row of the page pass? `true` lets evaluation skip the
    /// column decode for this predicate entirely.
    fn page_all_pass(&self, z: &ZoneMap, ty: u8) -> bool {
        let int = ty <= 1;
        match *self {
            // NaN passes, so only the non-NaN extrema matter.
            Predicate::AbsNotGt { bound, .. } => z.max <= bound && z.min >= -bound,
            Predicate::NotLt { bound, .. } => z.min >= bound,
            Predicate::NotGt { bound, .. } => z.max <= bound,
            Predicate::InRange { lo, hi, .. } => {
                !z.has_nan && z.min >= lo && z.max <= hi && z.min <= z.max
            }
            Predicate::UIntInRange { lo, hi, .. } => int && z.min_bits >= lo && z.max_bits <= hi,
        }
    }
}

/// A conjunction of predicates plus the index of the id column whose
/// surviving values the filter returns.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Column whose values identify surviving rows (must be u64).
    pub id_column: u16,
    /// Predicates; a row survives iff all pass.
    pub predicates: Vec<Predicate>,
}

const OPC_ABS_NOT_GT: u8 = 0;
const OPC_NOT_LT: u8 = 1;
const OPC_NOT_GT: u8 = 2;
const OPC_IN_RANGE: u8 = 3;
const OPC_UINT_IN_RANGE: u8 = 4;

impl Program {
    /// Serialize to the wire format carried inside the filter RPC.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.predicates.len() * 19);
        out.extend_from_slice(&self.id_column.to_le_bytes());
        out.extend_from_slice(&(self.predicates.len() as u16).to_le_bytes());
        for p in &self.predicates {
            match *p {
                Predicate::AbsNotGt { col, bound } => {
                    out.push(OPC_ABS_NOT_GT);
                    out.extend_from_slice(&col.to_le_bytes());
                    out.extend_from_slice(&bound.to_le_bytes());
                    out.extend_from_slice(&0f64.to_le_bytes());
                }
                Predicate::NotLt { col, bound } => {
                    out.push(OPC_NOT_LT);
                    out.extend_from_slice(&col.to_le_bytes());
                    out.extend_from_slice(&bound.to_le_bytes());
                    out.extend_from_slice(&0f64.to_le_bytes());
                }
                Predicate::NotGt { col, bound } => {
                    out.push(OPC_NOT_GT);
                    out.extend_from_slice(&col.to_le_bytes());
                    out.extend_from_slice(&bound.to_le_bytes());
                    out.extend_from_slice(&0f64.to_le_bytes());
                }
                Predicate::InRange { col, lo, hi } => {
                    out.push(OPC_IN_RANGE);
                    out.extend_from_slice(&col.to_le_bytes());
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
                Predicate::UIntInRange { col, lo, hi } => {
                    out.push(OPC_UINT_IN_RANGE);
                    out.extend_from_slice(&col.to_le_bytes());
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parse the wire format; rejects unknown opcodes and truncation.
    pub fn from_bytes(data: &[u8]) -> Result<Program, YokanError> {
        let short = || YokanError::Protocol("truncated filter program".into());
        if data.len() < 4 {
            return Err(short());
        }
        let id_column = u16::from_le_bytes([data[0], data[1]]);
        let n = u16::from_le_bytes([data[2], data[3]]) as usize;
        let mut pos = 4usize;
        let mut predicates = Vec::with_capacity(n);
        for _ in 0..n {
            let opc = *data.get(pos).ok_or_else(short)?;
            pos += 1;
            let col_b = data.get(pos..pos + 2).ok_or_else(short)?;
            let col = u16::from_le_bytes([col_b[0], col_b[1]]);
            pos += 2;
            let a = data.get(pos..pos + 8).ok_or_else(short)?;
            let a = u64::from_le_bytes([a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7]]);
            pos += 8;
            let b = data.get(pos..pos + 8).ok_or_else(short)?;
            let b = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
            pos += 8;
            predicates.push(match opc {
                OPC_ABS_NOT_GT => Predicate::AbsNotGt {
                    col,
                    bound: f64::from_bits(a),
                },
                OPC_NOT_LT => Predicate::NotLt {
                    col,
                    bound: f64::from_bits(a),
                },
                OPC_NOT_GT => Predicate::NotGt {
                    col,
                    bound: f64::from_bits(a),
                },
                OPC_IN_RANGE => Predicate::InRange {
                    col,
                    lo: f64::from_bits(a),
                    hi: f64::from_bits(b),
                },
                OPC_UINT_IN_RANGE => Predicate::UIntInRange { col, lo: a, hi: b },
                other => {
                    return Err(YokanError::Protocol(format!(
                        "unknown filter opcode {other}"
                    )))
                }
            });
        }
        if pos != data.len() {
            return Err(YokanError::Protocol(
                "trailing bytes in filter program".into(),
            ));
        }
        Ok(Program {
            id_column,
            predicates,
        })
    }
}

/// Outcome of evaluating one program against one columnar blob.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterOutput {
    /// Id-column values of surviving rows, in row order.
    pub ids: Vec<u64>,
    /// Rows in the blob.
    pub rows_in: u32,
    /// Pages whose columns were decoded and evaluated.
    pub pages_scanned: u32,
    /// Pages skipped entirely via zone maps.
    pub pages_skipped: u32,
}

/// Evaluate `program` over an encoded columnar blob: zone-map pruning per
/// page, then a vectorized bitmap pass over the decoded columns.
pub fn eval_program(blob: &[u8], program: &Program) -> Result<FilterOutput, YokanError> {
    let reader = PageReader::open(blob)?;
    let n_cols = reader.n_columns();
    let id_col = program.id_column as usize;
    if id_col >= n_cols {
        return Err(YokanError::Protocol("id column out of range".into()));
    }
    for p in &program.predicates {
        if p.col() as usize >= n_cols {
            return Err(YokanError::Protocol("predicate column out of range".into()));
        }
    }
    let mut out = FilterOutput {
        rows_in: reader.n_rows(),
        ..Default::default()
    };
    let mut pass = Vec::new();
    for page in 0..reader.n_pages() {
        // Zone-map pass: skip the page when any predicate proves all rows
        // fail; remember predicates the zone map already proves all-pass.
        let mut needed: Vec<&Predicate> = Vec::with_capacity(program.predicates.len());
        let mut skip = false;
        for p in &program.predicates {
            let c = p.col() as usize;
            let z = reader.zone(page, c);
            let ty = reader.column_type(c);
            if !p.page_may_pass(z, ty) {
                skip = true;
                break;
            }
            if !p.page_all_pass(z, ty) {
                needed.push(p);
            }
        }
        if skip {
            out.pages_skipped += 1;
            continue;
        }
        out.pages_scanned += 1;
        let rows = reader.page_len(page);
        pass.clear();
        pass.resize(rows, true);
        for p in &needed {
            let col = reader.decode_page_column(page, p.col() as usize)?;
            apply_predicate(p, &col, &mut pass);
        }
        if pass.iter().any(|&b| b) {
            match reader.decode_page_column(page, id_col)? {
                Column::U64(ids) => {
                    for (i, &keep) in pass.iter().enumerate() {
                        if keep {
                            out.ids.push(ids[i]);
                        }
                    }
                }
                _ => {
                    return Err(YokanError::Protocol("id column is not u64".into()));
                }
            }
        }
    }
    Ok(out)
}

/// AND one predicate's column-wide verdict into the selection bitmap.
fn apply_predicate(p: &Predicate, col: &Column, pass: &mut [bool]) {
    match col {
        Column::F32(v) => {
            for (b, &x) in pass.iter_mut().zip(v) {
                *b &= p.pass_f64(x as f64);
            }
        }
        Column::F64(v) => {
            for (b, &x) in pass.iter_mut().zip(v) {
                *b &= p.pass_f64(x);
            }
        }
        Column::U32(v) => {
            for (b, &x) in pass.iter_mut().zip(v) {
                *b &= p.pass_u64(x as u64);
            }
        }
        Column::U64(v) => {
            for (b, &x) in pass.iter_mut().zip(v) {
                *b &= p.pass_u64(x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::encode_columns;

    fn blob() -> Vec<u8> {
        // ids, score(f32), count(u32)
        encode_columns(
            &[
                Column::U64(vec![100, 101, 102, 103, 104, 105]),
                Column::F32(vec![0.1, 0.9, f32::NAN, 0.95, 0.2, 0.99]),
                Column::U32(vec![5, 50, 60, 70, 2, 80]),
            ],
            2,
        )
    }

    #[test]
    fn program_round_trips() {
        let prog = Program {
            id_column: 0,
            predicates: vec![
                Predicate::AbsNotGt { col: 1, bound: 3.5 },
                Predicate::NotLt {
                    col: 1,
                    bound: 0.84,
                },
                Predicate::NotGt { col: 1, bound: 0.5 },
                Predicate::InRange {
                    col: 1,
                    lo: 1.0,
                    hi: 4.5,
                },
                Predicate::UIntInRange {
                    col: 2,
                    lo: 30,
                    hi: 500,
                },
            ],
        };
        let bytes = prog.to_bytes();
        assert_eq!(Program::from_bytes(&bytes).unwrap(), prog);
        assert!(Program::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Program::from_bytes(&[9u8; 23]).is_err());
    }

    #[test]
    fn filter_selects_matching_ids() {
        let prog = Program {
            id_column: 0,
            predicates: vec![
                Predicate::NotLt {
                    col: 1,
                    bound: 0.84,
                }, // NaN passes
                Predicate::UIntInRange {
                    col: 2,
                    lo: 30,
                    hi: 500,
                },
            ],
        };
        let out = eval_program(&blob(), &prog).unwrap();
        // Rows: (0.1,5) fail both; (0.9,50) pass; (NaN,60) pass (NaN passes
        // NotLt); (0.95,70) pass; (0.2,2) fail; (0.99,80) pass.
        assert_eq!(out.ids, vec![101, 102, 103, 105]);
        assert_eq!(out.rows_in, 6);
        assert_eq!(out.pages_scanned + out.pages_skipped, 3);
    }

    #[test]
    fn zone_maps_skip_hopeless_pages() {
        // Page 0 rows (0.1, 0.9): max 0.9 < 10 → all fail NotLt(10)?  No:
        // use a bound far above every value so min/max prove all-fail.
        let prog = Program {
            id_column: 0,
            predicates: vec![Predicate::NotLt {
                col: 1,
                bound: 100.0,
            }],
        };
        let out = eval_program(&blob(), &prog).unwrap();
        // Page 1 holds a NaN (passes NotLt) → must be scanned; pages 0 and 2
        // are provably hopeless and skipped.
        assert_eq!(out.pages_skipped, 2);
        assert_eq!(out.pages_scanned, 1);
        assert_eq!(out.ids, vec![102]);
    }

    #[test]
    fn all_pass_pages_skip_column_decodes() {
        let prog = Program {
            id_column: 0,
            predicates: vec![Predicate::NotGt { col: 2, bound: 1e9 }],
        };
        let out = eval_program(&blob(), &prog).unwrap();
        assert_eq!(out.ids, vec![100, 101, 102, 103, 104, 105]);
    }

    #[test]
    fn bad_program_is_rejected() {
        let prog = Program {
            id_column: 9,
            predicates: vec![],
        };
        assert!(eval_program(&blob(), &prog).is_err());
        let prog = Program {
            id_column: 0,
            predicates: vec![Predicate::NotGt { col: 7, bound: 0.0 }],
        };
        assert!(eval_program(&blob(), &prog).is_err());
        assert!(eval_program(
            b"not a page blob",
            &Program {
                id_column: 0,
                predicates: vec![],
            }
        )
        .is_err());
    }
}
