//! `yokan` — a remotely-accessible, single-node key-value storage component,
//! modeled after Mochi's [Yokan].
//!
//! Yokan is the storage heart of HEPnOS (paper §II-B): each server node runs
//! a set of Yokan *providers*, each serving one or more *databases* backed
//! either by memory (`std::map`) or by a persistent engine (RocksDB). Small
//! values travel inlined in RPCs; large values and batches move through bulk
//! (RDMA) transfers. Keys are sorted, and iteration primitives
//! (`list_keys` / `list_keyvals` with a lower bound and prefix) are what
//! HEPnOS builds its container hierarchy on.
//!
//! This crate provides:
//!
//! * [`Backend`] — the storage abstraction, with [`MemBackend`]
//!   (`std::map` analogue) and [`LsmBackend`] (RocksDB analogue, backed by
//!   our [`lsmdb`] engine);
//! * [`YokanService`] — the server side: registers the RPC handlers on a
//!   [`margo::MargoInstance`] and routes `(provider_id, db_name)` to
//!   backends;
//! * [`YokanClient`] / [`DbTarget`] — the client side, offering single and
//!   batched operations, automatically switching to bulk transfers above a
//!   configurable threshold.
//!
//! [Yokan]: https://mochi.readthedocs.io/en/latest/yokan.html

#![warn(missing_docs)]

mod backend;
mod client;
mod encoding;
mod error;
pub mod filter;
pub mod pages;
pub mod replica;
mod retry;
mod service;

pub use backend::{Backend, BackendStats, LsmBackend, MemBackend, WatermarkConfig};
pub use client::{
    DbTarget, FilterReply, PendingExistsMulti, PendingGetMulti, PendingListKeys, PendingPut,
    YokanClient,
};
pub use error::YokanError;
pub use filter::{FilterOutput, Predicate, Program};
pub use pages::{Column, PageReader};
pub use replica::{build_chains, resync_replicas, ForwardParams, ForwardStats, ResyncStats};
pub use retry::{RetryPolicy, RetryStats};
pub use service::{MigrationStats, YokanService, PROVIDER_RPC_BASE};
