//! Wire encoding helpers for Yokan RPC payloads.
//!
//! All integers are little-endian; byte strings are `u32`-length-prefixed.

use crate::error::YokanError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

pub(crate) fn put_bytes(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

pub(crate) fn get_bytes(buf: &mut Bytes) -> Result<Bytes, YokanError> {
    if buf.remaining() < 4 {
        return Err(YokanError::Protocol("short length prefix".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(YokanError::Protocol("truncated byte string".into()));
    }
    Ok(buf.split_to(len))
}

pub(crate) fn get_u32(buf: &mut Bytes) -> Result<u32, YokanError> {
    if buf.remaining() < 4 {
        return Err(YokanError::Protocol("short u32".into()));
    }
    Ok(buf.get_u32_le())
}

pub(crate) fn get_u64(buf: &mut Bytes) -> Result<u64, YokanError> {
    if buf.remaining() < 8 {
        return Err(YokanError::Protocol("short u64".into()));
    }
    Ok(buf.get_u64_le())
}

pub(crate) fn get_u8(buf: &mut Bytes) -> Result<u8, YokanError> {
    if buf.remaining() < 1 {
        return Err(YokanError::Protocol("short u8".into()));
    }
    Ok(buf.get_u8())
}

/// Exact number of bytes [`encode_pairs_into`] will append for `pairs`.
/// Computing this up front lets callers reserve once and never reallocate
/// while encoding — the hot path of every batched ingest RPC.
pub(crate) fn pairs_encoded_len(pairs: &[crate::backend::KeyValue]) -> usize {
    4 + pairs
        .iter()
        .map(|(k, v)| 8 + k.len() + v.len())
        .sum::<usize>()
}

/// Append the encoded pair block to `buf`. Callers are expected to have
/// reserved [`pairs_encoded_len`] bytes already.
pub(crate) fn encode_pairs_into(buf: &mut BytesMut, pairs: &[crate::backend::KeyValue]) {
    buf.put_u32_le(pairs.len() as u32);
    for (k, v) in pairs {
        put_bytes(buf, k);
        put_bytes(buf, v);
    }
}

/// Encode a list of `(key, value)` pairs into one contiguous buffer
/// (used both inline and as a bulk payload).
pub(crate) fn encode_pairs(pairs: &[crate::backend::KeyValue]) -> Bytes {
    let mut buf = BytesMut::with_capacity(pairs_encoded_len(pairs));
    encode_pairs_into(&mut buf, pairs);
    buf.freeze()
}

pub(crate) fn decode_pairs(buf: &mut Bytes) -> Result<Vec<crate::backend::KeyValue>, YokanError> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let k = get_bytes(buf)?.to_vec();
        let v = get_bytes(buf)?.to_vec();
        out.push((k, v));
    }
    Ok(out)
}

/// Exact number of bytes [`encode_keys_into`] will append for `keys`.
pub(crate) fn keys_encoded_len(keys: &[Vec<u8>]) -> usize {
    4 + keys.iter().map(|k| 4 + k.len()).sum::<usize>()
}

/// Append the encoded key block to `buf`; callers reserve
/// [`keys_encoded_len`] up front so encoding never reallocates.
pub(crate) fn encode_keys_into(buf: &mut BytesMut, keys: &[Vec<u8>]) {
    buf.put_u32_le(keys.len() as u32);
    for k in keys {
        put_bytes(buf, k);
    }
}

/// Encode a list of keys.
pub(crate) fn encode_keys(keys: &[Vec<u8>]) -> Bytes {
    let mut buf = BytesMut::with_capacity(keys_encoded_len(keys));
    encode_keys_into(&mut buf, keys);
    buf.freeze()
}

pub(crate) fn decode_keys(buf: &mut Bytes) -> Result<Vec<Vec<u8>>, YokanError> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_bytes(buf)?.to_vec());
    }
    Ok(out)
}

/// Length of the byte prefix shared by every key in `keys`.
fn common_prefix_len(keys: &[Vec<u8>]) -> usize {
    let Some(first) = keys.first() else { return 0 };
    let mut p = first.len();
    for k in &keys[1..] {
        p = p.min(k.len());
        let mut i = 0;
        while i < p && k[i] == first[i] {
            i += 1;
        }
        p = i;
    }
    p
}

/// Length of the byte suffix shared by every key once the first
/// `prefix_len` bytes are set aside (so prefix and suffix never overlap).
fn common_suffix_len(keys: &[Vec<u8>], prefix_len: usize) -> usize {
    let Some(first) = keys.first() else { return 0 };
    let mut s = first.len() - prefix_len;
    for k in &keys[1..] {
        s = s.min(k.len() - prefix_len);
        let mut i = 0;
        while i < s && k[k.len() - 1 - i] == first[first.len() - 1 - i] {
            i += 1;
        }
        s = i;
    }
    s
}

/// Encode a key batch with the shared prefix and suffix factored out —
/// sent once for the batch instead of once per key. Product keys of one
/// container run share the `<uuid><run><subrun>` head and the
/// `<label>#<type>` tail, so for big batches the per-key payload shrinks
/// to the event coordinates alone.
pub(crate) fn encode_keys_factored(keys: &[Vec<u8>]) -> Bytes {
    let p = common_prefix_len(keys);
    let s = common_suffix_len(keys, p);
    let middles: usize = keys.iter().map(|k| 4 + k.len() - p - s).sum();
    let mut buf = BytesMut::with_capacity(4 + p + 4 + s + 4 + middles);
    match keys.first() {
        Some(first) => {
            put_bytes(&mut buf, &first[..p]);
            put_bytes(&mut buf, &first[first.len() - s..]);
        }
        None => {
            put_bytes(&mut buf, b"");
            put_bytes(&mut buf, b"");
        }
    }
    buf.put_u32_le(keys.len() as u32);
    for k in keys {
        put_bytes(&mut buf, &k[p..k.len() - s]);
    }
    buf.freeze()
}

/// Decode a batch produced by [`encode_keys_factored`], reassembling each
/// key as `prefix + middle + suffix`.
pub(crate) fn decode_keys_factored(buf: &mut Bytes) -> Result<Vec<Vec<u8>>, YokanError> {
    let prefix = get_bytes(buf)?;
    let suffix = get_bytes(buf)?;
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let middle = get_bytes(buf)?;
        let mut key = Vec::with_capacity(prefix.len() + middle.len() + suffix.len());
        key.extend_from_slice(&prefix);
        key.extend_from_slice(&middle);
        key.extend_from_slice(&suffix);
        out.push(key);
    }
    Ok(out)
}

/// Encode a list of optional values (for `get_multi` responses).
pub(crate) fn encode_optionals(vals: &[Option<Vec<u8>>]) -> Bytes {
    let total: usize = vals
        .iter()
        .map(|v| 1 + v.as_ref().map_or(0, |v| 4 + v.len()))
        .sum();
    let mut buf = BytesMut::with_capacity(4 + total);
    buf.put_u32_le(vals.len() as u32);
    for v in vals {
        match v {
            Some(data) => {
                buf.put_u8(1);
                put_bytes(&mut buf, data);
            }
            None => buf.put_u8(0),
        }
    }
    buf.freeze()
}

/// Zero-copy twin of [`decode_optionals`]: each present value is a `Bytes`
/// slice sharing the response buffer instead of a fresh `Vec` copy. The
/// asynchronous read path hands these slices all the way to the analysis
/// callback, so a prefetched product is never copied after it leaves the
/// socket buffer.
pub(crate) fn decode_optionals_shared(buf: &mut Bytes) -> Result<Vec<Option<Bytes>>, YokanError> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        match get_u8(buf)? {
            0 => out.push(None),
            1 => out.push(Some(get_bytes(buf)?)),
            t => return Err(YokanError::Protocol(format!("bad optional tag {t}"))),
        }
    }
    Ok(out)
}

pub(crate) fn decode_optionals(buf: &mut Bytes) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        match get_u8(buf)? {
            0 => out.push(None),
            1 => out.push(Some(get_bytes(buf)?.to_vec())),
            t => return Err(YokanError::Protocol(format!("bad optional tag {t}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        let mut b = buf.freeze();
        assert_eq!(&get_bytes(&mut b).unwrap()[..], b"hello");
        assert_eq!(&get_bytes(&mut b).unwrap()[..], b"");
        assert!(get_bytes(&mut b).is_err());
    }

    #[test]
    fn pairs_round_trip() {
        let pairs = vec![
            (b"k1".to_vec(), b"v1".to_vec()),
            (Vec::new(), vec![0u8; 100]),
        ];
        let mut enc = encode_pairs(&pairs);
        assert_eq!(decode_pairs(&mut enc).unwrap(), pairs);
    }

    #[test]
    fn keys_round_trip() {
        let keys = vec![b"a".to_vec(), b"bb".to_vec(), Vec::new()];
        let mut enc = encode_keys(&keys);
        assert_eq!(decode_keys(&mut enc).unwrap(), keys);
    }

    #[test]
    fn factored_keys_round_trip() {
        let cases: Vec<Vec<Vec<u8>>> = vec![
            vec![],
            vec![b"only".to_vec()],
            vec![b"aa".to_vec(), b"aa".to_vec(), b"aa".to_vec()],
            vec![b"aa".to_vec(), b"aaa".to_vec()],
            vec![b"head-1-tail".to_vec(), b"head-22-tail".to_vec()],
            vec![b"x".to_vec(), b"completely".to_vec(), b"different".to_vec()],
            vec![Vec::new(), b"nonempty".to_vec()],
        ];
        for keys in cases {
            let mut enc = encode_keys_factored(&keys);
            assert_eq!(
                decode_keys_factored(&mut enc).unwrap(),
                keys,
                "case {keys:?}"
            );
            assert!(!enc.has_remaining());
        }
    }

    #[test]
    fn factored_keys_shrink_shared_batches() {
        let keys: Vec<Vec<u8>> = (0..100u64)
            .map(|e| {
                let mut k = b"uuid+run+subrun:".to_vec();
                k.extend_from_slice(&e.to_be_bytes());
                k.extend_from_slice(b"rec.slc#nova::ColumnarSlices");
                k
            })
            .collect();
        let plain = encode_keys(&keys);
        let factored = encode_keys_factored(&keys);
        assert!(
            factored.len() * 3 < plain.len(),
            "factored {} vs plain {}",
            factored.len(),
            plain.len()
        );
    }

    #[test]
    fn optionals_round_trip() {
        let vals = vec![Some(b"x".to_vec()), None, Some(Vec::new())];
        let mut enc = encode_optionals(&vals);
        assert_eq!(decode_optionals(&mut enc).unwrap(), vals);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let pairs = vec![(b"k".to_vec(), b"v".to_vec())];
        let enc = encode_pairs(&pairs);
        let mut cut = enc.slice(0..enc.len() - 1);
        assert!(decode_pairs(&mut cut).is_err());
    }
}
