//! Server side: the Yokan provider service.

use crate::backend::Backend;
use crate::encoding::*;
use crate::error::YokanError;
use argos::Eventual;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use margo::MargoInstance;
use mercurio::{BulkHandle, Endpoint, Request, RpcError, RpcId};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Base RPC id of the Yokan protocol; ids `base..base+13` are used.
pub const PROVIDER_RPC_BASE: u16 = 100;

pub(crate) const OP_PUT: u16 = PROVIDER_RPC_BASE;
pub(crate) const OP_PUT_MULTI: u16 = PROVIDER_RPC_BASE + 1;
pub(crate) const OP_GET: u16 = PROVIDER_RPC_BASE + 2;
pub(crate) const OP_GET_MULTI: u16 = PROVIDER_RPC_BASE + 3;
pub(crate) const OP_EXISTS: u16 = PROVIDER_RPC_BASE + 4;
pub(crate) const OP_ERASE: u16 = PROVIDER_RPC_BASE + 5;
pub(crate) const OP_LIST_KEYS: u16 = PROVIDER_RPC_BASE + 6;
pub(crate) const OP_LIST_KEYVALS: u16 = PROVIDER_RPC_BASE + 7;
pub(crate) const OP_COUNT: u16 = PROVIDER_RPC_BASE + 8;
pub(crate) const OP_LIST_DBS: u16 = PROVIDER_RPC_BASE + 9;
pub(crate) const OP_ERASE_MULTI: u16 = PROVIDER_RPC_BASE + 10;
pub(crate) const OP_PUT_IF_ABSENT: u16 = PROVIDER_RPC_BASE + 11;
pub(crate) const OP_EXISTS_MULTI: u16 = PROVIDER_RPC_BASE + 12;
pub(crate) const OP_FILTER: u16 = PROVIDER_RPC_BASE + 13;

/// Per-key reply tags for [`OP_FILTER`].
pub(crate) const FILTER_MISSING: u8 = 0;
pub(crate) const FILTER_NOT_COLUMNAR: u8 = 1;
pub(crate) const FILTER_IDS: u8 = 2;

pub(crate) const MODE_INLINE: u8 = 0;
pub(crate) const MODE_BULK: u8 = 1;

/// Replay markers prefixed to every mutation response: whether the service
/// applied the mutation now or answered from its dedup window.
pub(crate) const REPLAY_FRESH: u8 = 0;
pub(crate) const REPLAY_CACHED: u8 = 1;

/// Default per-client dedup window: responses remembered per client so
/// retried mutations are applied at-most-once. Bounds service memory.
const DEFAULT_DEDUP_WINDOW: usize = 1024;

/// Prefix a mutation response with its replay marker.
fn mark_replay(flag: u8, resp: &Bytes) -> Bytes {
    let mut out = BytesMut::with_capacity(1 + resp.len());
    out.put_u8(flag);
    out.put_slice(resp);
    out.freeze()
}

/// Mutations carry the `(client id, seq)` dedup stamp and a replay-marked
/// response; reads are idempotent and skip the machinery entirely.
fn is_mutation(op: u16) -> bool {
    matches!(
        op,
        x if x == OP_PUT
            || x == OP_PUT_MULTI
            || x == OP_ERASE
            || x == OP_ERASE_MULTI
            || x == OP_PUT_IF_ABSENT
    )
}

/// Multi-key reads at or above this many keys are fanned out across the
/// provider's argos pool; below it the per-task overhead outweighs the
/// parallelism.
const FANOUT_THRESHOLD: usize = 32;

/// Number of chunks a fanned-out batch is split into.
const FANOUT_CHUNKS: usize = 4;

/// A batched read against a backend, run per chunk by the fan-out path.
/// A trait alias in spirit: plain `fn` pointers for the simple reads, and
/// capturing closures (wrapped in `Arc` by the fan-out) for the filter
/// path, which carries its predicate program into every chunk.
trait MultiReadOp<T>: Fn(&dyn Backend, &[Vec<u8>]) -> Result<Vec<T>, YokanError> {}
impl<T, F: Fn(&dyn Backend, &[Vec<u8>]) -> Result<Vec<T>, YokanError>> MultiReadOp<T> for F {}

/// Encode one per-key reply of the filter RPC: what happened to the stored
/// value under that key. Corrupt columnar blobs fail the whole RPC — they
/// indicate storage damage, not a client mistake.
fn encode_filter_reply(
    value: Option<&[u8]>,
    prog: &crate::filter::Program,
) -> Result<Bytes, YokanError> {
    let mut out = BytesMut::new();
    match value {
        None => out.put_u8(FILTER_MISSING),
        Some(v) if !crate::pages::is_columnar(v) => out.put_u8(FILTER_NOT_COLUMNAR),
        Some(v) => {
            let res = crate::filter::eval_program(v, prog)?;
            out.reserve(1 + 20 + 8 * res.ids.len());
            out.put_u8(FILTER_IDS);
            out.put_u32_le(res.rows_in);
            out.put_u32_le(res.pages_scanned);
            out.put_u32_le(res.pages_skipped);
            out.put_u32_le(v.len() as u32);
            out.put_u32_le(res.ids.len() as u32);
            for id in &res.ids {
                out.put_u64_le(*id);
            }
        }
    }
    Ok(out.freeze())
}

struct ProviderState {
    databases: HashMap<String, Arc<dyn Backend>>,
    /// The argos pool this provider is mapped to, used to fan large
    /// multi-key reads out across the pool's execution streams.
    pool: Option<argos::Pool>,
}

/// One remembered mutation in a client's dedup window.
enum Slot {
    /// The mutation is being applied right now; duplicates wait on the
    /// eventual. `None` signals the apply failed (the slot is released and
    /// the waiting duplicate re-claims and re-applies).
    InFlight(Eventual<Option<Bytes>>),
    /// The mutation was applied; this is its cached response.
    Done(Bytes),
}

#[derive(Default)]
struct ClientWindow {
    /// Slots keyed by sequence number; BTreeMap so pruning evicts the
    /// oldest sequence first.
    slots: BTreeMap<u64, Slot>,
}

struct ServiceInner {
    endpoint: Arc<dyn Endpoint>,
    providers: RwLock<HashMap<u16, ProviderState>>,
    /// Per-client dedup windows for at-most-once mutations. The lock is
    /// held only to claim/publish slots, never across a backend apply.
    dedup: Mutex<HashMap<u64, ClientWindow>>,
    dedup_window: AtomicUsize,
    deduped_replays: AtomicU64,
}

/// The server-side Yokan service: owns the providers and their databases,
/// and answers the Yokan RPCs registered on a [`MargoInstance`].
///
/// One service is registered per Margo instance; multiple providers (each
/// with its own argos pool, per the paper's 16-providers-per-node layout)
/// are multiplexed by provider id.
#[derive(Clone)]
pub struct YokanService {
    inner: Arc<ServiceInner>,
}

impl YokanService {
    /// Create the service and register its RPC handlers on `margo`.
    pub fn register(margo: &MargoInstance) -> YokanService {
        let inner = Arc::new(ServiceInner {
            endpoint: Arc::clone(margo.endpoint()),
            providers: RwLock::new(HashMap::new()),
            dedup: Mutex::new(HashMap::new()),
            dedup_window: AtomicUsize::new(DEFAULT_DEDUP_WINDOW),
            deduped_replays: AtomicU64::new(0),
        });
        let svc = YokanService { inner };
        for op in [
            OP_PUT,
            OP_PUT_MULTI,
            OP_GET,
            OP_GET_MULTI,
            OP_EXISTS,
            OP_ERASE,
            OP_LIST_KEYS,
            OP_LIST_KEYVALS,
            OP_COUNT,
            OP_LIST_DBS,
            OP_ERASE_MULTI,
            OP_PUT_IF_ABSENT,
            OP_EXISTS_MULTI,
            OP_FILTER,
        ] {
            let svc2 = svc.clone();
            margo.register_rpc(
                RpcId(op),
                Arc::new(move |req: Request| svc2.handle(req).map_err(|e| e.to_rpc())),
            );
        }
        svc
    }

    /// Declare a provider (id must be fresh) and map it to an argos pool on
    /// the Margo instance.
    pub fn add_provider(
        &self,
        margo: &MargoInstance,
        provider_id: u16,
        pool: &str,
    ) -> Result<(), margo::MargoError> {
        margo.assign_provider_pool(provider_id, pool)?;
        let pool = margo.runtime().pool(pool);
        self.inner
            .providers
            .write()
            .entry(provider_id)
            .or_insert_with(|| ProviderState {
                databases: HashMap::new(),
                pool,
            });
        Ok(())
    }

    /// Attach a database to a provider.
    ///
    /// # Panics
    ///
    /// Panics if the provider was never added or the name is taken —
    /// misconfiguration that Bedrock-style bootstrap must surface loudly.
    pub fn add_database(&self, provider_id: u16, name: &str, backend: Arc<dyn Backend>) {
        let mut provs = self.inner.providers.write();
        let prov = provs
            .get_mut(&provider_id)
            .unwrap_or_else(|| panic!("provider {provider_id} not registered"));
        let prev = prov.databases.insert(name.to_string(), backend);
        assert!(
            prev.is_none(),
            "database {name} already exists on provider {provider_id}"
        );
    }

    /// Per-database storage counters across all providers, as
    /// `(provider_id, database name, stats)` sorted by provider then name.
    /// Used by benchmarks and operators to see cache effectiveness and
    /// shard balance.
    pub fn backend_stats(&self) -> Vec<(u16, String, crate::backend::BackendStats)> {
        let provs = self.inner.providers.read();
        let mut out = Vec::new();
        for (&pid, prov) in provs.iter() {
            for (name, db) in &prov.databases {
                out.push((pid, name.clone(), db.stats()));
            }
        }
        out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        out
    }

    /// Mutations answered from the dedup window instead of being applied a
    /// second time (duplicated frames and retries whose original landed).
    pub fn deduped_replays(&self) -> u64 {
        self.inner.deduped_replays.load(Ordering::Relaxed)
    }

    /// Bound the per-client dedup window: at most `cap` remembered
    /// responses per client (oldest sequence numbers evicted first). A
    /// retry arriving after its slot was evicted re-applies the mutation,
    /// so `cap` should exceed a client's maximum in-flight requests.
    pub fn set_dedup_window(&self, cap: usize) {
        self.inner.dedup_window.store(cap.max(1), Ordering::Relaxed);
    }

    /// Names of the databases attached to one provider, sorted.
    pub fn database_names(&self, provider_id: u16) -> Vec<String> {
        let provs = self.inner.providers.read();
        let mut names: Vec<String> = provs
            .get(&provider_id)
            .map(|p| p.databases.keys().cloned().collect())
            .unwrap_or_default();
        names.sort();
        names
    }

    fn db(&self, provider_id: u16, name: &[u8]) -> Result<Arc<dyn Backend>, YokanError> {
        self.db_and_pool(provider_id, name).map(|(db, _)| db)
    }

    fn db_and_pool(
        &self,
        provider_id: u16,
        name: &[u8],
    ) -> Result<(Arc<dyn Backend>, Option<argos::Pool>), YokanError> {
        let name = std::str::from_utf8(name)
            .map_err(|_| YokanError::Protocol("db name not utf8".into()))?;
        let provs = self.inner.providers.read();
        let prov = provs
            .get(&provider_id)
            .ok_or(YokanError::NoSuchProvider(provider_id))?;
        let db = prov
            .databases
            .get(name)
            .cloned()
            .ok_or_else(|| YokanError::NoSuchDatabase(name.to_string()))?;
        Ok((db, prov.pool.clone()))
    }

    /// Run a multi-key *read* against `backend`, fanning chunks out across
    /// the provider's pool when the batch is large enough.
    ///
    /// Only reads are fanned out: `put_multi` is one atomic batch at the
    /// backend (a single `WriteBatch` on the LSM engine, an all-shards-locked
    /// apply on the in-memory map), and splitting it would break that
    /// contract. Reads have no ordering between keys, so chunking is free.
    ///
    /// The handler itself may be running on the only execution stream that
    /// drains this pool, in which case waiting passively on the spawned
    /// chunks would deadlock. While any chunk is unfinished we *work-help*:
    /// pop and run queued tasks from the pool (our own chunks included), and
    /// only yield when the queue is momentarily empty.
    fn fan_out_read<T, F>(
        pool: Option<argos::Pool>,
        backend: Arc<dyn Backend>,
        keys: Vec<Vec<u8>>,
        op: F,
    ) -> Result<Vec<T>, YokanError>
    where
        T: Send + 'static,
        F: MultiReadOp<T> + Send + Sync + 'static,
    {
        let fan = match pool {
            Some(p) if keys.len() >= FANOUT_THRESHOLD && !p.is_closed() => p,
            _ => return op(&*backend, &keys),
        };
        let op = Arc::new(op);
        let chunk = keys.len().div_ceil(FANOUT_CHUNKS);
        let mut handles = Vec::with_capacity(FANOUT_CHUNKS);
        let mut rest = keys;
        while !rest.is_empty() {
            let tail = if rest.len() > chunk {
                rest.split_off(chunk)
            } else {
                Vec::new()
            };
            let part = std::mem::replace(&mut rest, tail);
            let b = Arc::clone(&backend);
            let op2 = Arc::clone(&op);
            handles.push(fan.spawn(move || op2(&*b, &part)));
        }
        let mut out = Vec::new();
        for h in handles {
            while !h.is_finished() {
                if let Some(task) = fan.try_pop() {
                    task();
                } else {
                    std::thread::yield_now();
                }
            }
            out.extend(h.join()?);
        }
        Ok(out)
    }

    fn handle(&self, req: Request) -> Result<Bytes, YokanError> {
        if is_mutation(req.rpc_id.0) {
            let mut p = req.payload.clone();
            if p.remaining() < 16 {
                return Err(YokanError::Protocol("short mutation header".into()));
            }
            let client_id = p.get_u64_le();
            let seq = p.get_u64_le();
            return self.handle_mutation(&req, client_id, seq, p);
        }
        self.handle_read(req)
    }

    /// At-most-once wrapper around [`YokanService::apply_mutation`].
    ///
    /// Claims the `(client, seq)` slot, applies the mutation with the dedup
    /// lock *released*, then publishes the response. A duplicate arriving
    /// before the apply finishes waits on the in-flight slot; one arriving
    /// after is answered from the cached response. Failed applies release
    /// the slot so a retry re-applies.
    fn handle_mutation(
        &self,
        req: &Request,
        client_id: u64,
        seq: u64,
        payload: Bytes,
    ) -> Result<Bytes, YokanError> {
        loop {
            let in_flight;
            {
                let mut dedup = self.inner.dedup.lock();
                let win = dedup.entry(client_id).or_default();
                match win.slots.get(&seq) {
                    Some(Slot::Done(resp)) => {
                        self.inner.deduped_replays.fetch_add(1, Ordering::Relaxed);
                        return Ok(mark_replay(REPLAY_CACHED, resp));
                    }
                    Some(Slot::InFlight(ev)) => in_flight = ev.clone(),
                    None => {
                        win.slots.insert(seq, Slot::InFlight(Eventual::new()));
                        break;
                    }
                }
            }
            match in_flight.wait_cloned() {
                Some(resp) => {
                    self.inner.deduped_replays.fetch_add(1, Ordering::Relaxed);
                    return Ok(mark_replay(REPLAY_CACHED, &resp));
                }
                // The original apply failed and released the slot; loop to
                // re-claim and apply this duplicate as a fresh attempt.
                None => continue,
            }
        }
        let result = self.apply_mutation(req, payload);
        let mut dedup = self.inner.dedup.lock();
        let win = dedup.entry(client_id).or_default();
        match result {
            Ok(resp) => {
                if let Some(Slot::InFlight(ev)) = win.slots.insert(seq, Slot::Done(resp.clone())) {
                    ev.set(Some(resp.clone()));
                }
                let cap = self.inner.dedup_window.load(Ordering::Relaxed);
                while win.slots.len() > cap {
                    let &oldest = win.slots.keys().next().expect("non-empty window");
                    if matches!(win.slots.get(&oldest), Some(Slot::InFlight(_))) {
                        // Never evict an in-flight slot: its waiters hold
                        // the eventual and the apply will publish through it.
                        break;
                    }
                    win.slots.remove(&oldest);
                }
                Ok(mark_replay(REPLAY_FRESH, &resp))
            }
            Err(e) => {
                if let Some(Slot::InFlight(ev)) = win.slots.remove(&seq) {
                    ev.set(None);
                }
                Err(e)
            }
        }
    }

    /// Apply one mutation RPC. `p` starts at the database name (the dedup
    /// stamp has been consumed by the caller).
    fn apply_mutation(&self, req: &Request, mut p: Bytes) -> Result<Bytes, YokanError> {
        match req.rpc_id.0 {
            x if x == OP_PUT => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                let val = get_bytes(&mut p)?;
                self.db(req.provider_id, &db)?.put(&key, &val)?;
                Ok(Bytes::new())
            }
            x if x == OP_PUT_MULTI => {
                let db = get_bytes(&mut p)?;
                let backend = self.db(req.provider_id, &db)?;
                let mode = get_u8(&mut p)?;
                let pairs = match mode {
                    MODE_INLINE => decode_pairs(&mut p)?,
                    MODE_BULK => {
                        // Pull the encoded pair block from the caller's
                        // exposed region (the RDMA path for batches).
                        let handle = BulkHandle::decode_from(&mut p)
                            .ok_or_else(|| YokanError::Protocol("bad bulk handle".into()))?;
                        let mut data = self
                            .inner
                            .endpoint
                            .bulk_pull(&req.source, &handle, 0, handle.len)
                            .map_err(YokanError::Rpc)?;
                        decode_pairs(&mut data)?
                    }
                    m => return Err(YokanError::Protocol(format!("bad put mode {m}"))),
                };
                backend.put_multi(&pairs)?;
                let mut out = BytesMut::with_capacity(4);
                out.put_u32_le(pairs.len() as u32);
                Ok(out.freeze())
            }
            x if x == OP_ERASE => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                self.db(req.provider_id, &db)?.erase(&key)?;
                Ok(Bytes::new())
            }
            x if x == OP_PUT_IF_ABSENT => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                let val = get_bytes(&mut p)?;
                let existing = self.db(req.provider_id, &db)?.put_if_absent(&key, &val)?;
                Ok(encode_optionals(&[existing]))
            }
            x if x == OP_ERASE_MULTI => {
                let db = get_bytes(&mut p)?;
                let keys = decode_keys(&mut p)?;
                self.db(req.provider_id, &db)?.erase_multi(&keys)?;
                Ok(Bytes::new())
            }
            other => Err(YokanError::Rpc(RpcError::NoSuchRpc(other))),
        }
    }

    fn handle_read(&self, req: Request) -> Result<Bytes, YokanError> {
        let mut p = req.payload.clone();
        match req.rpc_id.0 {
            x if x == OP_LIST_DBS => {
                let names = self.database_names(req.provider_id);
                let keys: Vec<Vec<u8>> = names.into_iter().map(|n| n.into_bytes()).collect();
                Ok(encode_keys(&keys))
            }
            x if x == OP_GET => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                let val = self.db(req.provider_id, &db)?.get(&key)?;
                Ok(encode_optionals(&[val]))
            }
            x if x == OP_GET_MULTI => {
                let db = get_bytes(&mut p)?;
                let keys = decode_keys(&mut p)?;
                let (backend, pool) = self.db_and_pool(req.provider_id, &db)?;
                let vals = Self::fan_out_read(pool, backend, keys, |b, ks| b.get_multi(ks))?;
                Ok(encode_optionals(&vals))
            }
            x if x == OP_EXISTS_MULTI => {
                let db = get_bytes(&mut p)?;
                let keys = decode_keys(&mut p)?;
                let (backend, pool) = self.db_and_pool(req.provider_id, &db)?;
                let found = Self::fan_out_read(pool, backend, keys, |b, ks| b.exists_multi(ks))?;
                let mut out = BytesMut::with_capacity(found.len());
                for e in found {
                    out.put_u8(e as u8);
                }
                Ok(out.freeze())
            }
            x if x == OP_EXISTS => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                let e = self.db(req.provider_id, &db)?.exists(&key)?;
                Ok(Bytes::copy_from_slice(&[e as u8]))
            }
            x if x == OP_LIST_KEYS => {
                let db = get_bytes(&mut p)?;
                let from = get_bytes(&mut p)?;
                let prefix = get_bytes(&mut p)?;
                let limit = get_u32(&mut p)? as usize;
                let keys = self
                    .db(req.provider_id, &db)?
                    .list_keys(&from, &prefix, limit)?;
                Ok(encode_keys(&keys))
            }
            x if x == OP_LIST_KEYVALS => {
                let db = get_bytes(&mut p)?;
                let from = get_bytes(&mut p)?;
                let prefix = get_bytes(&mut p)?;
                let limit = get_u32(&mut p)? as usize;
                let kvs = self
                    .db(req.provider_id, &db)?
                    .list_keyvals(&from, &prefix, limit)?;
                Ok(encode_pairs(&kvs))
            }
            x if x == OP_FILTER => {
                let db = get_bytes(&mut p)?;
                let prog = crate::filter::Program::from_bytes(&get_bytes(&mut p)?)?;
                let keys = decode_keys_factored(&mut p)?;
                let (backend, pool) = self.db_and_pool(req.provider_id, &db)?;
                let n = keys.len();
                // Each key becomes one encoded reply; the predicate program
                // rides into every chunk of the fan-out.
                let replies = Self::fan_out_read(pool, backend, keys, move |b, ks| {
                    let vals = b.get_multi(ks)?;
                    vals.iter()
                        .map(|v| encode_filter_reply(v.as_deref(), &prog))
                        .collect()
                })?;
                let mut out = BytesMut::with_capacity(
                    4 + replies.iter().map(|r: &Bytes| r.len()).sum::<usize>(),
                );
                out.put_u32_le(n as u32);
                for r in replies {
                    out.put_slice(&r);
                }
                Ok(out.freeze())
            }
            x if x == OP_COUNT => {
                let db = get_bytes(&mut p)?;
                let n = self.db(req.provider_id, &db)?.count()?;
                let mut out = BytesMut::with_capacity(8);
                out.put_u64_le(n);
                Ok(out.freeze())
            }
            other => Err(YokanError::Rpc(RpcError::NoSuchRpc(other))),
        }
    }
}
