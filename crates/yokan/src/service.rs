//! Server side: the Yokan provider service.

use crate::backend::Backend;
use crate::client::DbTarget;
use crate::encoding::*;
use crate::error::YokanError;
use crate::replica::{ForwardParams, ForwardStats};
use crate::retry::RetryPolicy;
use argos::Eventual;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use margo::MargoInstance;
use mercurio::{BulkHandle, Endpoint, Request, RpcError, RpcId};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Base RPC id of the Yokan protocol; ids `base..base+19` are used.
pub const PROVIDER_RPC_BASE: u16 = 100;

pub(crate) const OP_PUT: u16 = PROVIDER_RPC_BASE;
pub(crate) const OP_PUT_MULTI: u16 = PROVIDER_RPC_BASE + 1;
pub(crate) const OP_GET: u16 = PROVIDER_RPC_BASE + 2;
pub(crate) const OP_GET_MULTI: u16 = PROVIDER_RPC_BASE + 3;
pub(crate) const OP_EXISTS: u16 = PROVIDER_RPC_BASE + 4;
pub(crate) const OP_ERASE: u16 = PROVIDER_RPC_BASE + 5;
pub(crate) const OP_LIST_KEYS: u16 = PROVIDER_RPC_BASE + 6;
pub(crate) const OP_LIST_KEYVALS: u16 = PROVIDER_RPC_BASE + 7;
pub(crate) const OP_COUNT: u16 = PROVIDER_RPC_BASE + 8;
pub(crate) const OP_LIST_DBS: u16 = PROVIDER_RPC_BASE + 9;
pub(crate) const OP_ERASE_MULTI: u16 = PROVIDER_RPC_BASE + 10;
pub(crate) const OP_PUT_IF_ABSENT: u16 = PROVIDER_RPC_BASE + 11;
pub(crate) const OP_EXISTS_MULTI: u16 = PROVIDER_RPC_BASE + 12;
pub(crate) const OP_FILTER: u16 = PROVIDER_RPC_BASE + 13;
/// A mutation forwarded down a replica chain. Payload after the (original
/// client's) dedup stamp: the remaining chain as `count` then per hop a
/// length-prefixed address and a `u32` provider id, the inner mutation op
/// as `u32`, then the inner payload starting at the database name —
/// always in inline form (bulk batches are re-encoded by the head, since a
/// bulk handle is only pullable from its original exposer).
pub(crate) const OP_REPL_FORWARD: u16 = PROVIDER_RPC_BASE + 14;
/// Read the service's current topology epoch (reply: `u64`).
pub(crate) const OP_MIG_EPOCH_GET: u16 = PROVIDER_RPC_BASE + 15;
/// Advance the topology epoch (monotonic max; reply: the resulting `u64`).
/// Idempotent — re-sending an already-installed epoch is a no-op.
pub(crate) const OP_MIG_EPOCH_SET: u16 = PROVIDER_RPC_BASE + 16;
/// Freeze one key interval of a migrating database: mutations touching
/// `[lo, hi]` are shed `Busy` while the migrator copies it. Empty `lo` and
/// `hi` clears the frozen interval (the range moved on to Handoff).
pub(crate) const OP_MIG_FREEZE: u16 = PROVIDER_RPC_BASE + 17;
/// Install handoff state for copied keys: each key maps to its destination
/// replica chain, and mutations touching it are applied locally *and*
/// re-issued at the destination (dual-write) until the migration completes.
pub(crate) const OP_MIG_HANDOFF: u16 = PROVIDER_RPC_BASE + 18;
/// Tear down all migration state for one database (the range is Done).
pub(crate) const OP_MIG_COMPLETE: u16 = PROVIDER_RPC_BASE + 19;

/// Per-key reply tags for [`OP_FILTER`].
pub(crate) const FILTER_MISSING: u8 = 0;
pub(crate) const FILTER_NOT_COLUMNAR: u8 = 1;
pub(crate) const FILTER_IDS: u8 = 2;

pub(crate) const MODE_INLINE: u8 = 0;
pub(crate) const MODE_BULK: u8 = 1;

/// Replay markers prefixed to every mutation response: whether the service
/// applied the mutation now or answered from its dedup window.
pub(crate) const REPLAY_FRESH: u8 = 0;
pub(crate) const REPLAY_CACHED: u8 = 1;

/// Default per-client dedup window: responses remembered per client so
/// retried mutations are applied at-most-once. Bounds service memory.
const DEFAULT_DEDUP_WINDOW: usize = 1024;

/// Prefix a mutation response with its replay marker.
fn mark_replay(flag: u8, resp: &Bytes) -> Bytes {
    let mut out = BytesMut::with_capacity(1 + resp.len());
    out.put_u8(flag);
    out.put_slice(resp);
    out.freeze()
}

/// Encode an [`OP_REPL_FORWARD`] payload: the original client's dedup
/// stamp (forwards ride the normal mutation path on the receiver, which
/// strips it), the remaining chain, the inner op, and the inline body.
/// Forwards stamp topology epoch 0 — exempt from epoch fencing, because
/// the epoch was already validated where the mutation entered the chain.
fn encode_forward(
    client_id: u64,
    seq: u64,
    remaining: &[(String, u16)],
    inner_op: u16,
    body: &Bytes,
) -> Bytes {
    let hops_len: usize = remaining.iter().map(|(a, _)| 8 + a.len()).sum();
    let mut buf = BytesMut::with_capacity(24 + 4 + hops_len + 4 + body.len());
    buf.put_u64_le(client_id);
    buf.put_u64_le(seq);
    buf.put_u64_le(0);
    buf.put_u32_le(remaining.len() as u32);
    for (addr, pid) in remaining {
        put_bytes(&mut buf, addr.as_bytes());
        buf.put_u32_le(*pid as u32);
    }
    buf.put_u32_le(inner_op as u32);
    buf.put_slice(body);
    buf.freeze()
}

/// Mutations carry the `(client id, seq)` dedup stamp and a replay-marked
/// response; reads are idempotent and skip the machinery entirely.
fn is_mutation(op: u16) -> bool {
    matches!(
        op,
        x if x == OP_PUT
            || x == OP_PUT_MULTI
            || x == OP_ERASE
            || x == OP_ERASE_MULTI
            || x == OP_PUT_IF_ABSENT
            || x == OP_REPL_FORWARD
    )
}

/// Multi-key reads at or above this many keys are fanned out across the
/// provider's argos pool; below it the per-task overhead outweighs the
/// parallelism.
const FANOUT_THRESHOLD: usize = 32;

/// Number of chunks a fanned-out batch is split into.
const FANOUT_CHUNKS: usize = 4;

/// A batched read against a backend, run per chunk by the fan-out path.
/// A trait alias in spirit: plain `fn` pointers for the simple reads, and
/// capturing closures (wrapped in `Arc` by the fan-out) for the filter
/// path, which carries its predicate program into every chunk.
trait MultiReadOp<T>: Fn(&dyn Backend, &[Vec<u8>]) -> Result<Vec<T>, YokanError> {}
impl<T, F: Fn(&dyn Backend, &[Vec<u8>]) -> Result<Vec<T>, YokanError>> MultiReadOp<T> for F {}

/// Encode one per-key reply of the filter RPC: what happened to the stored
/// value under that key. Corrupt columnar blobs fail the whole RPC — they
/// indicate storage damage, not a client mistake.
fn encode_filter_reply(
    value: Option<&[u8]>,
    prog: &crate::filter::Program,
) -> Result<Bytes, YokanError> {
    let mut out = BytesMut::new();
    match value {
        None => out.put_u8(FILTER_MISSING),
        Some(v) if !crate::pages::is_columnar(v) => out.put_u8(FILTER_NOT_COLUMNAR),
        Some(v) => {
            let res = crate::filter::eval_program(v, prog)?;
            out.reserve(1 + 20 + 8 * res.ids.len());
            out.put_u8(FILTER_IDS);
            out.put_u32_le(res.rows_in);
            out.put_u32_le(res.pages_scanned);
            out.put_u32_le(res.pages_skipped);
            out.put_u32_le(v.len() as u32);
            out.put_u32_le(res.ids.len() as u32);
            for id in &res.ids {
                out.put_u64_le(*id);
            }
        }
    }
    Ok(out.freeze())
}

struct ProviderState {
    databases: HashMap<String, Arc<dyn Backend>>,
    /// The argos pool this provider is mapped to, used to fan large
    /// multi-key reads out across the pool's execution streams.
    pool: Option<argos::Pool>,
}

/// One remembered mutation in a client's dedup window.
enum Slot {
    /// The mutation is being applied right now; duplicates wait on the
    /// eventual. `None` signals the apply failed (the slot is released and
    /// the waiting duplicate re-claims and re-applies).
    InFlight(Eventual<Option<Bytes>>),
    /// The mutation was applied; this is its cached response.
    Done(Bytes),
}

#[derive(Default)]
struct ClientWindow {
    /// Slots keyed by sequence number; BTreeMap so pruning evicts the
    /// oldest sequence first.
    slots: BTreeMap<u64, Slot>,
}

/// Successor routes per provider: database name → the other chain members
/// as `(address, provider)` pairs in circular order after this member.
type ForwardRoutes = HashMap<u16, HashMap<String, Vec<(String, u16)>>>;

/// One destination replica chain of a live migration, as
/// `(address, provider, database)` members in chain order.
type DestChain = Vec<(String, u16, String)>;

/// Live-migration state of one locally-served database, installed on the
/// *old* owner while a [`Migrator`](crate) walks its key ranges.
struct MigrationState {
    /// The interval `[lo, hi]` currently being copied: mutations touching
    /// it are shed `Busy` (bounded by the migrator's batch size) so the
    /// copy observes a stable snapshot. `None` outside the Copying phase.
    frozen: Option<(Vec<u8>, Vec<u8>)>,
    /// Backoff hint returned with the `Busy` shed.
    retry_after: Duration,
    /// Keys already copied out (Handoff): each maps to an index into
    /// `destinations`. Mutations touching one are applied locally *and*
    /// re-issued at the destination chain with the original dedup stamp,
    /// keeping both copies coherent until the migration completes.
    moved: HashMap<Vec<u8>, usize>,
    /// The destination replica chains moved keys re-home to.
    destinations: Vec<DestChain>,
}

/// Counters for the live-migration path on one service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Mutations re-issued at a new owner during Handoff (dual-writes).
    pub forwarded_writes: u64,
    /// Mutations shed `Busy` because they touched a frozen interval.
    pub frozen_rejects: u64,
    /// Mutations rejected with [`YokanError::WrongEpoch`].
    pub wrong_epoch_rejects: u64,
    /// Keys currently in Handoff across all migrating databases.
    pub handoff_keys: u64,
}

struct ServiceInner {
    endpoint: Arc<dyn Endpoint>,
    providers: RwLock<HashMap<u16, ProviderState>>,
    /// Per-client dedup windows for at-most-once mutations. The lock is
    /// held only to claim/publish slots, never across a backend apply.
    dedup: Mutex<HashMap<u64, ClientWindow>>,
    dedup_window: AtomicUsize,
    deduped_replays: AtomicU64,
    /// Chain-replication successor routes: for each locally-served
    /// `(provider, database)` that is part of a replica chain, the other
    /// chain members in circular order starting after this one. Empty (the
    /// common case) means mutations are applied single-copy, exactly as
    /// before replication existed.
    forward_routes: RwLock<ForwardRoutes>,
    forward_params: RwLock<ForwardParams>,
    /// Test hook: sleep this long after the local apply, *before*
    /// forwarding, so tests can observe the window in which the head has
    /// applied a mutation it has not yet acknowledged.
    forward_delay: RwLock<Duration>,
    /// Successors that recently failed a forward, mapped to the instant
    /// until which they are skipped (acks degrade to fewer copies) before
    /// being probed again.
    suspects: Mutex<HashMap<(String, u16), Instant>>,
    forwards_sent: AtomicU64,
    forwards_applied: AtomicU64,
    forward_degraded: AtomicU64,
    /// The topology epoch this service believes current. Starts at 1 so
    /// fencing is always armed; clients stamping epoch 0 are legacy/exempt
    /// (raw tooling, chain forwards, migration dual-writes).
    epoch: AtomicU64,
    /// Where the epoch is persisted across restarts (see
    /// [`YokanService::set_epoch_persistence`]); `None` keeps it
    /// memory-only. Also serializes persist operations.
    epoch_path: Mutex<Option<PathBuf>>,
    /// Live-migration state per locally-served `(provider, database)`.
    /// Empty in steady state — the mutation path checks emptiness before
    /// decoding anything.
    migrations: RwLock<HashMap<(u16, String), MigrationState>>,
    mig_forwarded: AtomicU64,
    mig_frozen_rejects: AtomicU64,
    wrong_epoch_rejects: AtomicU64,
}

/// The server-side Yokan service: owns the providers and their databases,
/// and answers the Yokan RPCs registered on a [`MargoInstance`].
///
/// One service is registered per Margo instance; multiple providers (each
/// with its own argos pool, per the paper's 16-providers-per-node layout)
/// are multiplexed by provider id.
#[derive(Clone)]
pub struct YokanService {
    inner: Arc<ServiceInner>,
}

impl YokanService {
    /// Create the service and register its RPC handlers on `margo`.
    pub fn register(margo: &MargoInstance) -> YokanService {
        let inner = Arc::new(ServiceInner {
            endpoint: Arc::clone(margo.endpoint()),
            providers: RwLock::new(HashMap::new()),
            dedup: Mutex::new(HashMap::new()),
            dedup_window: AtomicUsize::new(DEFAULT_DEDUP_WINDOW),
            deduped_replays: AtomicU64::new(0),
            forward_routes: RwLock::new(HashMap::new()),
            forward_params: RwLock::new(ForwardParams::default()),
            forward_delay: RwLock::new(Duration::ZERO),
            suspects: Mutex::new(HashMap::new()),
            forwards_sent: AtomicU64::new(0),
            forwards_applied: AtomicU64::new(0),
            forward_degraded: AtomicU64::new(0),
            epoch: AtomicU64::new(1),
            epoch_path: Mutex::new(None),
            migrations: RwLock::new(HashMap::new()),
            mig_forwarded: AtomicU64::new(0),
            mig_frozen_rejects: AtomicU64::new(0),
            wrong_epoch_rejects: AtomicU64::new(0),
        });
        let svc = YokanService { inner };
        for op in [
            OP_PUT,
            OP_PUT_MULTI,
            OP_GET,
            OP_GET_MULTI,
            OP_EXISTS,
            OP_ERASE,
            OP_LIST_KEYS,
            OP_LIST_KEYVALS,
            OP_COUNT,
            OP_LIST_DBS,
            OP_ERASE_MULTI,
            OP_PUT_IF_ABSENT,
            OP_EXISTS_MULTI,
            OP_FILTER,
            OP_REPL_FORWARD,
            OP_MIG_EPOCH_GET,
            OP_MIG_EPOCH_SET,
            OP_MIG_FREEZE,
            OP_MIG_HANDOFF,
            OP_MIG_COMPLETE,
        ] {
            let svc2 = svc.clone();
            margo.register_rpc(
                RpcId(op),
                Arc::new(move |req: Request| svc2.handle(req).map_err(|e| e.to_rpc())),
            );
        }
        svc
    }

    /// Declare a provider (id must be fresh) and map it to an argos pool on
    /// the Margo instance.
    pub fn add_provider(
        &self,
        margo: &MargoInstance,
        provider_id: u16,
        pool: &str,
    ) -> Result<(), margo::MargoError> {
        margo.assign_provider_pool(provider_id, pool)?;
        let pool = margo.runtime().pool(pool);
        self.inner
            .providers
            .write()
            .entry(provider_id)
            .or_insert_with(|| ProviderState {
                databases: HashMap::new(),
                pool,
            });
        Ok(())
    }

    /// Attach a database to a provider.
    ///
    /// # Panics
    ///
    /// Panics if the provider was never added or the name is taken —
    /// misconfiguration that Bedrock-style bootstrap must surface loudly.
    pub fn add_database(&self, provider_id: u16, name: &str, backend: Arc<dyn Backend>) {
        let mut provs = self.inner.providers.write();
        let prov = provs
            .get_mut(&provider_id)
            .unwrap_or_else(|| panic!("provider {provider_id} not registered"));
        let prev = prov.databases.insert(name.to_string(), backend);
        assert!(
            prev.is_none(),
            "database {name} already exists on provider {provider_id}"
        );
    }

    /// Per-database storage counters across all providers, as
    /// `(provider_id, database name, stats)` sorted by provider then name.
    /// Used by benchmarks and operators to see cache effectiveness and
    /// shard balance.
    pub fn backend_stats(&self) -> Vec<(u16, String, crate::backend::BackendStats)> {
        let provs = self.inner.providers.read();
        let mut out = Vec::new();
        for (&pid, prov) in provs.iter() {
            for (name, db) in &prov.databases {
                out.push((pid, name.clone(), db.stats()));
            }
        }
        out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        out
    }

    /// Mutations answered from the dedup window instead of being applied a
    /// second time (duplicated frames and retries whose original landed).
    pub fn deduped_replays(&self) -> u64 {
        self.inner.deduped_replays.load(Ordering::Relaxed)
    }

    /// Bound the per-client dedup window: at most `cap` remembered
    /// responses per client (oldest sequence numbers evicted first). A
    /// retry arriving after its slot was evicted re-applies the mutation,
    /// so `cap` should exceed a client's maximum in-flight requests.
    pub fn set_dedup_window(&self, cap: usize) {
        self.inner.dedup_window.store(cap.max(1), Ordering::Relaxed);
    }

    /// Install the chain-replication successors for one locally-served
    /// database: the other members of its replica chain, in circular order
    /// starting after this one. A mutation arriving directly from a client
    /// (not via a forward) is applied locally and then forwarded to the
    /// first live successor — which propagates it onward — before the ack.
    /// An empty list removes the route.
    pub fn set_forward_routes(&self, provider_id: u16, db: &str, successors: &[DbTarget]) {
        let mut routes = self.inner.forward_routes.write();
        if successors.is_empty() {
            if let Some(by_db) = routes.get_mut(&provider_id) {
                by_db.remove(db);
                if by_db.is_empty() {
                    routes.remove(&provider_id);
                }
            }
            return;
        }
        let hops: Vec<(String, u16)> = successors
            .iter()
            .map(|t| (t.addr.clone(), t.provider_id))
            .collect();
        routes
            .entry(provider_id)
            .or_default()
            .insert(db.to_string(), hops);
    }

    /// Tune the forwarding path (per-hop timeout, attempts, suspension).
    pub fn set_forward_params(&self, params: ForwardParams) {
        *self.inner.forward_params.write() = params;
    }

    /// Test hook: delay every chain forward by `delay` (after the local
    /// apply, before the successor sees the mutation). Lets tests pin the
    /// read-your-acked-writes property by reading a replica inside the
    /// apply-to-ack window.
    pub fn set_forward_delay(&self, delay: Duration) {
        *self.inner.forward_delay.write() = delay;
    }

    /// Counters for the chain-replication forwarding path.
    pub fn forward_stats(&self) -> ForwardStats {
        ForwardStats {
            forwards_sent: self.inner.forwards_sent.load(Ordering::Relaxed),
            forwards_applied: self.inner.forwards_applied.load(Ordering::Relaxed),
            forward_degraded: self.inner.forward_degraded.load(Ordering::Relaxed),
        }
    }

    /// The topology epoch this service currently accepts in mutation
    /// stamps (besides the always-exempt epoch 0).
    pub fn topology_epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Relaxed)
    }

    /// Advance the topology epoch (monotonic: the stored epoch never moves
    /// backwards). Returns the resulting epoch. Writers stamping the old
    /// epoch are rejected with [`YokanError::WrongEpoch`] from this point
    /// on. If persistence is armed ([`YokanService::set_epoch_persistence`])
    /// an actual advance is written out before returning.
    pub fn set_topology_epoch(&self, epoch: u64) -> u64 {
        let prev = self.inner.epoch.fetch_max(epoch, Ordering::Relaxed);
        let now = self.inner.epoch.load(Ordering::Relaxed);
        if now != prev {
            self.persist_epoch();
        }
        now
    }

    /// Persist the topology epoch at `path` and reload any epoch a previous
    /// incarnation stored there. Without this, a node restarted after a
    /// rescale comes back at epoch 1 and fences every current-epoch client
    /// with `WrongEpoch{current: 1}` until traffic re-teaches it.
    ///
    /// The file holds the epoch as decimal text, replaced atomically
    /// (tmp-write + rename). Persistence is best-effort: an unwritable
    /// path degrades to memory-only rather than failing the mutation path.
    pub fn set_epoch_persistence(&self, path: PathBuf) {
        let mut guard = self.inner.epoch_path.lock();
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(stored) = text.trim().parse::<u64>() {
                self.inner.epoch.fetch_max(stored, Ordering::Relaxed);
            }
        }
        *guard = Some(path);
        drop(guard);
        // Write the (possibly adopted) current value back so the file
        // exists from the first boot on.
        self.persist_epoch();
    }

    fn persist_epoch(&self) {
        let guard = self.inner.epoch_path.lock();
        let Some(path) = guard.as_ref() else { return };
        let cur = self.inner.epoch.load(Ordering::Relaxed);
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, format!("{cur}\n")).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }

    /// Counters for the live-migration path.
    pub fn migration_stats(&self) -> MigrationStats {
        let handoff_keys = self
            .inner
            .migrations
            .read()
            .values()
            .map(|m| m.moved.len() as u64)
            .sum();
        MigrationStats {
            forwarded_writes: self.inner.mig_forwarded.load(Ordering::Relaxed),
            frozen_rejects: self.inner.mig_frozen_rejects.load(Ordering::Relaxed),
            wrong_epoch_rejects: self.inner.wrong_epoch_rejects.load(Ordering::Relaxed),
            handoff_keys,
        }
    }

    /// Names of the databases attached to one provider, sorted.
    pub fn database_names(&self, provider_id: u16) -> Vec<String> {
        let provs = self.inner.providers.read();
        let mut names: Vec<String> = provs
            .get(&provider_id)
            .map(|p| p.databases.keys().cloned().collect())
            .unwrap_or_default();
        names.sort();
        names
    }

    fn db(&self, provider_id: u16, name: &[u8]) -> Result<Arc<dyn Backend>, YokanError> {
        self.db_and_pool(provider_id, name).map(|(db, _)| db)
    }

    fn db_and_pool(
        &self,
        provider_id: u16,
        name: &[u8],
    ) -> Result<(Arc<dyn Backend>, Option<argos::Pool>), YokanError> {
        let name = std::str::from_utf8(name)
            .map_err(|_| YokanError::Protocol("db name not utf8".into()))?;
        let provs = self.inner.providers.read();
        let prov = provs
            .get(&provider_id)
            .ok_or(YokanError::NoSuchProvider(provider_id))?;
        let db = prov
            .databases
            .get(name)
            .cloned()
            .ok_or_else(|| YokanError::NoSuchDatabase(name.to_string()))?;
        Ok((db, prov.pool.clone()))
    }

    /// Run a multi-key *read* against `backend`, fanning chunks out across
    /// the provider's pool when the batch is large enough.
    ///
    /// Only reads are fanned out: `put_multi` is one atomic batch at the
    /// backend (a single `WriteBatch` on the LSM engine, an all-shards-locked
    /// apply on the in-memory map), and splitting it would break that
    /// contract. Reads have no ordering between keys, so chunking is free.
    ///
    /// The handler itself may be running on the only execution stream that
    /// drains this pool, in which case waiting passively on the spawned
    /// chunks would deadlock. While any chunk is unfinished we *work-help*:
    /// pop and run queued tasks from the pool (our own chunks included), and
    /// only yield when the queue is momentarily empty.
    fn fan_out_read<T, F>(
        pool: Option<argos::Pool>,
        backend: Arc<dyn Backend>,
        keys: Vec<Vec<u8>>,
        op: F,
    ) -> Result<Vec<T>, YokanError>
    where
        T: Send + 'static,
        F: MultiReadOp<T> + Send + Sync + 'static,
    {
        let fan = match pool {
            Some(p) if keys.len() >= FANOUT_THRESHOLD && !p.is_closed() => p,
            _ => return op(&*backend, &keys),
        };
        let op = Arc::new(op);
        let chunk = keys.len().div_ceil(FANOUT_CHUNKS);
        let mut handles = Vec::with_capacity(FANOUT_CHUNKS);
        let mut rest = keys;
        while !rest.is_empty() {
            let tail = if rest.len() > chunk {
                rest.split_off(chunk)
            } else {
                Vec::new()
            };
            let part = std::mem::replace(&mut rest, tail);
            let b = Arc::clone(&backend);
            let op2 = Arc::clone(&op);
            handles.push(fan.spawn(move || op2(&*b, &part)));
        }
        let mut out = Vec::new();
        for h in handles {
            while !h.is_finished() {
                if let Some(task) = fan.try_pop() {
                    task();
                } else {
                    std::thread::yield_now();
                }
            }
            out.extend(h.join()?);
        }
        Ok(out)
    }

    fn handle(&self, req: Request) -> Result<Bytes, YokanError> {
        if is_mutation(req.rpc_id.0) {
            let mut p = req.payload.clone();
            if p.remaining() < 24 {
                return Err(YokanError::Protocol("short mutation header".into()));
            }
            let client_id = p.get_u64_le();
            let seq = p.get_u64_le();
            // Epoch fence, *before* the dedup slot claim: a stale writer is
            // redirected with no side effect at all. Epoch 0 is exempt (raw
            // tooling, chain forwards, migration dual-writes — the epoch was
            // validated where the mutation entered the deployment, or the
            // caller deliberately addresses a physical replica).
            let epoch = p.get_u64_le();
            if epoch != 0 {
                let current = self.inner.epoch.load(Ordering::Relaxed);
                if epoch < current {
                    self.inner
                        .wrong_epoch_rejects
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(YokanError::WrongEpoch { current });
                }
                if epoch > current {
                    // A stamp ahead of us is proof the bump happened —
                    // clients only learn an epoch from a service that
                    // installed it. Adopt it instead of rejecting: this is
                    // the anti-entropy path that re-converges a node that
                    // restarted, or was unreachable, during finalize.
                    self.set_topology_epoch(epoch);
                }
            }
            return self.handle_mutation(&req, client_id, seq, p);
        }
        self.handle_read(req)
    }

    /// At-most-once wrapper around [`YokanService::apply_mutation`].
    ///
    /// Claims the `(client, seq)` slot, applies the mutation with the dedup
    /// lock *released*, then publishes the response. A duplicate arriving
    /// before the apply finishes waits on the in-flight slot; one arriving
    /// after is answered from the cached response. Failed applies release
    /// the slot so a retry re-applies.
    fn handle_mutation(
        &self,
        req: &Request,
        client_id: u64,
        seq: u64,
        payload: Bytes,
    ) -> Result<Bytes, YokanError> {
        loop {
            let in_flight;
            {
                let mut dedup = self.inner.dedup.lock();
                let win = dedup.entry(client_id).or_default();
                match win.slots.get(&seq) {
                    Some(Slot::Done(resp)) => {
                        self.inner.deduped_replays.fetch_add(1, Ordering::Relaxed);
                        return Ok(mark_replay(REPLAY_CACHED, resp));
                    }
                    Some(Slot::InFlight(ev)) => in_flight = ev.clone(),
                    None => {
                        win.slots.insert(seq, Slot::InFlight(Eventual::new()));
                        break;
                    }
                }
            }
            match in_flight.wait_cloned() {
                Some(resp) => {
                    self.inner.deduped_replays.fetch_add(1, Ordering::Relaxed);
                    return Ok(mark_replay(REPLAY_CACHED, &resp));
                }
                // The original apply failed and released the slot; loop to
                // re-claim and apply this duplicate as a fresh attempt.
                None => continue,
            }
        }
        let result = self.apply_mutation(req, client_id, seq, payload);
        let mut dedup = self.inner.dedup.lock();
        let win = dedup.entry(client_id).or_default();
        match result {
            Ok(resp) => {
                if let Some(Slot::InFlight(ev)) = win.slots.insert(seq, Slot::Done(resp.clone())) {
                    ev.set(Some(resp.clone()));
                }
                let cap = self.inner.dedup_window.load(Ordering::Relaxed);
                while win.slots.len() > cap {
                    let &oldest = win.slots.keys().next().expect("non-empty window");
                    if matches!(win.slots.get(&oldest), Some(Slot::InFlight(_))) {
                        // Never evict an in-flight slot: its waiters hold
                        // the eventual and the apply will publish through it.
                        break;
                    }
                    win.slots.remove(&oldest);
                }
                Ok(mark_replay(REPLAY_FRESH, &resp))
            }
            Err(e) => {
                if let Some(Slot::InFlight(ev)) = win.slots.remove(&seq) {
                    ev.set(None);
                }
                Err(e)
            }
        }
    }

    /// Apply one mutation RPC. `p` starts at the database name (the dedup
    /// stamp has been consumed by the caller). If the target database has
    /// forward routes installed (it is a replica-chain member receiving a
    /// mutation directly from a client), the mutation is forwarded down the
    /// chain — carrying the client's original dedup stamp — before this
    /// returns, so the ack implies chain-wide application (unless a
    /// successor was unreachable, which degrades the ack and is counted).
    fn apply_mutation(
        &self,
        req: &Request,
        client_id: u64,
        seq: u64,
        p: Bytes,
    ) -> Result<Bytes, YokanError> {
        if req.rpc_id.0 == OP_REPL_FORWARD {
            return self.apply_forward(req, client_id, seq, p);
        }
        // Live-migration gate: mutations touching a frozen interval are
        // shed `Busy`; mutations touching keys already handed off are
        // dual-written to their destination chains below. Bulk batches of a
        // migrating database come back inlined (the gate had to pull them
        // to see the keys, and the dual-write needs the pairs anyway).
        let (p, dests) = self.migration_gate(req.rpc_id.0, req.provider_id, &req.source, p)?;
        let successors = self.successors_for(req.provider_id, &p)?;
        let want_inline = successors.is_some();
        let (resp, inline) = self.apply_local(
            req.rpc_id.0,
            req.provider_id,
            Some(&req.source),
            p.clone(),
            want_inline,
        )?;
        if let Some(successors) = successors {
            let delay = *self.inner.forward_delay.read();
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            let body = inline.expect("inline body requested");
            self.forward_down(&successors, req.rpc_id.0, client_id, seq, &body);
        }
        if !dests.is_empty() {
            // Re-issue at the new owners *before* acknowledging: a failed
            // dual-write withholds the ack, the slot is released, and the
            // client's retry re-applies (idempotently) and re-forwards.
            self.migration_forward(req.rpc_id.0, client_id, seq, &dests)?;
        }
        Ok(resp)
    }

    /// Inspect one direct client mutation against the live-migration state
    /// of its target database. Returns the (possibly inlined) payload and,
    /// for every destination chain a touched handed-off key re-homes to,
    /// the op body restricted to *that chain's* keys (sending the full
    /// batch would plant foreign keys in the destination database).
    ///
    /// Errors with `Busy` when a touched key lies in the frozen interval —
    /// the migrator is copying it right now; the shed is bounded by one
    /// batch and absorbed by the client's retry policy.
    fn migration_gate(
        &self,
        op: u16,
        provider_id: u16,
        source: &str,
        p: Bytes,
    ) -> Result<(Bytes, Vec<(DestChain, Bytes)>), YokanError> {
        {
            let migs = self.inner.migrations.read();
            if migs.is_empty() {
                return Ok((p, Vec::new()));
            }
            let mut q = p.clone();
            let db = get_bytes(&mut q)?;
            let name = std::str::from_utf8(&db)
                .map_err(|_| YokanError::Protocol("db name not utf8".into()))?;
            if !migs.contains_key(&(provider_id, name.to_string())) {
                return Ok((p, Vec::new()));
            }
        }
        // The target database is migrating: decode the touched keys,
        // inlining a bulk batch first so the gate sees the actual pairs.
        let mut q = p.clone();
        let db = get_bytes(&mut q)?;
        let name = std::str::from_utf8(&db)
            .expect("validated above")
            .to_string();
        let mut pairs: Vec<crate::backend::KeyValue> = Vec::new();
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut payload = p.clone();
        match op {
            x if x == OP_PUT || x == OP_PUT_IF_ABSENT || x == OP_ERASE => {
                keys.push(get_bytes(&mut q)?.to_vec());
            }
            x if x == OP_ERASE_MULTI => keys = decode_keys(&mut q)?,
            x if x == OP_PUT_MULTI => {
                let mode = get_u8(&mut q)?;
                pairs = match mode {
                    MODE_INLINE => decode_pairs(&mut q)?,
                    MODE_BULK => {
                        let handle = BulkHandle::decode_from(&mut q)
                            .ok_or_else(|| YokanError::Protocol("bad bulk handle".into()))?;
                        let mut data = self
                            .inner
                            .endpoint
                            .bulk_pull(source, &handle, 0, handle.len)
                            .map_err(YokanError::Rpc)?;
                        decode_pairs(&mut data)?
                    }
                    m => return Err(YokanError::Protocol(format!("bad put mode {m}"))),
                };
                keys = pairs.iter().map(|(k, _)| k.clone()).collect();
                let mut buf = BytesMut::with_capacity(4 + db.len() + 1 + pairs_encoded_len(&pairs));
                put_bytes(&mut buf, &db);
                buf.put_u8(MODE_INLINE);
                encode_pairs_into(&mut buf, &pairs);
                payload = buf.freeze();
            }
            _ => {}
        }
        let migs = self.inner.migrations.read();
        let Some(state) = migs.get(&(provider_id, name)) else {
            // The migration completed between the two lock acquisitions.
            return Ok((payload, Vec::new()));
        };
        if let Some((lo, hi)) = &state.frozen {
            if keys
                .iter()
                .any(|k| k.as_slice() >= lo.as_slice() && k.as_slice() <= hi.as_slice())
            {
                self.inner
                    .mig_frozen_rejects
                    .fetch_add(1, Ordering::Relaxed);
                return Err(YokanError::Rpc(RpcError::Busy {
                    retry_after: state.retry_after,
                }));
            }
        }
        // Group the touched handed-off keys by destination chain and build
        // one op body (everything after the database name) per chain.
        let mut by_dest: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            if let Some(&d) = state.moved.get(k) {
                by_dest.entry(d).or_default().push(i);
            }
        }
        if by_dest.is_empty() {
            return Ok((payload, Vec::new()));
        }
        let mut dests = Vec::with_capacity(by_dest.len());
        for (d, idxs) in by_dest {
            let body: Bytes = match op {
                x if x == OP_PUT || x == OP_PUT_IF_ABSENT || x == OP_ERASE => {
                    // Single-key op: the original body (key[, value]) is
                    // already exactly this destination's share.
                    let mut q = payload.clone();
                    let _db = get_bytes(&mut q)?;
                    q
                }
                x if x == OP_ERASE_MULTI => {
                    let sub: Vec<Vec<u8>> = idxs.iter().map(|&i| keys[i].clone()).collect();
                    encode_keys(&sub)
                }
                x if x == OP_PUT_MULTI => {
                    let sub: Vec<crate::backend::KeyValue> =
                        idxs.iter().map(|&i| pairs[i].clone()).collect();
                    let mut buf = BytesMut::with_capacity(1 + pairs_encoded_len(&sub));
                    buf.put_u8(MODE_INLINE);
                    encode_pairs_into(&mut buf, &sub);
                    buf.freeze()
                }
                _ => unreachable!("by_dest only fills for key-bearing ops"),
            };
            dests.push((state.destinations[d].clone(), body));
        }
        Ok((payload, dests))
    }

    /// Dual-write one mutation at the destination chains of its handed-off
    /// keys: re-issue the op with the original `(client, seq)` dedup stamp
    /// (epoch 0 — validated at entry) and the database name rewritten to
    /// the destination's, at the first live member of each chain (whose own
    /// forward routes propagate it down). A client retry after a partial
    /// failure re-forwards the identical stamp, so destinations that
    /// already applied answer from their dedup window.
    fn migration_forward(
        &self,
        op: u16,
        client_id: u64,
        seq: u64,
        dests: &[(DestChain, Bytes)],
    ) -> Result<(), YokanError> {
        let params = self.inner.forward_params.read().clone();
        let self_addr = self.inner.endpoint.address();
        for (chain, body) in dests {
            let mut delivered = false;
            let mut last_err = YokanError::Protocol("empty destination chain".into());
            for (addr, pid, dest_db) in chain {
                if *addr == self_addr {
                    // The destination lives on this very service (grown
                    // in-place): apply directly instead of calling self —
                    // re-entering handle_mutation would deadlock on the
                    // in-flight dedup slot of the very mutation being
                    // dual-written. The destination database's chain
                    // successors still get the forward, exactly as a
                    // remote delivery would propagate it: without it the
                    // dual-write strands on this one member and tail or
                    // failover reads of the destination chain go stale.
                    let mut buf = BytesMut::with_capacity(4 + dest_db.len() + body.len());
                    put_bytes(&mut buf, dest_db.as_bytes());
                    buf.put_slice(body);
                    let payload = buf.freeze();
                    let successors = self.successors_for(*pid, &payload)?;
                    let (_, inline) =
                        self.apply_local(op, *pid, None, payload, successors.is_some())?;
                    if let Some(successors) = successors {
                        let body = inline.expect("inline body requested");
                        self.forward_down(&successors, op, client_id, seq, &body);
                    }
                    delivered = true;
                    break;
                }
                let mut buf = BytesMut::with_capacity(24 + 4 + dest_db.len() + body.len());
                buf.put_u64_le(client_id);
                buf.put_u64_le(seq);
                buf.put_u64_le(0);
                put_bytes(&mut buf, dest_db.as_bytes());
                buf.put_slice(body);
                let payload = buf.freeze();
                let pending =
                    self.inner
                        .endpoint
                        .call_async(addr, RpcId(op), *pid, payload.clone());
                match pending.wait_timeout(params.timeout) {
                    Ok(_) => {
                        delivered = true;
                        break;
                    }
                    Err(e) if crate::replica::is_dead_node(&e) => {
                        last_err = YokanError::Rpc(e);
                        continue;
                    }
                    Err(e) => return Err(YokanError::from(e)),
                }
            }
            if !delivered {
                return Err(last_err);
            }
            self.inner.mig_forwarded.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The chain successors of the database a mutation payload addresses,
    /// if it has any. `p` starts at the database name and is only peeked.
    fn successors_for(
        &self,
        provider_id: u16,
        p: &Bytes,
    ) -> Result<Option<Vec<(String, u16)>>, YokanError> {
        let routes = self.inner.forward_routes.read();
        let Some(by_db) = routes.get(&provider_id) else {
            return Ok(None);
        };
        let mut q = p.clone();
        let db = get_bytes(&mut q)?;
        let name = std::str::from_utf8(&db)
            .map_err(|_| YokanError::Protocol("db name not utf8".into()))?;
        Ok(by_db.get(name).cloned())
    }

    /// Apply one mutation against the local backend. `p` starts at the
    /// database name. `source` is the address bulk handles can be pulled
    /// from; `None` forbids bulk mode (forwarded payloads are always
    /// inline). When `want_inline` is set, the payload is also returned in
    /// inline form for chain forwarding — the original bytes for inline
    /// ops, a re-encoded batch for bulk `put_multi` (a successor cannot
    /// pull the caller's bulk region through *this* node).
    fn apply_local(
        &self,
        op: u16,
        provider_id: u16,
        source: Option<&str>,
        mut p: Bytes,
        want_inline: bool,
    ) -> Result<(Bytes, Option<Bytes>), YokanError> {
        let whole = p.clone();
        let inline = if want_inline {
            Some(whole.clone())
        } else {
            None
        };
        match op {
            x if x == OP_PUT => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                let val = get_bytes(&mut p)?;
                self.db(provider_id, &db)?.put(&key, &val)?;
                Ok((Bytes::new(), inline))
            }
            x if x == OP_PUT_MULTI => {
                let db = get_bytes(&mut p)?;
                let backend = self.db(provider_id, &db)?;
                let mode = get_u8(&mut p)?;
                let pairs = match mode {
                    MODE_INLINE => decode_pairs(&mut p)?,
                    MODE_BULK => {
                        let source = source.ok_or_else(|| {
                            YokanError::Protocol("bulk mode in forwarded mutation".into())
                        })?;
                        // Pull the encoded pair block from the caller's
                        // exposed region (the RDMA path for batches).
                        let handle = BulkHandle::decode_from(&mut p)
                            .ok_or_else(|| YokanError::Protocol("bad bulk handle".into()))?;
                        let mut data = self
                            .inner
                            .endpoint
                            .bulk_pull(source, &handle, 0, handle.len)
                            .map_err(YokanError::Rpc)?;
                        decode_pairs(&mut data)?
                    }
                    m => return Err(YokanError::Protocol(format!("bad put mode {m}"))),
                };
                backend.put_multi(&pairs)?;
                let inline = match (want_inline, mode) {
                    (true, MODE_BULK) => {
                        let mut buf =
                            BytesMut::with_capacity(4 + db.len() + 1 + pairs_encoded_len(&pairs));
                        put_bytes(&mut buf, &db);
                        buf.put_u8(MODE_INLINE);
                        encode_pairs_into(&mut buf, &pairs);
                        Some(buf.freeze())
                    }
                    _ => inline,
                };
                let mut out = BytesMut::with_capacity(4);
                out.put_u32_le(pairs.len() as u32);
                Ok((out.freeze(), inline))
            }
            x if x == OP_ERASE => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                self.db(provider_id, &db)?.erase(&key)?;
                Ok((Bytes::new(), inline))
            }
            x if x == OP_PUT_IF_ABSENT => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                let val = get_bytes(&mut p)?;
                let existing = self.db(provider_id, &db)?.put_if_absent(&key, &val)?;
                Ok((encode_optionals(&[existing]), inline))
            }
            x if x == OP_ERASE_MULTI => {
                let db = get_bytes(&mut p)?;
                let keys = decode_keys(&mut p)?;
                self.db(provider_id, &db)?.erase_multi(&keys)?;
                Ok((Bytes::new(), inline))
            }
            other => Err(YokanError::Rpc(RpcError::NoSuchRpc(other))),
        }
    }

    /// Handle a mutation forwarded from a chain predecessor: apply it
    /// locally (under this service's own dedup window — the caller already
    /// claimed the `(client, seq)` slot, so a client that later fails over
    /// here and replays the original op is answered from cache), then pass
    /// it on to the remaining chain members embedded in the payload.
    fn apply_forward(
        &self,
        req: &Request,
        client_id: u64,
        seq: u64,
        mut p: Bytes,
    ) -> Result<Bytes, YokanError> {
        let n = get_u32(&mut p)? as usize;
        let mut remaining = Vec::with_capacity(n);
        for _ in 0..n {
            let addr = get_bytes(&mut p)?;
            let addr = std::str::from_utf8(&addr)
                .map_err(|_| YokanError::Protocol("hop address not utf8".into()))?
                .to_string();
            let pid = get_u32(&mut p)? as u16;
            remaining.push((addr, pid));
        }
        let inner_op = get_u32(&mut p)? as u16;
        if inner_op == OP_REPL_FORWARD || !is_mutation(inner_op) {
            return Err(YokanError::Protocol(format!("bad forwarded op {inner_op}")));
        }
        let body = p;
        let (resp, _) = self.apply_local(inner_op, req.provider_id, None, body.clone(), false)?;
        self.inner.forwards_applied.fetch_add(1, Ordering::Relaxed);
        if !remaining.is_empty() {
            let delay = *self.inner.forward_delay.read();
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            self.forward_down(&remaining, inner_op, client_id, seq, &body);
        }
        Ok(resp)
    }

    /// Send a mutation to the first live member of `successors`, embedding
    /// the rest of the chain for it to propagate to. Unreachable members
    /// are skipped (counted as degraded acks) and suspended for
    /// [`ForwardParams::suspend`] so a dead replica does not tax every
    /// subsequent mutation with a full forward timeout.
    fn forward_down(
        &self,
        successors: &[(String, u16)],
        inner_op: u16,
        client_id: u64,
        seq: u64,
        body: &Bytes,
    ) {
        let params = self.inner.forward_params.read().clone();
        for (i, hop) in successors.iter().enumerate() {
            if self.hop_suspended(hop) {
                self.inner.forward_degraded.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let payload = encode_forward(client_id, seq, &successors[i + 1..], inner_op, body);
            let mut delivered = false;
            for _ in 0..params.attempts.max(1) {
                let pending = self.inner.endpoint.call_async(
                    &hop.0,
                    RpcId(OP_REPL_FORWARD),
                    hop.1,
                    payload.clone(),
                );
                match pending.wait_timeout(params.timeout) {
                    Ok(_) => {
                        delivered = true;
                        break;
                    }
                    Err(e) => {
                        if !RetryPolicy::is_retryable(&e) {
                            break;
                        }
                        if let Some(hint) = RetryPolicy::retry_hint(&e) {
                            std::thread::sleep(hint.min(params.timeout));
                        }
                    }
                }
            }
            if delivered {
                self.inner.forwards_sent.fetch_add(1, Ordering::Relaxed);
                self.inner.suspects.lock().remove(hop);
                // The hop owns propagation to the rest of the chain.
                return;
            }
            self.inner
                .suspects
                .lock()
                .insert(hop.clone(), Instant::now() + params.suspend);
            self.inner.forward_degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn hop_suspended(&self, hop: &(String, u16)) -> bool {
        let mut suspects = self.inner.suspects.lock();
        match suspects.get(hop) {
            Some(until) if Instant::now() < *until => true,
            Some(_) => {
                suspects.remove(hop);
                false
            }
            None => false,
        }
    }

    fn handle_read(&self, req: Request) -> Result<Bytes, YokanError> {
        let mut p = req.payload.clone();
        match req.rpc_id.0 {
            x if x == OP_LIST_DBS => {
                let names = self.database_names(req.provider_id);
                let keys: Vec<Vec<u8>> = names.into_iter().map(|n| n.into_bytes()).collect();
                Ok(encode_keys(&keys))
            }
            x if x == OP_GET => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                let val = self.db(req.provider_id, &db)?.get(&key)?;
                Ok(encode_optionals(&[val]))
            }
            x if x == OP_GET_MULTI => {
                let db = get_bytes(&mut p)?;
                let keys = decode_keys(&mut p)?;
                let (backend, pool) = self.db_and_pool(req.provider_id, &db)?;
                let vals = Self::fan_out_read(pool, backend, keys, |b, ks| b.get_multi(ks))?;
                Ok(encode_optionals(&vals))
            }
            x if x == OP_EXISTS_MULTI => {
                let db = get_bytes(&mut p)?;
                let keys = decode_keys(&mut p)?;
                let (backend, pool) = self.db_and_pool(req.provider_id, &db)?;
                let found = Self::fan_out_read(pool, backend, keys, |b, ks| b.exists_multi(ks))?;
                let mut out = BytesMut::with_capacity(found.len());
                for e in found {
                    out.put_u8(e as u8);
                }
                Ok(out.freeze())
            }
            x if x == OP_EXISTS => {
                let db = get_bytes(&mut p)?;
                let key = get_bytes(&mut p)?;
                let e = self.db(req.provider_id, &db)?.exists(&key)?;
                Ok(Bytes::copy_from_slice(&[e as u8]))
            }
            x if x == OP_LIST_KEYS => {
                let db = get_bytes(&mut p)?;
                let from = get_bytes(&mut p)?;
                let prefix = get_bytes(&mut p)?;
                let limit = get_u32(&mut p)? as usize;
                let keys = self
                    .db(req.provider_id, &db)?
                    .list_keys(&from, &prefix, limit)?;
                Ok(encode_keys(&keys))
            }
            x if x == OP_LIST_KEYVALS => {
                let db = get_bytes(&mut p)?;
                let from = get_bytes(&mut p)?;
                let prefix = get_bytes(&mut p)?;
                let limit = get_u32(&mut p)? as usize;
                let kvs = self
                    .db(req.provider_id, &db)?
                    .list_keyvals(&from, &prefix, limit)?;
                Ok(encode_pairs(&kvs))
            }
            x if x == OP_FILTER => {
                let db = get_bytes(&mut p)?;
                let prog = crate::filter::Program::from_bytes(&get_bytes(&mut p)?)?;
                let keys = decode_keys_factored(&mut p)?;
                let (backend, pool) = self.db_and_pool(req.provider_id, &db)?;
                let n = keys.len();
                // Each key becomes one encoded reply; the predicate program
                // rides into every chunk of the fan-out.
                let replies = Self::fan_out_read(pool, backend, keys, move |b, ks| {
                    let vals = b.get_multi(ks)?;
                    vals.iter()
                        .map(|v| encode_filter_reply(v.as_deref(), &prog))
                        .collect()
                })?;
                let mut out = BytesMut::with_capacity(
                    4 + replies.iter().map(|r: &Bytes| r.len()).sum::<usize>(),
                );
                out.put_u32_le(n as u32);
                for r in replies {
                    out.put_slice(&r);
                }
                Ok(out.freeze())
            }
            x if x == OP_COUNT => {
                let db = get_bytes(&mut p)?;
                let n = self.db(req.provider_id, &db)?.count()?;
                let mut out = BytesMut::with_capacity(8);
                out.put_u64_le(n);
                Ok(out.freeze())
            }
            x if x == OP_MIG_EPOCH_GET => {
                let mut out = BytesMut::with_capacity(8);
                out.put_u64_le(self.inner.epoch.load(Ordering::Relaxed));
                Ok(out.freeze())
            }
            x if x == OP_MIG_EPOCH_SET => {
                let epoch = get_u64(&mut p)?;
                let mut out = BytesMut::with_capacity(8);
                out.put_u64_le(self.set_topology_epoch(epoch));
                Ok(out.freeze())
            }
            x if x == OP_MIG_FREEZE => {
                let db = get_bytes(&mut p)?;
                // Fail loudly if the database does not exist here.
                self.db(req.provider_id, &db)?;
                let name = std::str::from_utf8(&db)
                    .map_err(|_| YokanError::Protocol("db name not utf8".into()))?
                    .to_string();
                let lo = get_bytes(&mut p)?.to_vec();
                let hi = get_bytes(&mut p)?.to_vec();
                let retry_after = Duration::from_millis(get_u32(&mut p)? as u64);
                let mut migs = self.inner.migrations.write();
                let state = migs
                    .entry((req.provider_id, name))
                    .or_insert_with(|| MigrationState {
                        frozen: None,
                        retry_after,
                        moved: HashMap::new(),
                        destinations: Vec::new(),
                    });
                state.retry_after = retry_after;
                state.frozen = if lo.is_empty() && hi.is_empty() {
                    None
                } else {
                    Some((lo, hi))
                };
                Ok(Bytes::new())
            }
            x if x == OP_MIG_HANDOFF => {
                let db = get_bytes(&mut p)?;
                self.db(req.provider_id, &db)?;
                let name = std::str::from_utf8(&db)
                    .map_err(|_| YokanError::Protocol("db name not utf8".into()))?
                    .to_string();
                let nchains = get_u32(&mut p)? as usize;
                let mut chains = Vec::with_capacity(nchains);
                for _ in 0..nchains {
                    let nmembers = get_u32(&mut p)? as usize;
                    let mut chain = Vec::with_capacity(nmembers);
                    for _ in 0..nmembers {
                        let addr = get_bytes(&mut p)?;
                        let addr = std::str::from_utf8(&addr)
                            .map_err(|_| YokanError::Protocol("dest addr not utf8".into()))?
                            .to_string();
                        let pid = get_u32(&mut p)? as u16;
                        let dest_db = get_bytes(&mut p)?;
                        let dest_db = std::str::from_utf8(&dest_db)
                            .map_err(|_| YokanError::Protocol("dest db not utf8".into()))?
                            .to_string();
                        chain.push((addr, pid, dest_db));
                    }
                    chains.push(chain);
                }
                let nkeys = get_u32(&mut p)? as usize;
                let mut moved = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    let key = get_bytes(&mut p)?.to_vec();
                    let idx = get_u32(&mut p)? as usize;
                    if idx >= chains.len() {
                        return Err(YokanError::Protocol(format!(
                            "handoff chain index {idx} out of range"
                        )));
                    }
                    moved.push((key, idx));
                }
                let mut migs = self.inner.migrations.write();
                let state = migs
                    .entry((req.provider_id, name))
                    .or_insert_with(|| MigrationState {
                        frozen: None,
                        retry_after: Duration::from_millis(5),
                        moved: HashMap::new(),
                        destinations: Vec::new(),
                    });
                // Append this batch's chains; re-installed chains are
                // deduplicated so repeated handoffs stay bounded.
                let mut chain_idx = Vec::with_capacity(chains.len());
                for chain in chains {
                    match state.destinations.iter().position(|c| *c == chain) {
                        Some(i) => chain_idx.push(i),
                        None => {
                            state.destinations.push(chain);
                            chain_idx.push(state.destinations.len() - 1);
                        }
                    }
                }
                for (key, idx) in moved {
                    state.moved.insert(key, chain_idx[idx]);
                }
                Ok(Bytes::new())
            }
            x if x == OP_MIG_COMPLETE => {
                let db = get_bytes(&mut p)?;
                let name = std::str::from_utf8(&db)
                    .map_err(|_| YokanError::Protocol("db name not utf8".into()))?
                    .to_string();
                self.inner
                    .migrations
                    .write()
                    .remove(&(req.provider_id, name));
                Ok(Bytes::new())
            }
            other => Err(YokanError::Rpc(RpcError::NoSuchRpc(other))),
        }
    }
}
