//! Per-database chain replication: replica-chain planning, the client-side
//! routing state, and resynchronisation of a repaired replica.
//!
//! A *chain* is an ordered list of same-named databases on distinct servers.
//! The first member is the chain **head**: clients send mutations to it, the
//! head applies them locally and forwards them down the chain (carrying the
//! original `(client id, seq)` dedup stamp) before acknowledging. Reads are
//! served **tail-first** — the tail is the commit point, so a value observed
//! by a read has been applied on every replica and is about to be (or has
//! been) acknowledged; a read can therefore never observe a mutation whose
//! ack the head still withholds. On a dead replica, clients fail over:
//! mutations promote the next chain member (re-issuing the *identical*
//! stamped payload, so the promoted member's dedup window suppresses
//! anything the old head already forwarded), reads fall back from the tail
//! toward the head.
//!
//! Chain membership is computed deterministically from the deployment's
//! database targets by [`build_chains`], so servers (wiring forward routes)
//! and clients (installing failover routes) agree without coordination.

use crate::client::{DbTarget, YokanClient};
use crate::error::YokanError;
use mercurio::RpcError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// FNV-1a over `bytes`; the same stable hash the placement layer uses, so
/// chain rotation is reproducible across processes and runs.
fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Group `targets` into replica chains of up to `factor` members.
///
/// Databases with the same name on different `(addr, provider)` pairs are
/// copies of one logical database. Each name's copies are sorted by
/// `(addr, provider_id)`, rotated by `stable_hash(name)` so heads (and
/// tails) spread across the deployment instead of piling on one node, and
/// truncated to `min(factor, copies)`. The result is sorted by head target,
/// so every participant computes the same chain order. With `factor == 1`
/// (or a single copy per name) every chain is a singleton and the topology
/// is byte-identical to the unreplicated layout.
pub fn build_chains(targets: &[DbTarget], factor: usize) -> Vec<Vec<DbTarget>> {
    let mut by_name: BTreeMap<String, Vec<DbTarget>> = BTreeMap::new();
    for t in targets {
        by_name.entry(t.db.clone()).or_default().push(t.clone());
    }
    let mut chains = Vec::with_capacity(by_name.len());
    for (name, mut copies) in by_name {
        copies.sort_by(|a, b| (&a.addr, a.provider_id).cmp(&(&b.addr, b.provider_id)));
        copies.dedup();
        let n = copies.len();
        let r = factor.clamp(1, n);
        let start = (stable_hash(name.as_bytes()) % n as u64) as usize;
        let chain: Vec<DbTarget> = (0..r).map(|k| copies[(start + k) % n].clone()).collect();
        chains.push(chain);
    }
    chains.sort_by(|a, b| a[0].cmp(&b[0]));
    chains
}

/// Shared per-chain failover state: the replica list in chain order plus
/// the index of the member currently acting as head. Clones of one client
/// share this, so a failover discovered by one writer thread redirects all
/// of them.
pub(crate) struct ChainState {
    pub(crate) replicas: Vec<DbTarget>,
    cursor: AtomicUsize,
}

impl ChainState {
    pub(crate) fn new(replicas: Vec<DbTarget>) -> ChainState {
        ChainState {
            replicas,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Index of the member mutations currently go to.
    pub(crate) fn cursor(&self) -> usize {
        self.cursor.load(Ordering::Relaxed) % self.replicas.len()
    }

    /// Record that the member at `idx` accepted a mutation after the
    /// previous head failed.
    pub(crate) fn promote(&self, idx: usize) {
        self.cursor
            .store(idx % self.replicas.len(), Ordering::Relaxed);
    }
}

/// Whether `err` signals that the target *node* is unreachable or gone —
/// the failover triggers — rather than an application-level refusal.
/// `Busy` is excluded on purpose: an overloaded replica is alive, and
/// failing over a stamped mutation to its peer would just shift load while
/// the dedup window absorbs the duplicate anyway.
pub fn is_dead_node(err: &RpcError) -> bool {
    matches!(
        err,
        RpcError::Timeout
            | RpcError::NetworkSaturated
            | RpcError::Transport(_)
            | RpcError::NoSuchEndpoint(_)
            | RpcError::Shutdown
    )
}

/// Tuning for the service-side chain forwarding path.
#[derive(Debug, Clone)]
pub struct ForwardParams {
    /// Per-attempt deadline for one forward RPC down the chain.
    pub timeout: Duration,
    /// Attempts per successor before declaring it unreachable.
    pub attempts: u32,
    /// How long an unreachable successor is skipped (acks degrade to
    /// single-copy) before the next mutation probes it again.
    pub suspend: Duration,
}

impl Default for ForwardParams {
    fn default() -> Self {
        ForwardParams {
            timeout: Duration::from_millis(150),
            attempts: 2,
            suspend: Duration::from_millis(500),
        }
    }
}

/// Counters for the service-side forwarding path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardStats {
    /// Mutations successfully handed to the next live chain member.
    pub forwards_sent: u64,
    /// Forwarded mutations applied on this replica.
    pub forwards_applied: u64,
    /// Mutations acknowledged without reaching a successor (it was
    /// unreachable after the configured attempts, or suspended): the chain
    /// ran degraded and the skipped replica needs a resync.
    pub forward_degraded: u64,
}

/// Outcome of one [`resync_replicas`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResyncStats {
    /// Pairs copied from the source replica.
    pub keys_copied: u64,
    /// Bytes (keys + values) copied.
    pub bytes_copied: u64,
    /// Stale keys erased from the destination (present there, absent on
    /// the source).
    pub keys_erased: u64,
}

/// Rebuild the replica `dst` from the authoritative replica `src`, page by
/// page, then erase keys `dst` holds that `src` does not. Used to restore
/// the replication factor after a failed member is replaced: the promoted
/// survivor is the source of truth, the fresh (or revived) member the
/// destination.
///
/// `client` must have **no replica routes installed** for these databases —
/// resync addresses physical replicas directly, and a routed client would
/// send both sides of the copy through the same chain head.
pub fn resync_replicas(
    client: &YokanClient,
    src: &DbTarget,
    dst: &DbTarget,
) -> Result<ResyncStats, YokanError> {
    const PAGE: usize = 1024;
    let mut stats = ResyncStats::default();
    let mut src_keys: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
    let mut from: Vec<u8> = Vec::new();
    loop {
        let page = client.list_keyvals(src, &from, &[], PAGE)?;
        if page.is_empty() {
            break;
        }
        from = page.last().expect("page non-empty").0.clone();
        stats.keys_copied += page.len() as u64;
        stats.bytes_copied += page
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum::<u64>();
        client.put_multi(dst, &page)?;
        src_keys.extend(page.into_iter().map(|(k, _)| k));
    }
    let mut from: Vec<u8> = Vec::new();
    loop {
        let page = client.list_keys(dst, &from, &[], PAGE)?;
        if page.is_empty() {
            break;
        }
        from = page.last().expect("page non-empty").clone();
        let stale: Vec<Vec<u8>> = page.into_iter().filter(|k| !src_keys.contains(k)).collect();
        if !stale.is_empty() {
            stats.keys_erased += stale.len() as u64;
            client.erase_multi(dst, &stale)?;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(addr: &str, pid: u16, db: &str) -> DbTarget {
        DbTarget::new(addr, pid, db)
    }

    #[test]
    fn chains_group_same_named_databases() {
        let targets = vec![
            t("node0", 4, "events_0"),
            t("node1", 4, "events_0"),
            t("node0", 5, "events_1"),
            t("node1", 5, "events_1"),
        ];
        let chains = build_chains(&targets, 2);
        assert_eq!(chains.len(), 2);
        for chain in &chains {
            assert_eq!(chain.len(), 2);
            assert_eq!(chain[0].db, chain[1].db);
            assert_ne!(chain[0].addr, chain[1].addr);
        }
    }

    #[test]
    fn factor_one_is_singleton_chains() {
        let targets = vec![t("node0", 4, "events_0"), t("node1", 4, "events_0")];
        let chains = build_chains(&targets, 1);
        // One chain per name; the surplus copy is not addressed.
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 1);
    }

    #[test]
    fn chains_are_deterministic_and_order_independent() {
        let mut targets = vec![
            t("node1", 4, "events_0"),
            t("node0", 4, "events_0"),
            t("node2", 4, "events_0"),
        ];
        let a = build_chains(&targets, 2);
        targets.reverse();
        let b = build_chains(&targets, 2);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), 2);
    }

    #[test]
    fn rotation_spreads_heads_across_nodes() {
        let mut targets = Vec::new();
        for db in 0..8 {
            for node in 0..2 {
                targets.push(t(&format!("node{node}"), 4 + db, &format!("events_{db}")));
            }
        }
        let chains = build_chains(&targets, 2);
        let heads_on_node0 = chains.iter().filter(|c| c[0].addr == "node0").count();
        // FNV rotation must not send every head to the same node.
        assert!(heads_on_node0 > 0 && heads_on_node0 < chains.len());
    }

    #[test]
    fn dead_node_classification() {
        assert!(is_dead_node(&RpcError::Timeout));
        assert!(is_dead_node(&RpcError::Transport("rst".into())));
        assert!(is_dead_node(&RpcError::NoSuchEndpoint("x".into())));
        assert!(is_dead_node(&RpcError::Shutdown));
        assert!(!is_dead_node(&RpcError::Busy {
            retry_after: Duration::from_millis(1)
        }));
        assert!(!is_dead_node(&RpcError::Handler("no".into())));
    }
}
