//! Storage backends.
//!
//! The paper runs HEPnOS with two Yokan backends (§IV-D): an in-memory
//! `std::map` and RocksDB writing to node-local SSD. [`MemBackend`] and
//! [`LsmBackend`] are their direct analogues.

use crate::error::YokanError;
use lsmdb::{Db, Options, WriteBatch};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;

/// An owned key/value pair.
pub type KeyValue = (Vec<u8>, Vec<u8>);

/// Key ordering note: backends must store keys in lexicographic byte order —
/// HEPnOS relies on big-endian number encoding + sorted iteration to walk
/// runs/subruns/events in ascending numeric order (paper §II-C3).
pub trait Backend: Send + Sync {
    /// Insert or overwrite one pair.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError>;

    /// Atomically insert `value` unless `key` already exists; returns the
    /// existing value when there is one (and writes nothing). Concurrent
    /// creators (e.g. two clients registering the same dataset) race on
    /// this, so implementations must make the check-and-insert atomic.
    fn put_if_absent(&self, key: &[u8], value: &[u8])
        -> Result<Option<Vec<u8>>, YokanError>;

    /// Insert a batch; atomic per backend.
    fn put_multi(&self, pairs: &[KeyValue]) -> Result<(), YokanError> {
        for (k, v) in pairs {
            self.put(k, v)?;
        }
        Ok(())
    }

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError>;

    /// Batched lookup, one result slot per key.
    fn get_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Whether the key exists.
    fn exists(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.get(key)?.is_some())
    }

    /// Delete one key (idempotent).
    fn erase(&self, key: &[u8]) -> Result<(), YokanError>;

    /// Delete a batch of keys (idempotent).
    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        for k in keys {
            self.erase(k)?;
        }
        Ok(())
    }

    /// Keys strictly greater than `from` that start with `prefix`, in sorted
    /// order, up to `limit` (`0` = unlimited). The exclusive lower bound lets
    /// callers resume iteration from the last key seen — HEPnOS's container
    /// iteration protocol.
    fn list_keys(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError>;

    /// Like [`Backend::list_keys`] but returning values too.
    fn list_keyvals(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError>;

    /// Number of stored pairs (may require a scan for LSM backends).
    fn count(&self) -> Result<u64, YokanError>;

    /// Backend kind name ("map" or "lsm"), mirroring Bedrock config values.
    fn kind(&self) -> &'static str;
}

/// Smallest key strictly greater than every key starting with `prefix`
/// (`None` when the prefix is all-0xFF or empty, i.e. unbounded).
fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut upper = prefix.to_vec();
    while let Some(last) = upper.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(upper);
        }
        upper.pop();
    }
    None
}

/// In-memory ordered-map backend (`std::map` analogue).
#[derive(Default)]
pub struct MemBackend {
    map: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl MemBackend {
    /// Create an empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for MemBackend {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        self.map.write().insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn put_if_absent(
        &self,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<Vec<u8>>, YokanError> {
        let mut map = self.map.write();
        match map.get(key) {
            Some(existing) => Ok(Some(existing.clone())),
            None => {
                map.insert(key.to_vec(), value.to_vec());
                Ok(None)
            }
        }
    }

    fn put_multi(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), YokanError> {
        let mut map = self.map.write();
        for (k, v) in pairs {
            map.insert(k.clone(), v.clone());
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        Ok(self.map.read().get(key).cloned())
    }

    fn exists(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.map.read().contains_key(key))
    }

    fn erase(&self, key: &[u8]) -> Result<(), YokanError> {
        self.map.write().remove(key);
        Ok(())
    }

    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        let mut map = self.map.write();
        for k in keys {
            map.remove(k);
        }
        Ok(())
    }

    fn list_keys(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        Ok(self
            .list_keyvals(from, prefix, limit)?
            .into_iter()
            .map(|(k, _)| k)
            .collect())
    }

    fn list_keyvals(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError> {
        let map = self.map.read();
        // Strictly greater than `from`; but when `from` is below the prefix
        // range entirely, a key equal to `prefix` itself must be included.
        let bound = if from >= prefix {
            std::ops::Bound::Excluded(from)
        } else {
            std::ops::Bound::Included(prefix)
        };
        let mut out = Vec::new();
        for (k, v) in map.range::<[u8], _>((bound, std::ops::Bound::Unbounded)) {
            if !k.starts_with(prefix) {
                // Keys are sorted and the range starts at/inside the prefix
                // region, so the first non-prefixed key ends the scan.
                break;
            }
            out.push((k.clone(), v.clone()));
            if limit != 0 && out.len() >= limit {
                break;
            }
        }
        Ok(out)
    }

    fn count(&self) -> Result<u64, YokanError> {
        Ok(self.map.read().len() as u64)
    }

    fn kind(&self) -> &'static str {
        "map"
    }
}

/// Persistent LSM backend (RocksDB analogue), writing to a directory that
/// models the node-local SSD of the paper's Theta runs.
pub struct LsmBackend {
    db: Db,
}

impl LsmBackend {
    /// Open (or create) a database under `dir`.
    pub fn open(dir: &Path) -> Result<LsmBackend, YokanError> {
        Self::open_with(dir, Options::default())
    }

    /// Open with explicit LSM options.
    pub fn open_with(dir: &Path, opts: Options) -> Result<LsmBackend, YokanError> {
        let db = Db::open(dir, opts).map_err(|e| YokanError::Backend(e.to_string()))?;
        Ok(LsmBackend { db })
    }

    /// Access the underlying engine (stats, manual compaction).
    pub fn db(&self) -> &Db {
        &self.db
    }
}

impl Backend for LsmBackend {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        self.db
            .put(key, value)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn put_multi(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), YokanError> {
        let mut batch = WriteBatch::new();
        for (k, v) in pairs {
            batch.put(k, v);
        }
        self.db
            .write(&batch)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        self.db
            .get(key)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn erase(&self, key: &[u8]) -> Result<(), YokanError> {
        self.db
            .delete(key)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        let mut batch = WriteBatch::new();
        for k in keys {
            batch.delete(k);
        }
        self.db
            .write(&batch)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn put_if_absent(
        &self,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<Vec<u8>>, YokanError> {
        self.db
            .put_if_absent(key, value)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn list_keys(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        Ok(self
            .list_keyvals(from, prefix, limit)?
            .into_iter()
            .map(|(k, _)| k)
            .collect())
    }

    fn list_keyvals(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError> {
        // lsmdb scans are inclusive on the lower bound; the smallest key
        // strictly greater than `from` is `from ++ [0]`. When `from` is below
        // the prefix range, start inclusively at the prefix itself.
        let lower = if from >= prefix {
            let mut l = from.to_vec();
            l.push(0);
            l
        } else {
            prefix.to_vec()
        };
        let upper = prefix_upper_bound(prefix);
        let got = self
            .db
            .scan(&lower, upper.as_deref(), limit)
            .map_err(|e| YokanError::Backend(e.to_string()))?;
        Ok(got
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .collect())
    }

    fn count(&self) -> Result<u64, YokanError> {
        self.db
            .count_range(b"", None)
            .map(|n| n as u64)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn kind(&self) -> &'static str {
        "lsm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "yokan-backend-{}-{name}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn backends(name: &str) -> Vec<(Box<dyn Backend>, Option<std::path::PathBuf>)> {
        let d = tmpdir(name);
        vec![
            (Box::new(MemBackend::new()), None),
            (Box::new(LsmBackend::open(&d).unwrap()), Some(d)),
        ]
    }

    #[test]
    fn put_get_erase_both_backends() {
        for (b, dir) in backends("pge") {
            b.put(b"k", b"v").unwrap();
            assert_eq!(b.get(b"k").unwrap(), Some(b"v".to_vec()));
            assert!(b.exists(b"k").unwrap());
            b.erase(b"k").unwrap();
            assert_eq!(b.get(b"k").unwrap(), None);
            assert!(!b.exists(b"k").unwrap());
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn put_multi_and_get_multi() {
        for (b, dir) in backends("multi") {
            let pairs: Vec<_> = (0..20u32)
                .map(|i| (format!("k{i:03}").into_bytes(), vec![i as u8]))
                .collect();
            b.put_multi(&pairs).unwrap();
            let keys: Vec<_> = (0..25u32).map(|i| format!("k{i:03}").into_bytes()).collect();
            let got = b.get_multi(&keys).unwrap();
            for (i, g) in got.iter().enumerate() {
                if i < 20 {
                    assert_eq!(g.as_deref(), Some(&[i as u8][..]));
                } else {
                    assert!(g.is_none());
                }
            }
            assert_eq!(b.count().unwrap(), 20);
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn list_keys_exclusive_lower_bound_and_prefix() {
        for (b, dir) in backends("list") {
            for run in 0..3u8 {
                for ev in 0..5u8 {
                    b.put(&[b'r', run, b'e', ev], b"x").unwrap();
                }
            }
            // All events of run 1:
            let keys = b.list_keys(&[b'r', 1], &[b'r', 1], 0).unwrap();
            assert_eq!(keys.len(), 5);
            assert!(keys.iter().all(|k| k.starts_with(&[b'r', 1])));
            // Resume after the 2nd event of run 1:
            let keys2 = b
                .list_keys(&[b'r', 1, b'e', 1], &[b'r', 1], 0)
                .unwrap();
            assert_eq!(keys2.len(), 3);
            assert_eq!(keys2[0], vec![b'r', 1, b'e', 2]);
            // Limit:
            let keys3 = b.list_keys(&[b'r', 1], &[b'r', 1], 2).unwrap();
            assert_eq!(keys3.len(), 2);
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn list_keyvals_returns_values() {
        for (b, dir) in backends("listkv") {
            b.put(b"a1", b"v1").unwrap();
            b.put(b"a2", b"v2").unwrap();
            b.put(b"b1", b"v3").unwrap();
            let kvs = b.list_keyvals(b"", b"a", 0).unwrap();
            assert_eq!(
                kvs,
                vec![
                    (b"a1".to_vec(), b"v1".to_vec()),
                    (b"a2".to_vec(), b"v2".to_vec())
                ]
            );
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn list_with_exact_key_equal_to_from_is_excluded() {
        for (b, dir) in backends("exclusive") {
            b.put(b"k1", b"x").unwrap();
            b.put(b"k2", b"y").unwrap();
            let keys = b.list_keys(b"k1", b"k", 0).unwrap();
            assert_eq!(keys, vec![b"k2".to_vec()]);
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn prefix_upper_bound_cases() {
        assert_eq!(prefix_upper_bound(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_upper_bound(&[0x01, 0xFF]), Some(vec![0x02]));
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_upper_bound(b""), None);
    }

    #[test]
    fn backends_agree_on_random_ops() {
        let d = tmpdir("agree");
        let mem = MemBackend::new();
        let lsm = LsmBackend::open(&d).unwrap();
        let mut seed = 0x12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..500 {
            let k = format!("key{:02}", next() % 40).into_bytes();
            match next() % 3 {
                0 | 1 => {
                    let v = format!("val{}", next() % 1000).into_bytes();
                    mem.put(&k, &v).unwrap();
                    lsm.put(&k, &v).unwrap();
                }
                _ => {
                    mem.erase(&k).unwrap();
                    lsm.erase(&k).unwrap();
                }
            }
        }
        assert_eq!(mem.count().unwrap(), lsm.count().unwrap());
        let mk = mem.list_keyvals(b"", b"", 0).unwrap();
        let lk = lsm.list_keyvals(b"", b"", 0).unwrap();
        assert_eq!(mk, lk);
        drop(lsm);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn kinds() {
        let d = tmpdir("kind");
        assert_eq!(MemBackend::new().kind(), "map");
        let l = LsmBackend::open(&d).unwrap();
        assert_eq!(l.kind(), "lsm");
        drop(l);
        std::fs::remove_dir_all(&d).ok();
    }
}
