//! Storage backends.
//!
//! The paper runs HEPnOS with two Yokan backends (§IV-D): an in-memory
//! `std::map` and RocksDB writing to node-local SSD. [`MemBackend`] and
//! [`LsmBackend`] are their direct analogues.

use crate::error::YokanError;
use lsmdb::{Db, DbError, DbStats, Options, WriteBatch};
use mercurio::RpcError;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// An owned key/value pair.
pub type KeyValue = (Vec<u8>, Vec<u8>);

/// Operational counters a backend exposes for monitoring (all zero where a
/// backend has nothing to report).
#[derive(Debug, Clone, Default)]
pub struct BackendStats {
    /// Number of internal shards (1 for unsharded backends).
    pub shards: usize,
    /// Live entry count per shard.
    pub shard_entries: Vec<usize>,
    /// Read-cache hits (LSM backends only).
    pub cache_hits: u64,
    /// Read-cache misses (LSM backends only).
    pub cache_misses: u64,
    /// Read-cache evictions (LSM backends only).
    pub cache_evictions: u64,
    /// Resident key+value payload bytes (memory backends with watermarks).
    pub mem_bytes: u64,
    /// Mutations that stalled at the soft memory watermark (for LSM
    /// backends: writes that stalled on L0 buildup).
    pub soft_stalls: u64,
    /// Mutations shed at the hard memory watermark (for LSM backends:
    /// writes rejected with `Busy` at the L0 stop trigger).
    pub hard_sheds: u64,
    /// Full LSM engine counters (LSM backends only): levels, compactions,
    /// WAL traffic, amplification inputs.
    pub lsm: Option<DbStats>,
}

/// Memory watermark policy for [`MemBackend`] — the RocksDB-style write
/// control split into a *soft* level (mutations stall for a bounded time,
/// throttling writers) and a *hard* level (mutations are shed with
/// [`RpcError::Busy`]), so backend memory stays bounded instead of growing
/// until the process is OOM-killed.
#[derive(Debug, Clone)]
pub struct WatermarkConfig {
    /// Byte level above which mutations stall (bounded wait) before
    /// applying.
    pub soft_bytes: usize,
    /// Byte level mutations may never push resident bytes past; a mutation
    /// that would is rejected whole with [`RpcError::Busy`].
    pub hard_bytes: usize,
    /// Maximum time one mutation waits at the soft watermark before
    /// proceeding anyway.
    pub max_stall: Duration,
    /// Backoff hint carried in hard-watermark [`RpcError::Busy`] rejections.
    pub retry_after_hint: Duration,
}

impl Default for WatermarkConfig {
    fn default() -> Self {
        WatermarkConfig {
            soft_bytes: 48 << 20,
            hard_bytes: 64 << 20,
            max_stall: Duration::from_millis(20),
            retry_after_hint: Duration::from_millis(5),
        }
    }
}

/// Key ordering note: backends must store keys in lexicographic byte order —
/// HEPnOS relies on big-endian number encoding + sorted iteration to walk
/// runs/subruns/events in ascending numeric order (paper §II-C3).
pub trait Backend: Send + Sync {
    /// Insert or overwrite one pair.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError>;

    /// Atomically insert `value` unless `key` already exists; returns the
    /// existing value when there is one (and writes nothing). Concurrent
    /// creators (e.g. two clients registering the same dataset) race on
    /// this, so implementations must make the check-and-insert atomic.
    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, YokanError>;

    /// Insert a batch; atomic per backend.
    fn put_multi(&self, pairs: &[KeyValue]) -> Result<(), YokanError> {
        for (k, v) in pairs {
            self.put(k, v)?;
        }
        Ok(())
    }

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError>;

    /// Batched lookup, one result slot per key.
    fn get_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Whether the key exists.
    fn exists(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.get(key)?.is_some())
    }

    /// Batched existence check, one result slot per key.
    fn exists_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<bool>, YokanError> {
        keys.iter().map(|k| self.exists(k)).collect()
    }

    /// Delete one key (idempotent).
    fn erase(&self, key: &[u8]) -> Result<(), YokanError>;

    /// Delete a batch of keys (idempotent).
    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        for k in keys {
            self.erase(k)?;
        }
        Ok(())
    }

    /// Keys strictly greater than `from` that start with `prefix`, in sorted
    /// order, up to `limit` (`0` = unlimited). The exclusive lower bound lets
    /// callers resume iteration from the last key seen — HEPnOS's container
    /// iteration protocol.
    fn list_keys(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError>;

    /// Like [`Backend::list_keys`] but returning values too.
    fn list_keyvals(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError>;

    /// Number of stored pairs (may require a scan for LSM backends).
    fn count(&self) -> Result<u64, YokanError>;

    /// Backend kind name ("map" or "lsm"), mirroring Bedrock config values.
    fn kind(&self) -> &'static str;

    /// Monitoring counters (shard occupancy, cache hit rates).
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

/// Smallest key strictly greater than every key starting with `prefix`
/// (`None` when the prefix is all-0xFF or empty, i.e. unbounded).
fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut upper = prefix.to_vec();
    while let Some(last) = upper.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(upper);
        }
        upper.pop();
    }
    None
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(key: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// In-memory ordered-map backend (`std::map` analogue).
///
/// The map is split into a fixed array of hash-routed shards, each behind its
/// own `RwLock`, so concurrent point operations on different keys proceed in
/// parallel instead of serializing on one map-wide lock. Ordered iteration
/// (`list_keys` / `list_keyvals`) reconstructs the global lexicographic order
/// with a k-way merge across the shards' sorted ranges — the sorted-order
/// contract (big-endian keys iterate in numeric event order) is observable
/// behavior HEPnOS relies on, so it is preserved exactly. Multi-key writes
/// lock every touched shard in index order before applying, keeping
/// `put_multi` / `erase_multi` atomic and deadlock-free.
pub struct MemBackend {
    shards: Box<[MemShard]>,
    mask: u64,
    /// Accounted resident key+value bytes. Reservation-style: a mutation
    /// reserves its incoming bytes *before* applying and rolls back on shed,
    /// so the accounted value never exceeds the hard watermark.
    mem_bytes: AtomicI64,
    watermarks: Option<WatermarkConfig>,
    soft_stalls: AtomicU64,
    hard_sheds: AtomicU64,
}

/// One shard of the in-memory map.
type MemShard = RwLock<BTreeMap<Vec<u8>, Vec<u8>>>;

/// Write guards for the shards a batch touches (`None` = shard untouched),
/// indexed by shard.
type ShardWriteGuards<'a> =
    Vec<Option<parking_lot::RwLockWriteGuard<'a, BTreeMap<Vec<u8>, Vec<u8>>>>>;

impl Default for MemBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl MemBackend {
    /// Create an empty backend with the default shard count
    /// (`min(16, available parallelism)`, rounded to a power of two).
    pub fn new() -> Self {
        Self::with_shards(lsmdb::cache::default_shard_count())
    }

    /// Create an empty backend with an explicit shard count (rounded up to a
    /// power of two).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Vec<MemShard> = (0..n).map(|_| RwLock::new(BTreeMap::new())).collect();
        MemBackend {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
            mem_bytes: AtomicI64::new(0),
            watermarks: None,
            soft_stalls: AtomicU64::new(0),
            hard_sheds: AtomicU64::new(0),
        }
    }

    /// Enable soft/hard memory watermarks on this backend.
    pub fn with_watermarks(mut self, cfg: WatermarkConfig) -> Self {
        assert!(
            cfg.soft_bytes <= cfg.hard_bytes,
            "soft watermark must not exceed the hard watermark"
        );
        self.watermarks = Some(cfg);
        self
    }

    /// Accounted resident key+value payload bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.mem_bytes.load(Ordering::Relaxed).max(0) as u64
    }

    fn charge(&self, delta: i64) {
        self.mem_bytes.fetch_add(delta, Ordering::AcqRel);
    }

    /// Reserve `incoming` bytes against the watermarks before a mutation is
    /// applied. Stalls (bounded by [`WatermarkConfig::max_stall`]) above the
    /// soft level; fails with [`RpcError::Busy`] — reserving nothing, so the
    /// mutation must not be applied at all — when the reservation would
    /// cross the hard level.
    fn reserve_bytes(&self, incoming: usize) -> Result<(), YokanError> {
        let Some(cfg) = &self.watermarks else {
            return Ok(());
        };
        let incoming = incoming as i64;
        let over_soft = |now: i64| -> bool { (now + incoming).max(0) as usize > cfg.soft_bytes };
        if over_soft(self.mem_bytes.load(Ordering::Acquire)) {
            // Soft watermark: throttle, don't reject. Waiting happens before
            // any shard lock is taken, so stalled writers block nobody.
            self.soft_stalls.fetch_add(1, Ordering::Relaxed);
            let deadline = Instant::now() + cfg.max_stall;
            while over_soft(self.mem_bytes.load(Ordering::Acquire)) && Instant::now() < deadline {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        let now = self.mem_bytes.fetch_add(incoming, Ordering::AcqRel) + incoming;
        if now.max(0) as usize > cfg.hard_bytes {
            self.mem_bytes.fetch_sub(incoming, Ordering::AcqRel);
            self.hard_sheds.fetch_add(1, Ordering::Relaxed);
            return Err(YokanError::Rpc(RpcError::Busy {
                retry_after: cfg.retry_after_hint,
            }));
        }
        Ok(())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_idx(&self, key: &[u8]) -> usize {
        (fnv1a(key) & self.mask) as usize
    }

    /// Write-lock every shard touched by `keys`, in ascending index order
    /// (the global lock order that keeps concurrent batches deadlock-free).
    fn lock_shards_for<'a, K: AsRef<[u8]>>(
        &'a self,
        keys: impl Iterator<Item = K>,
    ) -> ShardWriteGuards<'a> {
        let mut needed = vec![false; self.shards.len()];
        for k in keys {
            needed[self.shard_idx(k.as_ref())] = true;
        }
        self.shards
            .iter()
            .zip(needed)
            .map(|(s, n)| n.then(|| s.write()))
            .collect()
    }
}

impl Backend for MemBackend {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        self.reserve_bytes(key.len() + value.len())?;
        let old = self.shards[self.shard_idx(key)]
            .write()
            .insert(key.to_vec(), value.to_vec());
        if let Some(old) = old {
            // Overwrite: the reservation charged a whole new pair, but only
            // the value delta actually grew — credit the replaced bytes.
            self.charge(-((key.len() + old.len()) as i64));
        }
        Ok(())
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        self.reserve_bytes(key.len() + value.len())?;
        // A key lives in exactly one shard, so holding that shard's write
        // lock across the check-and-insert keeps this linearizable.
        let mut map = self.shards[self.shard_idx(key)].write();
        match map.get(key) {
            Some(existing) => {
                let existing = existing.clone();
                drop(map);
                self.charge(-((key.len() + value.len()) as i64));
                Ok(Some(existing))
            }
            None => {
                map.insert(key.to_vec(), value.to_vec());
                Ok(None)
            }
        }
    }

    fn put_multi(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), YokanError> {
        // The reservation covers the whole batch and happens before any
        // shard lock is taken: a shed batch is rejected whole, never
        // partially applied.
        self.reserve_bytes(pairs.iter().map(|(k, v)| k.len() + v.len()).sum())?;
        let mut guards = self.lock_shards_for(pairs.iter().map(|(k, _)| k));
        let mut replaced = 0i64;
        for (k, v) in pairs {
            let old = guards[self.shard_idx(k)]
                .as_mut()
                .expect("shard was locked")
                .insert(k.clone(), v.clone());
            if let Some(old) = old {
                replaced += (k.len() + old.len()) as i64;
            }
        }
        drop(guards);
        if replaced != 0 {
            self.charge(-replaced);
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        Ok(self.shards[self.shard_idx(key)].read().get(key).cloned())
    }

    fn get_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        // Group by shard so each shard is locked once per batch rather than
        // once per key.
        let mut out = vec![None; keys.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, k) in keys.iter().enumerate() {
            by_shard[self.shard_idx(k)].push(i);
        }
        for (shard, indices) in self.shards.iter().zip(by_shard) {
            if indices.is_empty() {
                continue;
            }
            let map = shard.read();
            for i in indices {
                out[i] = map.get(&keys[i]).cloned();
            }
        }
        Ok(out)
    }

    fn exists(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.shards[self.shard_idx(key)].read().contains_key(key))
    }

    fn exists_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<bool>, YokanError> {
        let mut out = vec![false; keys.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, k) in keys.iter().enumerate() {
            by_shard[self.shard_idx(k)].push(i);
        }
        for (shard, indices) in self.shards.iter().zip(by_shard) {
            if indices.is_empty() {
                continue;
            }
            let map = shard.read();
            for i in indices {
                out[i] = map.contains_key(&keys[i]);
            }
        }
        Ok(out)
    }

    fn erase(&self, key: &[u8]) -> Result<(), YokanError> {
        let old = self.shards[self.shard_idx(key)].write().remove(key);
        if let Some(old) = old {
            self.charge(-((key.len() + old.len()) as i64));
        }
        Ok(())
    }

    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        let mut guards = self.lock_shards_for(keys.iter());
        let mut freed = 0i64;
        for k in keys {
            let old = guards[self.shard_idx(k)]
                .as_mut()
                .expect("shard was locked")
                .remove(k);
            if let Some(old) = old {
                freed += (k.len() + old.len()) as i64;
            }
        }
        drop(guards);
        if freed != 0 {
            self.charge(-freed);
        }
        Ok(())
    }

    fn list_keys(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        Ok(self
            .list_keyvals(from, prefix, limit)?
            .into_iter()
            .map(|(k, _)| k)
            .collect())
    }

    fn list_keyvals(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError> {
        // Strictly greater than `from`; but when `from` is below the prefix
        // range entirely, a key equal to `prefix` itself must be included.
        let bound = if from >= prefix {
            std::ops::Bound::Excluded(from)
        } else {
            std::ops::Bound::Included(prefix)
        };
        // Snapshot all shards (read locks held together so the listing is a
        // consistent cut), then k-way merge their sorted ranges.
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut iters: Vec<_> = guards
            .iter()
            .map(|g| g.range::<[u8], _>((bound, std::ops::Bound::Unbounded)))
            .collect();
        let mut heads: Vec<Option<(&Vec<u8>, &Vec<u8>)>> =
            iters.iter_mut().map(|it| it.next()).collect();
        let mut out = Vec::new();
        loop {
            // Smallest still-prefixed head wins. Within a shard keys are
            // sorted and the range starts at/inside the prefix region, so a
            // non-prefixed head means that shard is exhausted.
            let mut best: Option<usize> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some((k, _)) = head {
                    if !k.starts_with(prefix) {
                        continue;
                    }
                    if best.is_none_or(|b| {
                        let (bk, _) = heads[b].expect("best head present");
                        k.as_slice() < bk.as_slice()
                    }) {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let (k, v) = heads[i].expect("best head present");
            out.push((k.clone(), v.clone()));
            if limit != 0 && out.len() >= limit {
                break;
            }
            heads[i] = iters[i].next();
        }
        Ok(out)
    }

    fn count(&self) -> Result<u64, YokanError> {
        Ok(self.shards.iter().map(|s| s.read().len() as u64).sum())
    }

    fn kind(&self) -> &'static str {
        "map"
    }

    fn stats(&self) -> BackendStats {
        let shard_entries: Vec<usize> = self.shards.iter().map(|s| s.read().len()).collect();
        BackendStats {
            shards: self.shards.len(),
            shard_entries,
            mem_bytes: self.resident_bytes(),
            soft_stalls: self.soft_stalls.load(Ordering::Relaxed),
            hard_sheds: self.hard_sheds.load(Ordering::Relaxed),
            ..BackendStats::default()
        }
    }
}

/// Persistent LSM backend (RocksDB analogue), writing to a directory that
/// models the node-local SSD of the paper's Theta runs.
pub struct LsmBackend {
    db: Db,
}

/// Translate engine errors into RPC-visible ones. `Busy` (the L0 write
/// gate) must surface as [`RpcError::Busy`] so clients back off and retry
/// exactly as they do for the in-memory hard watermark — the overload
/// contract is backend-independent.
fn lsm_err(e: DbError) -> YokanError {
    match e {
        DbError::Busy { retry_after } => YokanError::Rpc(RpcError::Busy { retry_after }),
        other => YokanError::Backend(other.to_string()),
    }
}

impl LsmBackend {
    /// Open (or create) a database under `dir`.
    pub fn open(dir: &Path) -> Result<LsmBackend, YokanError> {
        Self::open_with(dir, Options::default())
    }

    /// Open with explicit LSM options.
    pub fn open_with(dir: &Path, opts: Options) -> Result<LsmBackend, YokanError> {
        let db = Db::open(dir, opts).map_err(lsm_err)?;
        Ok(LsmBackend { db })
    }

    /// Access the underlying engine (stats, manual compaction).
    pub fn db(&self) -> &Db {
        &self.db
    }
}

impl Backend for LsmBackend {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        self.db.put(key, value).map_err(lsm_err)
    }

    fn put_multi(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), YokanError> {
        let mut batch = WriteBatch::new();
        for (k, v) in pairs {
            batch.put(k, v);
        }
        self.db.write(&batch).map_err(lsm_err)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        self.db.get(key).map_err(lsm_err)
    }

    fn erase(&self, key: &[u8]) -> Result<(), YokanError> {
        self.db.delete(key).map_err(lsm_err)
    }

    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        let mut batch = WriteBatch::new();
        for k in keys {
            batch.delete(k);
        }
        self.db.write(&batch).map_err(lsm_err)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        self.db.put_if_absent(key, value).map_err(lsm_err)
    }

    fn list_keys(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        Ok(self
            .list_keyvals(from, prefix, limit)?
            .into_iter()
            .map(|(k, _)| k)
            .collect())
    }

    fn list_keyvals(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError> {
        // lsmdb scans are inclusive on the lower bound; the smallest key
        // strictly greater than `from` is `from ++ [0]`. When `from` is below
        // the prefix range, start inclusively at the prefix itself.
        let lower = if from >= prefix {
            let mut l = from.to_vec();
            l.push(0);
            l
        } else {
            prefix.to_vec()
        };
        let upper = prefix_upper_bound(prefix);
        let got = self
            .db
            .scan(&lower, upper.as_deref(), limit)
            .map_err(lsm_err)?;
        Ok(got
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .collect())
    }

    fn count(&self) -> Result<u64, YokanError> {
        self.db
            .count_range(b"", None)
            .map(|n| n as u64)
            .map_err(lsm_err)
    }

    fn kind(&self) -> &'static str {
        "lsm"
    }

    fn stats(&self) -> BackendStats {
        let cache = self.db.read_cache_stats();
        let lsm = self.db.stats();
        BackendStats {
            shards: cache.shard_entries.len(),
            shard_entries: cache.shard_entries,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            soft_stalls: lsm.write_stalls,
            hard_sheds: lsm.write_sheds,
            lsm: Some(lsm),
            ..BackendStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "yokan-backend-{}-{name}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn backends(name: &str) -> Vec<(Box<dyn Backend>, Option<std::path::PathBuf>)> {
        let d = tmpdir(name);
        vec![
            (Box::new(MemBackend::new()), None),
            (Box::new(LsmBackend::open(&d).unwrap()), Some(d)),
        ]
    }

    #[test]
    fn put_get_erase_both_backends() {
        for (b, dir) in backends("pge") {
            b.put(b"k", b"v").unwrap();
            assert_eq!(b.get(b"k").unwrap(), Some(b"v".to_vec()));
            assert!(b.exists(b"k").unwrap());
            b.erase(b"k").unwrap();
            assert_eq!(b.get(b"k").unwrap(), None);
            assert!(!b.exists(b"k").unwrap());
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn put_multi_and_get_multi() {
        for (b, dir) in backends("multi") {
            let pairs: Vec<_> = (0..20u32)
                .map(|i| (format!("k{i:03}").into_bytes(), vec![i as u8]))
                .collect();
            b.put_multi(&pairs).unwrap();
            let keys: Vec<_> = (0..25u32)
                .map(|i| format!("k{i:03}").into_bytes())
                .collect();
            let got = b.get_multi(&keys).unwrap();
            for (i, g) in got.iter().enumerate() {
                if i < 20 {
                    assert_eq!(g.as_deref(), Some(&[i as u8][..]));
                } else {
                    assert!(g.is_none());
                }
            }
            assert_eq!(b.count().unwrap(), 20);
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn list_keys_exclusive_lower_bound_and_prefix() {
        for (b, dir) in backends("list") {
            for run in 0..3u8 {
                for ev in 0..5u8 {
                    b.put(&[b'r', run, b'e', ev], b"x").unwrap();
                }
            }
            // All events of run 1:
            let keys = b.list_keys(&[b'r', 1], &[b'r', 1], 0).unwrap();
            assert_eq!(keys.len(), 5);
            assert!(keys.iter().all(|k| k.starts_with(&[b'r', 1])));
            // Resume after the 2nd event of run 1:
            let keys2 = b.list_keys(&[b'r', 1, b'e', 1], &[b'r', 1], 0).unwrap();
            assert_eq!(keys2.len(), 3);
            assert_eq!(keys2[0], vec![b'r', 1, b'e', 2]);
            // Limit:
            let keys3 = b.list_keys(&[b'r', 1], &[b'r', 1], 2).unwrap();
            assert_eq!(keys3.len(), 2);
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn list_keyvals_returns_values() {
        for (b, dir) in backends("listkv") {
            b.put(b"a1", b"v1").unwrap();
            b.put(b"a2", b"v2").unwrap();
            b.put(b"b1", b"v3").unwrap();
            let kvs = b.list_keyvals(b"", b"a", 0).unwrap();
            assert_eq!(
                kvs,
                vec![
                    (b"a1".to_vec(), b"v1".to_vec()),
                    (b"a2".to_vec(), b"v2".to_vec())
                ]
            );
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn list_with_exact_key_equal_to_from_is_excluded() {
        for (b, dir) in backends("exclusive") {
            b.put(b"k1", b"x").unwrap();
            b.put(b"k2", b"y").unwrap();
            let keys = b.list_keys(b"k1", b"k", 0).unwrap();
            assert_eq!(keys, vec![b"k2".to_vec()]);
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn prefix_upper_bound_cases() {
        assert_eq!(prefix_upper_bound(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_upper_bound(&[0x01, 0xFF]), Some(vec![0x02]));
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_upper_bound(b""), None);
    }

    #[test]
    fn backends_agree_on_random_ops() {
        let d = tmpdir("agree");
        let mem = MemBackend::new();
        let lsm = LsmBackend::open(&d).unwrap();
        let mut seed = 0x12345u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..500 {
            let k = format!("key{:02}", next() % 40).into_bytes();
            match next() % 3 {
                0 | 1 => {
                    let v = format!("val{}", next() % 1000).into_bytes();
                    mem.put(&k, &v).unwrap();
                    lsm.put(&k, &v).unwrap();
                }
                _ => {
                    mem.erase(&k).unwrap();
                    lsm.erase(&k).unwrap();
                }
            }
        }
        assert_eq!(mem.count().unwrap(), lsm.count().unwrap());
        let mk = mem.list_keyvals(b"", b"", 0).unwrap();
        let lk = lsm.list_keyvals(b"", b"", 0).unwrap();
        assert_eq!(mk, lk);
        drop(lsm);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn watermarks_account_resident_bytes() {
        let b = MemBackend::with_shards(4).with_watermarks(WatermarkConfig {
            soft_bytes: 1 << 20,
            hard_bytes: 2 << 20,
            ..WatermarkConfig::default()
        });
        b.put(b"key", b"value").unwrap();
        assert_eq!(b.resident_bytes(), 8);
        b.put(b"key", b"v").unwrap(); // overwrite shrinks
        assert_eq!(b.resident_bytes(), 4);
        b.put_multi(&[
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), b"22".to_vec()),
        ])
        .unwrap();
        assert_eq!(b.resident_bytes(), 4 + 2 + 3);
        assert_eq!(b.put_if_absent(b"a", b"xyz").unwrap(), Some(b"1".to_vec()));
        assert_eq!(b.resident_bytes(), 9); // no growth on existing key
        b.erase(b"key").unwrap();
        b.erase_multi(&[b"a".to_vec(), b"b".to_vec()]).unwrap();
        assert_eq!(b.resident_bytes(), 0);
        assert_eq!(b.stats().mem_bytes, 0);
    }

    #[test]
    fn hard_watermark_sheds_whole_batch() {
        let b = MemBackend::with_shards(4).with_watermarks(WatermarkConfig {
            soft_bytes: 64,
            hard_bytes: 64,
            max_stall: Duration::ZERO,
            retry_after_hint: Duration::from_millis(7),
        });
        let big: Vec<KeyValue> = (0..10u8).map(|i| (vec![i; 8], vec![i; 8])).collect();
        let err = b.put_multi(&big).unwrap_err();
        assert_eq!(
            err,
            YokanError::Rpc(RpcError::Busy {
                retry_after: Duration::from_millis(7)
            })
        );
        // Shed whole: nothing was applied, nothing stays reserved.
        assert_eq!(b.count().unwrap(), 0);
        assert_eq!(b.resident_bytes(), 0);
        assert_eq!(b.stats().hard_sheds, 1);
        // A batch that fits still lands.
        b.put_multi(&big[..2]).unwrap();
        assert_eq!(b.count().unwrap(), 2);
    }

    #[test]
    fn soft_watermark_stalls_but_applies() {
        let b = MemBackend::with_shards(1).with_watermarks(WatermarkConfig {
            soft_bytes: 8,
            hard_bytes: 1 << 20,
            max_stall: Duration::from_millis(2),
            retry_after_hint: Duration::from_millis(1),
        });
        b.put(b"aaaa", b"bbbb").unwrap(); // fills to the soft level
        let t0 = Instant::now();
        b.put(b"cccc", b"dddd").unwrap(); // stalls, then applies anyway
        assert!(t0.elapsed() >= Duration::from_millis(2));
        assert_eq!(b.count().unwrap(), 2);
        assert_eq!(b.stats().soft_stalls, 1);
        assert_eq!(b.stats().hard_sheds, 0);
    }

    #[test]
    fn lsm_l0_stop_maps_to_rpc_busy() {
        let d = tmpdir("lsmbusy");
        let b = LsmBackend::open_with(
            &d,
            lsmdb::Options {
                memtable_bytes: 128,
                l0_compaction_trigger: 100, // compaction never keeps up
                l0_slowdown_trigger: 2,
                l0_stop_trigger: 3,
                max_stall: Duration::from_millis(1),
                retry_after_hint: Duration::from_millis(9),
                compaction: lsmdb::CompactionMode::Background,
                ..lsmdb::Options::default()
            },
        )
        .unwrap();
        b.db().pause_compaction(true);
        // Fill memtables until L0 hits the stop trigger and writes shed.
        let mut shed = None;
        for i in 0..400u32 {
            let k = format!("busy{i:05}").into_bytes();
            match b.put(&k, &[0u8; 64]) {
                Ok(()) => {}
                Err(e) => {
                    shed = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            shed.expect("L0 stop trigger should shed a write"),
            YokanError::Rpc(RpcError::Busy {
                retry_after: Duration::from_millis(9)
            })
        );
        let stats = b.stats();
        assert!(stats.hard_sheds >= 1, "shed must be counted");
        let lsm = stats.lsm.expect("lsm backend reports engine stats");
        assert!(lsm.l0_tables() >= 3);
        // Draining L0 lets the engine accept writes again.
        b.db().pause_compaction(false);
        b.db().compact_all().unwrap();
        b.put(b"after", b"ok").unwrap();
        assert_eq!(b.get(b"after").unwrap(), Some(b"ok".to_vec()));
        drop(b);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn kinds() {
        let d = tmpdir("kind");
        assert_eq!(MemBackend::new().kind(), "map");
        let l = LsmBackend::open(&d).unwrap();
        assert_eq!(l.kind(), "lsm");
        drop(l);
        std::fs::remove_dir_all(&d).ok();
    }
}
