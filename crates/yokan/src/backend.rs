//! Storage backends.
//!
//! The paper runs HEPnOS with two Yokan backends (§IV-D): an in-memory
//! `std::map` and RocksDB writing to node-local SSD. [`MemBackend`] and
//! [`LsmBackend`] are their direct analogues.

use crate::error::YokanError;
use lsmdb::{Db, Options, WriteBatch};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;

/// An owned key/value pair.
pub type KeyValue = (Vec<u8>, Vec<u8>);

/// Operational counters a backend exposes for monitoring (all zero where a
/// backend has nothing to report).
#[derive(Debug, Clone, Default)]
pub struct BackendStats {
    /// Number of internal shards (1 for unsharded backends).
    pub shards: usize,
    /// Live entry count per shard.
    pub shard_entries: Vec<usize>,
    /// Read-cache hits (LSM backends only).
    pub cache_hits: u64,
    /// Read-cache misses (LSM backends only).
    pub cache_misses: u64,
    /// Read-cache evictions (LSM backends only).
    pub cache_evictions: u64,
}

/// Key ordering note: backends must store keys in lexicographic byte order —
/// HEPnOS relies on big-endian number encoding + sorted iteration to walk
/// runs/subruns/events in ascending numeric order (paper §II-C3).
pub trait Backend: Send + Sync {
    /// Insert or overwrite one pair.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError>;

    /// Atomically insert `value` unless `key` already exists; returns the
    /// existing value when there is one (and writes nothing). Concurrent
    /// creators (e.g. two clients registering the same dataset) race on
    /// this, so implementations must make the check-and-insert atomic.
    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, YokanError>;

    /// Insert a batch; atomic per backend.
    fn put_multi(&self, pairs: &[KeyValue]) -> Result<(), YokanError> {
        for (k, v) in pairs {
            self.put(k, v)?;
        }
        Ok(())
    }

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError>;

    /// Batched lookup, one result slot per key.
    fn get_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Whether the key exists.
    fn exists(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.get(key)?.is_some())
    }

    /// Batched existence check, one result slot per key.
    fn exists_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<bool>, YokanError> {
        keys.iter().map(|k| self.exists(k)).collect()
    }

    /// Delete one key (idempotent).
    fn erase(&self, key: &[u8]) -> Result<(), YokanError>;

    /// Delete a batch of keys (idempotent).
    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        for k in keys {
            self.erase(k)?;
        }
        Ok(())
    }

    /// Keys strictly greater than `from` that start with `prefix`, in sorted
    /// order, up to `limit` (`0` = unlimited). The exclusive lower bound lets
    /// callers resume iteration from the last key seen — HEPnOS's container
    /// iteration protocol.
    fn list_keys(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError>;

    /// Like [`Backend::list_keys`] but returning values too.
    fn list_keyvals(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError>;

    /// Number of stored pairs (may require a scan for LSM backends).
    fn count(&self) -> Result<u64, YokanError>;

    /// Backend kind name ("map" or "lsm"), mirroring Bedrock config values.
    fn kind(&self) -> &'static str;

    /// Monitoring counters (shard occupancy, cache hit rates).
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

/// Smallest key strictly greater than every key starting with `prefix`
/// (`None` when the prefix is all-0xFF or empty, i.e. unbounded).
fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut upper = prefix.to_vec();
    while let Some(last) = upper.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(upper);
        }
        upper.pop();
    }
    None
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(key: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// In-memory ordered-map backend (`std::map` analogue).
///
/// The map is split into a fixed array of hash-routed shards, each behind its
/// own `RwLock`, so concurrent point operations on different keys proceed in
/// parallel instead of serializing on one map-wide lock. Ordered iteration
/// (`list_keys` / `list_keyvals`) reconstructs the global lexicographic order
/// with a k-way merge across the shards' sorted ranges — the sorted-order
/// contract (big-endian keys iterate in numeric event order) is observable
/// behavior HEPnOS relies on, so it is preserved exactly. Multi-key writes
/// lock every touched shard in index order before applying, keeping
/// `put_multi` / `erase_multi` atomic and deadlock-free.
pub struct MemBackend {
    shards: Box<[MemShard]>,
    mask: u64,
}

/// One shard of the in-memory map.
type MemShard = RwLock<BTreeMap<Vec<u8>, Vec<u8>>>;

/// Write guards for the shards a batch touches (`None` = shard untouched),
/// indexed by shard.
type ShardWriteGuards<'a> =
    Vec<Option<parking_lot::RwLockWriteGuard<'a, BTreeMap<Vec<u8>, Vec<u8>>>>>;

impl Default for MemBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl MemBackend {
    /// Create an empty backend with the default shard count
    /// (`min(16, available parallelism)`, rounded to a power of two).
    pub fn new() -> Self {
        Self::with_shards(lsmdb::cache::default_shard_count())
    }

    /// Create an empty backend with an explicit shard count (rounded up to a
    /// power of two).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Vec<MemShard> = (0..n).map(|_| RwLock::new(BTreeMap::new())).collect();
        MemBackend {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_idx(&self, key: &[u8]) -> usize {
        (fnv1a(key) & self.mask) as usize
    }

    /// Write-lock every shard touched by `keys`, in ascending index order
    /// (the global lock order that keeps concurrent batches deadlock-free).
    fn lock_shards_for<'a, K: AsRef<[u8]>>(
        &'a self,
        keys: impl Iterator<Item = K>,
    ) -> ShardWriteGuards<'a> {
        let mut needed = vec![false; self.shards.len()];
        for k in keys {
            needed[self.shard_idx(k.as_ref())] = true;
        }
        self.shards
            .iter()
            .zip(needed)
            .map(|(s, n)| n.then(|| s.write()))
            .collect()
    }
}

impl Backend for MemBackend {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        self.shards[self.shard_idx(key)]
            .write()
            .insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        // A key lives in exactly one shard, so holding that shard's write
        // lock across the check-and-insert keeps this linearizable.
        let mut map = self.shards[self.shard_idx(key)].write();
        match map.get(key) {
            Some(existing) => Ok(Some(existing.clone())),
            None => {
                map.insert(key.to_vec(), value.to_vec());
                Ok(None)
            }
        }
    }

    fn put_multi(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), YokanError> {
        let mut guards = self.lock_shards_for(pairs.iter().map(|(k, _)| k));
        for (k, v) in pairs {
            guards[self.shard_idx(k)]
                .as_mut()
                .expect("shard was locked")
                .insert(k.clone(), v.clone());
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        Ok(self.shards[self.shard_idx(key)].read().get(key).cloned())
    }

    fn get_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        // Group by shard so each shard is locked once per batch rather than
        // once per key.
        let mut out = vec![None; keys.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, k) in keys.iter().enumerate() {
            by_shard[self.shard_idx(k)].push(i);
        }
        for (shard, indices) in self.shards.iter().zip(by_shard) {
            if indices.is_empty() {
                continue;
            }
            let map = shard.read();
            for i in indices {
                out[i] = map.get(&keys[i]).cloned();
            }
        }
        Ok(out)
    }

    fn exists(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.shards[self.shard_idx(key)].read().contains_key(key))
    }

    fn exists_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<bool>, YokanError> {
        let mut out = vec![false; keys.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, k) in keys.iter().enumerate() {
            by_shard[self.shard_idx(k)].push(i);
        }
        for (shard, indices) in self.shards.iter().zip(by_shard) {
            if indices.is_empty() {
                continue;
            }
            let map = shard.read();
            for i in indices {
                out[i] = map.contains_key(&keys[i]);
            }
        }
        Ok(out)
    }

    fn erase(&self, key: &[u8]) -> Result<(), YokanError> {
        self.shards[self.shard_idx(key)].write().remove(key);
        Ok(())
    }

    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        let mut guards = self.lock_shards_for(keys.iter());
        for k in keys {
            guards[self.shard_idx(k)]
                .as_mut()
                .expect("shard was locked")
                .remove(k);
        }
        Ok(())
    }

    fn list_keys(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        Ok(self
            .list_keyvals(from, prefix, limit)?
            .into_iter()
            .map(|(k, _)| k)
            .collect())
    }

    fn list_keyvals(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError> {
        // Strictly greater than `from`; but when `from` is below the prefix
        // range entirely, a key equal to `prefix` itself must be included.
        let bound = if from >= prefix {
            std::ops::Bound::Excluded(from)
        } else {
            std::ops::Bound::Included(prefix)
        };
        // Snapshot all shards (read locks held together so the listing is a
        // consistent cut), then k-way merge their sorted ranges.
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut iters: Vec<_> = guards
            .iter()
            .map(|g| g.range::<[u8], _>((bound, std::ops::Bound::Unbounded)))
            .collect();
        let mut heads: Vec<Option<(&Vec<u8>, &Vec<u8>)>> =
            iters.iter_mut().map(|it| it.next()).collect();
        let mut out = Vec::new();
        loop {
            // Smallest still-prefixed head wins. Within a shard keys are
            // sorted and the range starts at/inside the prefix region, so a
            // non-prefixed head means that shard is exhausted.
            let mut best: Option<usize> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some((k, _)) = head {
                    if !k.starts_with(prefix) {
                        continue;
                    }
                    if best.is_none_or(|b| {
                        let (bk, _) = heads[b].expect("best head present");
                        k.as_slice() < bk.as_slice()
                    }) {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let (k, v) = heads[i].expect("best head present");
            out.push((k.clone(), v.clone()));
            if limit != 0 && out.len() >= limit {
                break;
            }
            heads[i] = iters[i].next();
        }
        Ok(out)
    }

    fn count(&self) -> Result<u64, YokanError> {
        Ok(self.shards.iter().map(|s| s.read().len() as u64).sum())
    }

    fn kind(&self) -> &'static str {
        "map"
    }

    fn stats(&self) -> BackendStats {
        let shard_entries: Vec<usize> = self.shards.iter().map(|s| s.read().len()).collect();
        BackendStats {
            shards: self.shards.len(),
            shard_entries,
            ..BackendStats::default()
        }
    }
}

/// Persistent LSM backend (RocksDB analogue), writing to a directory that
/// models the node-local SSD of the paper's Theta runs.
pub struct LsmBackend {
    db: Db,
}

impl LsmBackend {
    /// Open (or create) a database under `dir`.
    pub fn open(dir: &Path) -> Result<LsmBackend, YokanError> {
        Self::open_with(dir, Options::default())
    }

    /// Open with explicit LSM options.
    pub fn open_with(dir: &Path, opts: Options) -> Result<LsmBackend, YokanError> {
        let db = Db::open(dir, opts).map_err(|e| YokanError::Backend(e.to_string()))?;
        Ok(LsmBackend { db })
    }

    /// Access the underlying engine (stats, manual compaction).
    pub fn db(&self) -> &Db {
        &self.db
    }
}

impl Backend for LsmBackend {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        self.db
            .put(key, value)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn put_multi(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), YokanError> {
        let mut batch = WriteBatch::new();
        for (k, v) in pairs {
            batch.put(k, v);
        }
        self.db
            .write(&batch)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        self.db
            .get(key)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn erase(&self, key: &[u8]) -> Result<(), YokanError> {
        self.db
            .delete(key)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        let mut batch = WriteBatch::new();
        for k in keys {
            batch.delete(k);
        }
        self.db
            .write(&batch)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        self.db
            .put_if_absent(key, value)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn list_keys(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        Ok(self
            .list_keyvals(from, prefix, limit)?
            .into_iter()
            .map(|(k, _)| k)
            .collect())
    }

    fn list_keyvals(
        &self,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError> {
        // lsmdb scans are inclusive on the lower bound; the smallest key
        // strictly greater than `from` is `from ++ [0]`. When `from` is below
        // the prefix range, start inclusively at the prefix itself.
        let lower = if from >= prefix {
            let mut l = from.to_vec();
            l.push(0);
            l
        } else {
            prefix.to_vec()
        };
        let upper = prefix_upper_bound(prefix);
        let got = self
            .db
            .scan(&lower, upper.as_deref(), limit)
            .map_err(|e| YokanError::Backend(e.to_string()))?;
        Ok(got
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .collect())
    }

    fn count(&self) -> Result<u64, YokanError> {
        self.db
            .count_range(b"", None)
            .map(|n| n as u64)
            .map_err(|e| YokanError::Backend(e.to_string()))
    }

    fn kind(&self) -> &'static str {
        "lsm"
    }

    fn stats(&self) -> BackendStats {
        let cache = self.db.read_cache_stats();
        BackendStats {
            shards: cache.shard_entries.len(),
            shard_entries: cache.shard_entries,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "yokan-backend-{}-{name}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn backends(name: &str) -> Vec<(Box<dyn Backend>, Option<std::path::PathBuf>)> {
        let d = tmpdir(name);
        vec![
            (Box::new(MemBackend::new()), None),
            (Box::new(LsmBackend::open(&d).unwrap()), Some(d)),
        ]
    }

    #[test]
    fn put_get_erase_both_backends() {
        for (b, dir) in backends("pge") {
            b.put(b"k", b"v").unwrap();
            assert_eq!(b.get(b"k").unwrap(), Some(b"v".to_vec()));
            assert!(b.exists(b"k").unwrap());
            b.erase(b"k").unwrap();
            assert_eq!(b.get(b"k").unwrap(), None);
            assert!(!b.exists(b"k").unwrap());
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn put_multi_and_get_multi() {
        for (b, dir) in backends("multi") {
            let pairs: Vec<_> = (0..20u32)
                .map(|i| (format!("k{i:03}").into_bytes(), vec![i as u8]))
                .collect();
            b.put_multi(&pairs).unwrap();
            let keys: Vec<_> = (0..25u32)
                .map(|i| format!("k{i:03}").into_bytes())
                .collect();
            let got = b.get_multi(&keys).unwrap();
            for (i, g) in got.iter().enumerate() {
                if i < 20 {
                    assert_eq!(g.as_deref(), Some(&[i as u8][..]));
                } else {
                    assert!(g.is_none());
                }
            }
            assert_eq!(b.count().unwrap(), 20);
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn list_keys_exclusive_lower_bound_and_prefix() {
        for (b, dir) in backends("list") {
            for run in 0..3u8 {
                for ev in 0..5u8 {
                    b.put(&[b'r', run, b'e', ev], b"x").unwrap();
                }
            }
            // All events of run 1:
            let keys = b.list_keys(&[b'r', 1], &[b'r', 1], 0).unwrap();
            assert_eq!(keys.len(), 5);
            assert!(keys.iter().all(|k| k.starts_with(&[b'r', 1])));
            // Resume after the 2nd event of run 1:
            let keys2 = b.list_keys(&[b'r', 1, b'e', 1], &[b'r', 1], 0).unwrap();
            assert_eq!(keys2.len(), 3);
            assert_eq!(keys2[0], vec![b'r', 1, b'e', 2]);
            // Limit:
            let keys3 = b.list_keys(&[b'r', 1], &[b'r', 1], 2).unwrap();
            assert_eq!(keys3.len(), 2);
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn list_keyvals_returns_values() {
        for (b, dir) in backends("listkv") {
            b.put(b"a1", b"v1").unwrap();
            b.put(b"a2", b"v2").unwrap();
            b.put(b"b1", b"v3").unwrap();
            let kvs = b.list_keyvals(b"", b"a", 0).unwrap();
            assert_eq!(
                kvs,
                vec![
                    (b"a1".to_vec(), b"v1".to_vec()),
                    (b"a2".to_vec(), b"v2".to_vec())
                ]
            );
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn list_with_exact_key_equal_to_from_is_excluded() {
        for (b, dir) in backends("exclusive") {
            b.put(b"k1", b"x").unwrap();
            b.put(b"k2", b"y").unwrap();
            let keys = b.list_keys(b"k1", b"k", 0).unwrap();
            assert_eq!(keys, vec![b"k2".to_vec()]);
            if let Some(d) = dir {
                drop(b);
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn prefix_upper_bound_cases() {
        assert_eq!(prefix_upper_bound(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_upper_bound(&[0x01, 0xFF]), Some(vec![0x02]));
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_upper_bound(b""), None);
    }

    #[test]
    fn backends_agree_on_random_ops() {
        let d = tmpdir("agree");
        let mem = MemBackend::new();
        let lsm = LsmBackend::open(&d).unwrap();
        let mut seed = 0x12345u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..500 {
            let k = format!("key{:02}", next() % 40).into_bytes();
            match next() % 3 {
                0 | 1 => {
                    let v = format!("val{}", next() % 1000).into_bytes();
                    mem.put(&k, &v).unwrap();
                    lsm.put(&k, &v).unwrap();
                }
                _ => {
                    mem.erase(&k).unwrap();
                    lsm.erase(&k).unwrap();
                }
            }
        }
        assert_eq!(mem.count().unwrap(), lsm.count().unwrap());
        let mk = mem.list_keyvals(b"", b"", 0).unwrap();
        let lk = lsm.list_keyvals(b"", b"", 0).unwrap();
        assert_eq!(mk, lk);
        drop(lsm);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn kinds() {
        let d = tmpdir("kind");
        assert_eq!(MemBackend::new().kind(), "map");
        let l = LsmBackend::open(&d).unwrap();
        assert_eq!(l.kind(), "lsm");
        drop(l);
        std::fs::remove_dir_all(&d).ok();
    }
}
