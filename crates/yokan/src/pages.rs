//! Compressed columnar value pages.
//!
//! HEP products were historically stored as opaque serialized blobs, which
//! forces every selection workload to ship the full product across the wire
//! before cutting ~99% of rows client-side. This module defines a
//! *self-describing columnar page container* the storage tier itself can
//! understand: a batch of rows encoded as per-column pages with lightweight
//! compression and per-page min/max zone maps, so a server-side predicate
//! (see [`crate::filter`]) can skip whole pages and return only surviving
//! rows.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "CPG1" | n_columns u16 | n_rows u32 | page_rows u32
//! per column:  type u8 (0=u64, 1=u32, 2=f32, 3=f64)
//! per page (ceil(n_rows / page_rows) of them):
//!   per column: min f64|u64 (8) | max (8) | flags u8 | enc_len u32 | enc
//! ```
//!
//! Codecs:
//! * `u64` / `u32` columns — zigzag delta + varint (ids and counts are
//!   near-sorted or small, so deltas are tiny);
//! * `f32` / `f64` columns — byte shuffle (transpose the bytes of the lane
//!   so same-significance bytes are adjacent). Both are exact: every column
//!   round-trips bit-identically, NaN included.

use crate::error::YokanError;

/// Magic bytes identifying a columnar page container.
pub const PAGE_MAGIC: [u8; 4] = *b"CPG1";

/// Default rows per page. Small enough that zone maps prune aggressively on
/// the rare-signal HEP selection, large enough to amortize page headers.
pub const DEFAULT_PAGE_ROWS: u32 = 1024;

/// Page flag: the page holds at least one NaN (float columns only). Zone
/// pruning must be conservative for predicates NaN passes.
const FLAG_HAS_NAN: u8 = 1;

/// One decoded column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Unsigned 64-bit values (ids).
    U64(Vec<u64>),
    /// Unsigned 32-bit values (counts).
    U32(Vec<u32>),
    /// 32-bit floats (scores, energies).
    F32(Vec<f32>),
    /// 64-bit floats (times).
    F64(Vec<f64>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::U64(v) => v.len(),
            Column::U32(v) => v.len(),
            Column::F32(v) => v.len(),
            Column::F64(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn type_tag(&self) -> u8 {
        match self {
            Column::U64(_) => 0,
            Column::U32(_) => 1,
            Column::F32(_) => 2,
            Column::F64(_) => 3,
        }
    }
}

/// Zone map of one column within one page: min/max over the page's values
/// (floats: over non-NaN values; `has_nan` records the rest).
#[derive(Debug, Clone, Copy)]
pub struct ZoneMap {
    /// Minimum value, widened to f64 (u64 columns: exact only up to 2^53,
    /// which covers ids/counts; the raw bits are also kept).
    pub min: f64,
    /// Maximum value, widened like `min`.
    pub max: f64,
    /// Raw minimum bits for integer columns.
    pub min_bits: u64,
    /// Raw maximum bits for integer columns.
    pub max_bits: u64,
    /// Whether the page holds at least one NaN.
    pub has_nan: bool,
}

// ---------------------------------------------------------------- varint

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, YokanError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data
            .get(*pos)
            .ok_or_else(|| YokanError::Protocol("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(YokanError::Protocol("varint overflow".into()));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------- codecs

/// Delta + zigzag + varint over a u64 slice.
fn encode_delta_varint(values: &[u64], out: &mut Vec<u8>) {
    let mut prev = 0u64;
    for &v in values {
        put_varint(out, zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
}

fn decode_delta_varint(data: &[u8], n: usize, out: &mut Vec<u64>) -> Result<(), YokanError> {
    let mut pos = 0usize;
    let mut prev = 0u64;
    for _ in 0..n {
        let d = unzigzag(get_varint(data, &mut pos)?);
        prev = prev.wrapping_add(d as u64);
        out.push(prev);
    }
    if pos != data.len() {
        return Err(YokanError::Protocol("trailing bytes in varint page".into()));
    }
    Ok(())
}

/// Byte-shuffle `width`-byte lanes: all first bytes, then all second bytes,
/// ... Same-significance bytes (exponents, sign bits) cluster, which is what
/// a downstream general-purpose compressor or the wire itself benefits from,
/// and the transform is free to reverse.
fn shuffle_bytes(raw: &[u8], width: usize, out: &mut Vec<u8>) {
    let n = raw.len() / width;
    for byte in 0..width {
        for row in 0..n {
            out.push(raw[row * width + byte]);
        }
    }
}

fn unshuffle_bytes(data: &[u8], width: usize) -> Vec<u8> {
    let n = data.len() / width;
    let mut out = vec![0u8; data.len()];
    for byte in 0..width {
        for row in 0..n {
            out[row * width + byte] = data[byte * n + row];
        }
    }
    out
}

// ---------------------------------------------------------------- encode

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_page_column(col: &Column, lo: usize, hi: usize, out: &mut Vec<u8>) {
    // Zone map first.
    let (min_bits, max_bits, has_nan) = match col {
        Column::U64(v) => {
            let s = &v[lo..hi];
            let min = s.iter().copied().min().unwrap_or(0);
            let max = s.iter().copied().max().unwrap_or(0);
            (min, max, false)
        }
        Column::U32(v) => {
            let s = &v[lo..hi];
            let min = s.iter().copied().min().unwrap_or(0) as u64;
            let max = s.iter().copied().max().unwrap_or(0) as u64;
            (min, max, false)
        }
        Column::F32(v) => {
            let s = &v[lo..hi];
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut nan = false;
            for &x in s {
                if x.is_nan() {
                    nan = true;
                } else {
                    min = min.min(x as f64);
                    max = max.max(x as f64);
                }
            }
            (min.to_bits(), max.to_bits(), nan)
        }
        Column::F64(v) => {
            let s = &v[lo..hi];
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut nan = false;
            for &x in s {
                if x.is_nan() {
                    nan = true;
                } else {
                    min = min.min(x);
                    max = max.max(x);
                }
            }
            (min.to_bits(), max.to_bits(), nan)
        }
    };
    put_u64(out, min_bits);
    put_u64(out, max_bits);
    out.push(if has_nan { FLAG_HAS_NAN } else { 0 });
    // Encoded body.
    let mut body = Vec::new();
    match col {
        Column::U64(v) => encode_delta_varint(&v[lo..hi], &mut body),
        Column::U32(v) => {
            // Widen through a scratch; counts are tiny so the varint wins.
            let widened: Vec<u64> = v[lo..hi].iter().map(|&x| x as u64).collect();
            encode_delta_varint(&widened, &mut body);
        }
        Column::F32(v) => {
            let mut raw = Vec::with_capacity((hi - lo) * 4);
            for &x in &v[lo..hi] {
                raw.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            shuffle_bytes(&raw, 4, &mut body);
        }
        Column::F64(v) => {
            let mut raw = Vec::with_capacity((hi - lo) * 8);
            for &x in &v[lo..hi] {
                raw.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            shuffle_bytes(&raw, 8, &mut body);
        }
    }
    put_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

/// Encode `columns` (all the same length) into one self-describing blob
/// with `page_rows` rows per page.
///
/// # Panics
///
/// Panics if the columns disagree on length or `page_rows` is zero —
/// programming errors at the encoding site, not data errors.
pub fn encode_columns(columns: &[Column], page_rows: u32) -> Vec<u8> {
    assert!(page_rows > 0, "page_rows must be positive");
    assert!(!columns.is_empty(), "need at least one column");
    let n_rows = columns[0].len();
    for c in columns {
        assert_eq!(c.len(), n_rows, "columns must agree on row count");
    }
    let mut out = Vec::with_capacity(64 + n_rows * columns.len() * 4);
    out.extend_from_slice(&PAGE_MAGIC);
    put_u16(&mut out, columns.len() as u16);
    put_u32(&mut out, n_rows as u32);
    put_u32(&mut out, page_rows);
    for c in columns {
        out.push(c.type_tag());
    }
    let mut lo = 0usize;
    while lo < n_rows {
        let hi = (lo + page_rows as usize).min(n_rows);
        for c in columns {
            encode_page_column(c, lo, hi, &mut out);
        }
        lo = hi;
    }
    out
}

// ---------------------------------------------------------------- decode

/// A lazily-decodable view over an encoded blob: header parsed, page
/// directory resolved, column bytes untouched until asked for.
pub struct PageReader<'a> {
    data: &'a [u8],
    types: Vec<u8>,
    n_rows: u32,
    page_rows: u32,
    /// Per page, per column: (zone map, body offset, body length).
    directory: Vec<Vec<(ZoneMap, usize, usize)>>,
    /// Per page: starting row.
    page_starts: Vec<u32>,
}

fn get_u16_at(data: &[u8], pos: &mut usize) -> Result<u16, YokanError> {
    let b = data
        .get(*pos..*pos + 2)
        .ok_or_else(|| YokanError::Protocol("truncated page header".into()))?;
    *pos += 2;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

fn get_u32_at(data: &[u8], pos: &mut usize) -> Result<u32, YokanError> {
    let b = data
        .get(*pos..*pos + 4)
        .ok_or_else(|| YokanError::Protocol("truncated page header".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64_at(data: &[u8], pos: &mut usize) -> Result<u64, YokanError> {
    let b = data
        .get(*pos..*pos + 8)
        .ok_or_else(|| YokanError::Protocol("truncated page header".into()))?;
    *pos += 8;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Whether a value blob looks like a columnar page container.
pub fn is_columnar(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[0..4] == PAGE_MAGIC
}

impl<'a> PageReader<'a> {
    /// Parse the header and page directory of an encoded blob.
    pub fn open(data: &'a [u8]) -> Result<PageReader<'a>, YokanError> {
        if !is_columnar(data) {
            return Err(YokanError::Protocol("not a columnar page blob".into()));
        }
        let mut pos = 4usize;
        let n_columns = get_u16_at(data, &mut pos)? as usize;
        let n_rows = get_u32_at(data, &mut pos)?;
        let page_rows = get_u32_at(data, &mut pos)?;
        if n_columns == 0 || page_rows == 0 {
            return Err(YokanError::Protocol("empty column/page geometry".into()));
        }
        let types = data
            .get(pos..pos + n_columns)
            .ok_or_else(|| YokanError::Protocol("truncated column types".into()))?
            .to_vec();
        pos += n_columns;
        if types.iter().any(|&t| t > 3) {
            return Err(YokanError::Protocol("unknown column type".into()));
        }
        let n_pages = (n_rows as usize).div_ceil(page_rows as usize);
        let mut directory = Vec::with_capacity(n_pages);
        let mut page_starts = Vec::with_capacity(n_pages);
        for page in 0..n_pages {
            page_starts.push(page as u32 * page_rows);
            let mut cols = Vec::with_capacity(n_columns);
            for &ty in &types {
                let min_bits = get_u64_at(data, &mut pos)?;
                let max_bits = get_u64_at(data, &mut pos)?;
                let flags = *data
                    .get(pos)
                    .ok_or_else(|| YokanError::Protocol("truncated page flags".into()))?;
                pos += 1;
                let len = get_u32_at(data, &mut pos)? as usize;
                if data.len() < pos + len {
                    return Err(YokanError::Protocol("truncated page body".into()));
                }
                let (min, max) = match ty {
                    0 | 1 => (min_bits as f64, max_bits as f64),
                    _ => (f64::from_bits(min_bits), f64::from_bits(max_bits)),
                };
                cols.push((
                    ZoneMap {
                        min,
                        max,
                        min_bits,
                        max_bits,
                        has_nan: flags & FLAG_HAS_NAN != 0,
                    },
                    pos,
                    len,
                ));
                pos += len;
            }
            directory.push(cols);
        }
        if pos != data.len() {
            return Err(YokanError::Protocol("trailing bytes after pages".into()));
        }
        Ok(PageReader {
            data,
            types,
            n_rows,
            page_rows,
            directory,
            page_starts,
        })
    }

    /// Total rows across all pages.
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_columns(&self) -> usize {
        self.types.len()
    }

    /// Number of pages.
    pub fn n_pages(&self) -> usize {
        self.directory.len()
    }

    /// Rows in page `page`.
    pub fn page_len(&self, page: usize) -> usize {
        let start = self.page_starts[page] as usize;
        ((start + self.page_rows as usize).min(self.n_rows as usize)) - start
    }

    /// Starting row index of page `page`.
    pub fn page_start(&self, page: usize) -> usize {
        self.page_starts[page] as usize
    }

    /// Zone map of `column` within `page`.
    pub fn zone(&self, page: usize, column: usize) -> &ZoneMap {
        &self.directory[page][column].0
    }

    /// Type tag of `column` (0=u64, 1=u32, 2=f32, 3=f64).
    pub fn column_type(&self, column: usize) -> u8 {
        self.types[column]
    }

    /// Decode `column` of `page` into a freshly allocated [`Column`].
    pub fn decode_page_column(&self, page: usize, column: usize) -> Result<Column, YokanError> {
        let (_, off, len) = self.directory[page][column];
        let body = &self.data[off..off + len];
        let n = self.page_len(page);
        match self.types[column] {
            0 => {
                let mut out = Vec::with_capacity(n);
                decode_delta_varint(body, n, &mut out)?;
                Ok(Column::U64(out))
            }
            1 => {
                let mut wide = Vec::with_capacity(n);
                decode_delta_varint(body, n, &mut wide)?;
                let mut out = Vec::with_capacity(n);
                for v in wide {
                    out.push(u32::try_from(v).map_err(|_| {
                        YokanError::Protocol("u32 column value out of range".into())
                    })?);
                }
                Ok(Column::U32(out))
            }
            2 => {
                if body.len() != n * 4 {
                    return Err(YokanError::Protocol("bad f32 page length".into()));
                }
                let raw = unshuffle_bytes(body, 4);
                let out = raw
                    .chunks_exact(4)
                    .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
                    .collect();
                Ok(Column::F32(out))
            }
            3 => {
                if body.len() != n * 8 {
                    return Err(YokanError::Protocol("bad f64 page length".into()));
                }
                let raw = unshuffle_bytes(body, 8);
                let out = raw
                    .chunks_exact(8)
                    .map(|c| {
                        f64::from_bits(u64::from_le_bytes([
                            c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                        ]))
                    })
                    .collect();
                Ok(Column::F64(out))
            }
            t => Err(YokanError::Protocol(format!("unknown column type {t}"))),
        }
    }

    /// Decode a whole column across all pages.
    pub fn decode_column(&self, column: usize) -> Result<Column, YokanError> {
        let mut acc: Option<Column> = None;
        for page in 0..self.n_pages() {
            let part = self.decode_page_column(page, column)?;
            acc = Some(match (acc, part) {
                (None, p) => p,
                (Some(Column::U64(mut a)), Column::U64(b)) => {
                    a.extend(b);
                    Column::U64(a)
                }
                (Some(Column::U32(mut a)), Column::U32(b)) => {
                    a.extend(b);
                    Column::U32(a)
                }
                (Some(Column::F32(mut a)), Column::F32(b)) => {
                    a.extend(b);
                    Column::F32(a)
                }
                (Some(Column::F64(mut a)), Column::F64(b)) => {
                    a.extend(b);
                    Column::F64(a)
                }
                _ => unreachable!("column type is fixed per column"),
            });
        }
        acc.ok_or_else(|| YokanError::Protocol("blob has no pages".into()))
            .or_else(|e| {
                // Zero-row blobs have no pages but a valid empty column.
                if self.n_rows == 0 {
                    Ok(match self.types[column] {
                        0 => Column::U64(Vec::new()),
                        1 => Column::U32(Vec::new()),
                        2 => Column::F32(Vec::new()),
                        _ => Column::F64(Vec::new()),
                    })
                } else {
                    Err(e)
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let cols = vec![
            Column::U64(vec![5, 6, 7, 100, 3]),
            Column::U32(vec![10, 0, u32::MAX, 7, 8]),
            Column::F32(vec![1.5, -0.0, f32::NAN, f32::INFINITY, 3.25]),
            Column::F64(vec![1e300, -2.5, f64::NAN, 0.0, 218_000.0]),
        ];
        for page_rows in [1u32, 2, 4, 1024] {
            let blob = encode_columns(&cols, page_rows);
            let r = PageReader::open(&blob).unwrap();
            assert_eq!(r.n_rows(), 5);
            assert_eq!(r.n_columns(), 4);
            for (i, c) in cols.iter().enumerate() {
                let got = r.decode_column(i).unwrap();
                // NaN != NaN, so compare bits.
                match (&got, c) {
                    (Column::F32(a), Column::F32(b)) => {
                        let a: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
                        let b: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
                        assert_eq!(a, b);
                    }
                    (Column::F64(a), Column::F64(b)) => {
                        let a: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
                        let b: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
                        assert_eq!(a, b);
                    }
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn zero_rows_round_trip() {
        let cols = vec![Column::U64(Vec::new()), Column::F32(Vec::new())];
        let blob = encode_columns(&cols, 64);
        let r = PageReader::open(&blob).unwrap();
        assert_eq!(r.n_rows(), 0);
        assert_eq!(r.n_pages(), 0);
        assert_eq!(r.decode_column(0).unwrap(), Column::U64(Vec::new()));
        assert_eq!(r.decode_column(1).unwrap(), Column::F32(Vec::new()));
    }

    #[test]
    fn zone_maps_cover_pages() {
        let cols = vec![Column::F32(vec![1.0, 5.0, -3.0, f32::NAN, 2.0, 9.0])];
        let blob = encode_columns(&cols, 3);
        let r = PageReader::open(&blob).unwrap();
        assert_eq!(r.n_pages(), 2);
        let z0 = r.zone(0, 0);
        assert_eq!((z0.min, z0.max, z0.has_nan), (-3.0, 5.0, false));
        let z1 = r.zone(1, 0);
        assert_eq!((z1.min, z1.max, z1.has_nan), (2.0, 9.0, true));
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let cols = vec![Column::U64(vec![1, 2, 3])];
        let blob = encode_columns(&cols, 2);
        for cut in [3usize, 8, blob.len() - 1] {
            assert!(PageReader::open(&blob[..cut]).is_err());
        }
        assert!(!is_columnar(b"blob"));
        assert!(is_columnar(&blob));
    }

    #[test]
    fn delta_varint_compresses_sorted_ids() {
        let ids: Vec<u64> = (0..4096u64).map(|i| 1_000_000 + i).collect();
        let blob = encode_columns(&[Column::U64(ids)], 1024);
        // 4096 near-sequential u64s should land far below 8 bytes each.
        assert!(blob.len() < 4096 * 2, "blob {} bytes", blob.len());
    }
}
