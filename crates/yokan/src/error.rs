//! Yokan error type.

use mercurio::RpcError;
use std::fmt;

/// Errors surfaced by Yokan operations, client- or server-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YokanError {
    /// The named database does not exist on the target provider.
    NoSuchDatabase(String),
    /// The target provider id is not registered on the service.
    NoSuchProvider(u16),
    /// The storage backend failed (I/O, corruption, ...).
    Backend(String),
    /// A request or response could not be decoded.
    Protocol(String),
    /// The mutation carried a stale topology epoch: the deployment has
    /// rescaled since the client learned its routing. The mutation was
    /// **not** applied; the carried epoch is the service's current one, so
    /// the client can refresh its routing and re-place the key. This is an
    /// explicit redirect, never a retry — the same payload would be
    /// rejected again.
    WrongEpoch {
        /// The service's current topology epoch.
        current: u64,
    },
    /// The underlying RPC failed.
    Rpc(RpcError),
}

impl fmt::Display for YokanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YokanError::NoSuchDatabase(d) => write!(f, "no such database: {d}"),
            YokanError::NoSuchProvider(p) => write!(f, "no such provider: {p}"),
            YokanError::Backend(m) => write!(f, "backend error: {m}"),
            YokanError::Protocol(m) => write!(f, "protocol error: {m}"),
            YokanError::WrongEpoch { current } => write!(
                f,
                "stale topology epoch: service is at epoch {current}, refresh routing"
            ),
            YokanError::Rpc(e) => write!(f, "rpc error: {e}"),
        }
    }
}

impl std::error::Error for YokanError {}

impl From<RpcError> for YokanError {
    fn from(e: RpcError) -> Self {
        // Handler-side YokanErrors travel as RpcError::Handler strings with a
        // structured prefix; translate them back when recognizable.
        if let RpcError::Handler(msg) = &e {
            if let Some(rest) = msg.strip_prefix("yokan:nodb:") {
                return YokanError::NoSuchDatabase(rest.to_string());
            }
            if let Some(rest) = msg.strip_prefix("yokan:noprov:") {
                return YokanError::NoSuchProvider(rest.parse().unwrap_or(0));
            }
            if let Some(rest) = msg.strip_prefix("yokan:backend:") {
                return YokanError::Backend(rest.to_string());
            }
            if let Some(rest) = msg.strip_prefix("yokan:protocol:") {
                return YokanError::Protocol(rest.to_string());
            }
            if let Some(rest) = msg.strip_prefix("yokan:epoch:") {
                return YokanError::WrongEpoch {
                    current: rest.parse().unwrap_or(0),
                };
            }
        }
        YokanError::Rpc(e)
    }
}

impl YokanError {
    /// Encode as an `RpcError::Handler` message for the wire.
    pub(crate) fn to_rpc(&self) -> RpcError {
        match self {
            YokanError::NoSuchDatabase(d) => RpcError::Handler(format!("yokan:nodb:{d}")),
            YokanError::NoSuchProvider(p) => RpcError::Handler(format!("yokan:noprov:{p}")),
            YokanError::Backend(m) => RpcError::Handler(format!("yokan:backend:{m}")),
            YokanError::Protocol(m) => RpcError::Handler(format!("yokan:protocol:{m}")),
            YokanError::WrongEpoch { current } => {
                RpcError::Handler(format!("yokan:epoch:{current}"))
            }
            YokanError::Rpc(e) => e.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_rpc_error() {
        let cases = vec![
            YokanError::NoSuchDatabase("events0".into()),
            YokanError::NoSuchProvider(7),
            YokanError::Backend("disk on fire".into()),
            YokanError::Protocol("short frame".into()),
            YokanError::WrongEpoch { current: 42 },
        ];
        for e in cases {
            assert_eq!(YokanError::from(e.to_rpc()), e);
        }
    }

    #[test]
    fn plain_rpc_errors_pass_through() {
        let e = YokanError::from(RpcError::Timeout);
        assert_eq!(e, YokanError::Rpc(RpcError::Timeout));
    }
}
