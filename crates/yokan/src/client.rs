//! Client side: remote database handles.

use crate::backend::KeyValue;
use crate::encoding::*;
use crate::error::YokanError;
use crate::replica::{self, ChainState};
use crate::retry::{RetryCounters, RetryPolicy, RetryStats};
use crate::service::*;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mercurio::{Endpoint, PendingResponse, RpcError, RpcId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide client-id allocator, offset by a per-process base so ids
/// are unique *across* processes too: the service keys its at-most-once
/// dedup window by client id, and two CLI processes both counting from 1
/// would silently swallow each other's mutations as replays.
static NEXT_CLIENT_ID: AtomicU64 = AtomicU64::new(1);

fn client_id_base() -> u64 {
    use std::sync::OnceLock;
    static BASE: OnceLock<u64> = OnceLock::new();
    *BASE.get_or_init(|| {
        let pid = std::process::id() as u64;
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // SplitMix64 finalizer: spread (pid, boot time) over the full u64
        // so bases from concurrently launched processes don't collide in
        // their low bits (ids within a process are base + small counter).
        let mut z = pid.rotate_left(32) ^ nanos;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    })
}

/// Per-client identity and retry bookkeeping, shared by clones of one
/// [`YokanClient`] so sequence numbers stay unique across them.
pub(crate) struct ClientSession {
    pub(crate) client_id: u64,
    pub(crate) next_seq: AtomicU64,
    /// Topology epoch stamped into mutation headers. 0 means unfenced —
    /// the service accepts the mutation regardless of its own epoch (raw
    /// tooling addressing physical replicas). Routed clients learn the
    /// deployment's epoch at connect time and are fenced from then on.
    pub(crate) epoch: AtomicU64,
    pub(crate) counters: RetryCounters,
}

impl ClientSession {
    fn new() -> Arc<ClientSession> {
        Arc::new(ClientSession {
            client_id: client_id_base()
                .wrapping_add(NEXT_CLIENT_ID.fetch_add(1, Ordering::Relaxed)),
            next_seq: AtomicU64::new(1),
            epoch: AtomicU64::new(0),
            counters: RetryCounters::default(),
        })
    }
}

/// Wait for `pending`, re-issuing the *same* payload (same sequence number,
/// for mutations) on retryable failures per `policy`. Without a policy this
/// is a plain unbounded wait, preserving the historical behaviour.
#[allow(clippy::too_many_arguments)]
pub(crate) fn wait_with_retry(
    endpoint: &Arc<dyn Endpoint>,
    policy: Option<&RetryPolicy>,
    counters: &RetryCounters,
    addr: &str,
    op: RpcId,
    provider_id: u16,
    payload: &Bytes,
    pending: PendingResponse,
) -> Result<Bytes, RpcError> {
    counters.attempts.fetch_add(1, Ordering::Relaxed);
    let Some(policy) = policy else {
        return pending.wait();
    };
    let nonce = ((op.0 as u64) << 32) ^ payload.len() as u64;
    let mut pending = pending;
    let mut attempt = 1u32;
    loop {
        match pending.wait_timeout(policy.rpc_timeout) {
            Ok(b) => return Ok(b),
            Err(e) if RetryPolicy::is_retryable(&e) && attempt < policy.max_attempts => {
                let hint = RetryPolicy::retry_hint(&e);
                if hint.is_some() {
                    counters.busy_pushbacks.fetch_add(1, Ordering::Relaxed);
                }
                if attempt == 1 {
                    counters.retried_rpcs.fetch_add(1, Ordering::Relaxed);
                }
                // An overloaded server's hint is a floor under the computed
                // backoff: never come back sooner than the server asked.
                let backoff = policy.backoff(attempt, nonce).max(hint.unwrap_or_default());
                std::thread::sleep(backoff);
                attempt += 1;
                counters.attempts.fetch_add(1, Ordering::Relaxed);
                pending = endpoint.call_async(addr, op, provider_id, payload.clone());
            }
            Err(e) => {
                if RetryPolicy::is_retryable(&e) {
                    if RetryPolicy::retry_hint(&e).is_some() {
                        counters.busy_pushbacks.fetch_add(1, Ordering::Relaxed);
                    }
                    counters.gave_up.fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        }
    }
}

/// Strip the one-byte replay marker from a mutation response, counting
/// cached replays (the service answered from its dedup window instead of
/// applying the mutation again).
fn strip_replay_marker(mut resp: Bytes, counters: &RetryCounters) -> Result<Bytes, YokanError> {
    if resp.is_empty() {
        return Err(YokanError::Protocol("missing replay marker".into()));
    }
    let marker = resp.get_u8();
    if marker == REPLAY_CACHED {
        counters.deduped_replays.fetch_add(1, Ordering::Relaxed);
    }
    Ok(resp)
}

/// Identifies one remote database: the server address, the provider id on
/// that server, and the database name within the provider.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DbTarget {
    /// Server endpoint address.
    pub addr: String,
    /// Provider id on that server.
    pub provider_id: u16,
    /// Database name within the provider.
    pub db: String,
}

impl DbTarget {
    /// Convenience constructor.
    pub fn new(addr: impl Into<String>, provider_id: u16, db: impl Into<String>) -> Self {
        DbTarget {
            addr: addr.into(),
            provider_id,
            db: db.into(),
        }
    }
}

/// Per-key outcome of a push-down [`YokanClient::filter`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterReply {
    /// No value stored under the key.
    Missing,
    /// A value is stored but it is not a columnar page blob; the caller
    /// should fall back to fetching and filtering it client-side.
    NotColumnar,
    /// The predicate program ran server-side over the columnar pages.
    Ids {
        /// Id-column values of surviving rows, in row order.
        ids: Vec<u64>,
        /// Rows stored in the blob.
        rows_in: u32,
        /// Pages whose columns were decoded and evaluated.
        pages_scanned: u32,
        /// Pages skipped via zone maps without decoding.
        pages_skipped: u32,
        /// Stored size of the blob (bytes that did *not* cross the wire).
        stored_bytes: u32,
    },
}

/// A Yokan client bound to a local endpoint.
///
/// Batched writes larger than `bulk_threshold` bytes are shipped as bulk
/// transfers (the client exposes the encoded block and the server pulls it),
/// matching Yokan's RPC-for-small / RDMA-for-batches split (paper §II-B).
#[derive(Clone)]
pub struct YokanClient {
    endpoint: Arc<dyn Endpoint>,
    bulk_threshold: usize,
    retry: Option<RetryPolicy>,
    session: Arc<ClientSession>,
    /// Replica-chain routes keyed by database name (chain members share
    /// one name across servers). Shared by clones, so a failover promoted
    /// by one thread redirects them all. Empty unless
    /// [`YokanClient::install_replica_routes`] ran — the unreplicated path
    /// is untouched.
    routes: Arc<RwLock<HashMap<String, Arc<ChainState>>>>,
    /// Dual-read fallbacks of a live migration, keyed by database name:
    /// a read of a migrating database that *misses* on the new owner falls
    /// back to these old-owner candidates until the migration is Done (the
    /// old owner stays complete — handed-off keys are dual-written — so a
    /// key acked before the rescale is always found on one side). Shared
    /// by clones; empty in steady state.
    dual: Arc<RwLock<HashMap<String, Vec<DbTarget>>>>,
}

impl YokanClient {
    /// Create a client with the default 8 KiB bulk threshold.
    pub fn new(endpoint: Arc<dyn Endpoint>) -> YokanClient {
        YokanClient {
            endpoint,
            bulk_threshold: 8 << 10,
            retry: None,
            session: ClientSession::new(),
            routes: Arc::new(RwLock::new(HashMap::new())),
            dual: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Override the bulk threshold (`usize::MAX` disables bulk entirely).
    pub fn with_bulk_threshold(endpoint: Arc<dyn Endpoint>, threshold: usize) -> YokanClient {
        YokanClient {
            endpoint,
            bulk_threshold: threshold,
            retry: None,
            session: ClientSession::new(),
            routes: Arc::new(RwLock::new(HashMap::new())),
            dual: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Install replica-chain routes (from [`crate::replica::build_chains`]).
    /// Any [`DbTarget`] naming a routed database is thereafter resolved
    /// through its chain: mutations go to the acting head and fail over to
    /// the next member on dead-node errors (re-issuing the identical
    /// stamped payload, so the promoted member's dedup window suppresses
    /// anything the old head already forwarded); reads go to the tail —
    /// the chain's commit point — falling back toward the head. Singleton
    /// chains are skipped: they behave exactly like direct targets.
    pub fn install_replica_routes(&self, chains: &[Vec<DbTarget>]) {
        let mut routes = self.routes.write();
        for chain in chains {
            if chain.len() < 2 {
                continue;
            }
            routes.insert(
                chain[0].db.clone(),
                Arc::new(ChainState::new(chain.clone())),
            );
        }
    }

    /// The replica chain a database name currently resolves through, if
    /// routes are installed for it (in chain order, head first).
    pub fn replica_chain(&self, db: &str) -> Option<Vec<DbTarget>> {
        self.routes.read().get(db).map(|c| c.replicas.clone())
    }

    fn route_for(&self, db: &str) -> Option<Arc<ChainState>> {
        let routes = self.routes.read();
        if routes.is_empty() {
            return None;
        }
        routes.get(db).cloned()
    }

    /// Stamp subsequent mutations with topology `epoch`. Services reject a
    /// non-zero epoch that does not match their own with
    /// [`YokanError::WrongEpoch`] — an explicit redirect to refresh
    /// routing. Epoch 0 (the default) is exempt from fencing.
    pub fn set_topology_epoch(&self, epoch: u64) {
        self.session.epoch.store(epoch, Ordering::Relaxed);
    }

    /// The topology epoch this client stamps into mutations (0 = unfenced).
    pub fn topology_epoch(&self) -> u64 {
        self.session.epoch.load(Ordering::Relaxed)
    }

    /// Read the topology epoch a service currently accepts.
    pub fn service_epoch(&self, addr: &str, provider_id: u16) -> Result<u64, YokanError> {
        let mut resp = self.invoke(addr, OP_MIG_EPOCH_GET, provider_id, Bytes::new())?;
        get_u64(&mut resp)
    }

    /// Advance a service's topology epoch (monotonic — the service keeps
    /// the max of its own and `epoch`). Returns the resulting epoch.
    pub fn advance_service_epoch(
        &self,
        addr: &str,
        provider_id: u16,
        epoch: u64,
    ) -> Result<u64, YokanError> {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u64_le(epoch);
        let mut resp = self.invoke(addr, OP_MIG_EPOCH_SET, provider_id, buf.freeze())?;
        get_u64(&mut resp)
    }

    /// Freeze the key interval `[lo, hi]` of `target` (addressed as a
    /// physical replica, bypassing routes): mutations touching it are shed
    /// `Busy { retry_after }` until the interval is unfrozen or replaced.
    pub fn migration_freeze(
        &self,
        target: &DbTarget,
        lo: &[u8],
        hi: &[u8],
        retry_after: std::time::Duration,
    ) -> Result<(), YokanError> {
        let mut buf = Self::header(target, 12 + lo.len() + hi.len());
        put_bytes(&mut buf, lo);
        put_bytes(&mut buf, hi);
        buf.put_u32_le(retry_after.as_millis().min(u32::MAX as u128) as u32);
        self.invoke(
            &target.addr,
            OP_MIG_FREEZE,
            target.provider_id,
            buf.freeze(),
        )?;
        Ok(())
    }

    /// Clear the frozen interval of `target` (the range moved to Handoff).
    pub fn migration_unfreeze(&self, target: &DbTarget) -> Result<(), YokanError> {
        self.migration_freeze(target, &[], &[], std::time::Duration::ZERO)
    }

    /// Install handoff state on `target` (a physical old-owner replica):
    /// each `(key, chain index)` entry maps a copied key to its
    /// destination chain in `chains`. Mutations touching such a key are
    /// thereafter applied locally *and* re-issued at the destination with
    /// the original dedup stamp, until [`YokanClient::migration_complete`].
    pub fn migration_handoff(
        &self,
        target: &DbTarget,
        chains: &[Vec<DbTarget>],
        entries: &[(Vec<u8>, usize)],
    ) -> Result<(), YokanError> {
        let chains_len: usize = chains
            .iter()
            .map(|c| {
                4 + c
                    .iter()
                    .map(|t| 12 + t.addr.len() + t.db.len())
                    .sum::<usize>()
            })
            .sum();
        let keys_len: usize = entries.iter().map(|(k, _)| 8 + k.len()).sum();
        let mut buf = Self::header(target, 8 + chains_len + keys_len);
        buf.put_u32_le(chains.len() as u32);
        for chain in chains {
            buf.put_u32_le(chain.len() as u32);
            for t in chain {
                put_bytes(&mut buf, t.addr.as_bytes());
                buf.put_u32_le(t.provider_id as u32);
                put_bytes(&mut buf, t.db.as_bytes());
            }
        }
        buf.put_u32_le(entries.len() as u32);
        for (key, idx) in entries {
            put_bytes(&mut buf, key);
            buf.put_u32_le(*idx as u32);
        }
        self.invoke(
            &target.addr,
            OP_MIG_HANDOFF,
            target.provider_id,
            buf.freeze(),
        )?;
        Ok(())
    }

    /// Tear down all migration state (frozen interval and handoff map) of
    /// `target`'s database on the addressed replica: the range is Done.
    pub fn migration_complete(&self, target: &DbTarget) -> Result<(), YokanError> {
        let buf = Self::header(target, 0);
        self.invoke(
            &target.addr,
            OP_MIG_COMPLETE,
            target.provider_id,
            buf.freeze(),
        )?;
        Ok(())
    }

    /// Install dual-read fallbacks for a migrating database: a read of
    /// `db` that misses on its (new) owner falls back to `candidates` —
    /// the old-owner targets — until [`YokanClient::clear_dual_read`].
    /// Listings merge both sides (deduplicated per call, newest owner
    /// winning on key collisions). Shared across clones of this client.
    pub fn install_dual_read(&self, db: &str, candidates: Vec<DbTarget>) {
        if candidates.is_empty() {
            self.dual.write().remove(db);
        } else {
            self.dual.write().insert(db.to_string(), candidates);
        }
    }

    /// Remove every dual-read fallback (the migration is Done everywhere).
    pub fn clear_dual_read(&self) {
        self.dual.write().clear();
    }

    fn dual_candidates(&self, db: &str) -> Option<Vec<DbTarget>> {
        let dual = self.dual.read();
        if dual.is_empty() {
            return None;
        }
        dual.get(db).cloned()
    }

    /// Enable transparent retries under `policy`. Each RPC attempt runs
    /// under the policy's per-attempt deadline; retryable transport failures
    /// are re-issued with the same payload (and, for mutations, the same
    /// sequence number — the service's dedup window makes the retry safe).
    pub fn with_retry(mut self, policy: RetryPolicy) -> YokanClient {
        self.retry = Some(policy);
        self
    }

    /// Snapshot of this client's retry counters (shared across clones).
    pub fn retry_stats(&self) -> RetryStats {
        self.session.counters.snapshot()
    }

    /// The local endpoint this client sends from.
    pub fn endpoint(&self) -> &Arc<dyn Endpoint> {
        &self.endpoint
    }

    fn header(target: &DbTarget, extra: usize) -> BytesMut {
        let mut buf = BytesMut::with_capacity(4 + target.db.len() + extra);
        put_bytes(&mut buf, target.db.as_bytes());
        buf
    }

    /// Header for mutation RPCs: the `(client id, sequence number,
    /// topology epoch)` stamp followed by the database name. Reused
    /// verbatim across retries of the same logical request — including the
    /// epoch, so a rescale completing mid-retry rejects every attempt of
    /// the stale request identically.
    fn mutation_header(&self, target: &DbTarget, extra: usize) -> BytesMut {
        let mut buf = BytesMut::with_capacity(24 + 4 + target.db.len() + extra);
        buf.put_u64_le(self.session.client_id);
        buf.put_u64_le(self.session.next_seq.fetch_add(1, Ordering::Relaxed));
        buf.put_u64_le(self.session.epoch.load(Ordering::Relaxed));
        put_bytes(&mut buf, target.db.as_bytes());
        buf
    }

    /// Issue one RPC, riding the retry policy when one is configured.
    fn invoke(
        &self,
        addr: &str,
        op: u16,
        provider_id: u16,
        payload: Bytes,
    ) -> Result<Bytes, YokanError> {
        let pending = self
            .endpoint
            .call_async(addr, RpcId(op), provider_id, payload.clone());
        wait_with_retry(
            &self.endpoint,
            self.retry.as_ref(),
            &self.session.counters,
            addr,
            RpcId(op),
            provider_id,
            &payload,
            pending,
        )
        .map_err(YokanError::from)
    }

    fn call(&self, target: &DbTarget, op: u16, payload: Bytes) -> Result<Bytes, YokanError> {
        match self.route_for(&target.db) {
            None => self.invoke(&target.addr, op, target.provider_id, payload),
            Some(chain) => self.call_read_chain(&chain, op, payload),
        }
    }

    /// A read against a replica chain: tail-first (the tail is the commit
    /// point — a value visible there has been applied chain-wide, so a
    /// read can never observe a mutation the head has not acknowledged),
    /// falling back toward the head when a replica is unreachable.
    fn call_read_chain(
        &self,
        chain: &ChainState,
        op: u16,
        payload: Bytes,
    ) -> Result<Bytes, YokanError> {
        let n = chain.replicas.len();
        let mut last: Option<RpcError> = None;
        for k in 0..n {
            let t = &chain.replicas[n - 1 - k];
            match self.invoke(&t.addr, op, t.provider_id, payload.clone()) {
                Ok(resp) => {
                    if k > 0 {
                        self.session
                            .counters
                            .read_fallbacks
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(resp);
                }
                Err(YokanError::Rpc(e)) if replica::is_dead_node(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(YokanError::Rpc(last.expect("chain is non-empty")))
    }

    /// A mutation call: like [`YokanClient::call`] but the response carries
    /// a one-byte replay marker that is stripped (and counted) here. On a
    /// replica chain the mutation goes to the acting head; if that node is
    /// dead, the identical payload is re-issued to the next members in
    /// chain order and the first that accepts is promoted.
    fn call_mutation(
        &self,
        target: &DbTarget,
        op: u16,
        payload: Bytes,
    ) -> Result<Bytes, YokanError> {
        let resp = match self.route_for(&target.db) {
            None => self.invoke(&target.addr, op, target.provider_id, payload)?,
            Some(chain) => {
                let n = chain.replicas.len();
                let start = chain.cursor();
                let mut out: Option<Bytes> = None;
                let mut last: Option<RpcError> = None;
                for k in 0..n {
                    let idx = (start + k) % n;
                    let t = &chain.replicas[idx];
                    match self.invoke(&t.addr, op, t.provider_id, payload.clone()) {
                        Ok(resp) => {
                            if idx != start {
                                chain.promote(idx);
                                self.session
                                    .counters
                                    .failovers
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            out = Some(resp);
                            break;
                        }
                        Err(YokanError::Rpc(e)) if replica::is_dead_node(&e) => last = Some(e),
                        Err(e) => return Err(e),
                    }
                }
                match out {
                    Some(resp) => resp,
                    None => return Err(YokanError::Rpc(last.expect("chain is non-empty"))),
                }
            }
        };
        strip_replay_marker(resp, &self.session.counters)
    }

    /// Store one pair.
    pub fn put(&self, target: &DbTarget, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        let mut buf = self.mutation_header(target, 8 + key.len() + value.len());
        put_bytes(&mut buf, key);
        put_bytes(&mut buf, value);
        self.call_mutation(target, OP_PUT, buf.freeze())?;
        Ok(())
    }

    /// Store a batch of pairs in one RPC (inline or bulk depending on size).
    pub fn put_multi(
        &self,
        target: &DbTarget,
        pairs: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(), YokanError> {
        self.put_multi_async(target, pairs)?.wait()
    }

    /// [`YokanClient::put_multi`] encoding through a caller-owned scratch
    /// buffer (see [`YokanClient::put_multi_async_with`]).
    pub fn put_multi_with(
        &self,
        target: &DbTarget,
        pairs: &[(Vec<u8>, Vec<u8>)],
        scratch: &mut BytesMut,
    ) -> Result<(), YokanError> {
        self.put_multi_async_with(target, pairs, scratch)?.wait()
    }

    /// Asynchronous [`YokanClient::put_multi`]; the returned handle must be
    /// waited on (it also releases the bulk region, if one was used).
    pub fn put_multi_async(
        &self,
        target: &DbTarget,
        pairs: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<PendingPut, YokanError> {
        let mut scratch = BytesMut::new();
        self.put_multi_async_with(target, pairs, &mut scratch)
    }

    /// [`YokanClient::put_multi_async`] with zero-realloc encoding: the
    /// exact payload size is computed up front, reserved once in `scratch`,
    /// and the pairs are encoded straight into it — no intermediate block
    /// buffer, no growth reallocations. Long-lived writers (e.g. the
    /// `AsyncWriteBatch` flusher threads) keep one scratch buffer each and
    /// pass it to every flush.
    pub fn put_multi_async_with(
        &self,
        target: &DbTarget,
        pairs: &[(Vec<u8>, Vec<u8>)],
        scratch: &mut BytesMut,
    ) -> Result<PendingPut, YokanError> {
        let block_len = pairs_encoded_len(pairs);
        scratch.clear();
        let bulk = if block_len > self.bulk_threshold {
            // Bulk mode: the pair block itself is exposed for the server to
            // pull; only a small header travels inline.
            scratch.reserve(block_len);
            encode_pairs_into(scratch, pairs);
            let block = scratch.split_to(block_len).freeze();
            Some(self.endpoint.expose_bulk(block))
        } else {
            None
        };
        let seq = self.session.next_seq.fetch_add(1, Ordering::Relaxed);
        let epoch = self.session.epoch.load(Ordering::Relaxed);
        // 24-byte dedup+epoch stamp + length-prefixed db name + mode byte.
        let header_len = 24 + 4 + target.db.len() + 1;
        let payload = match &bulk {
            Some(handle) => {
                let mut buf = BytesMut::with_capacity(header_len + 24);
                buf.put_u64_le(self.session.client_id);
                buf.put_u64_le(seq);
                buf.put_u64_le(epoch);
                put_bytes(&mut buf, target.db.as_bytes());
                buf.put_u8(MODE_BULK);
                handle.encode_into(&mut buf);
                buf.freeze()
            }
            None => {
                scratch.reserve(header_len + block_len);
                scratch.put_u64_le(self.session.client_id);
                scratch.put_u64_le(seq);
                scratch.put_u64_le(epoch);
                put_bytes(scratch, target.db.as_bytes());
                scratch.put_u8(MODE_INLINE);
                encode_pairs_into(scratch, pairs);
                scratch.split_to(header_len + block_len).freeze()
            }
        };
        // On a replica chain the batch goes to the acting head; the chain
        // handle rides along so `wait` can fail the identical payload over.
        let (chain, first) = match self.route_for(&target.db) {
            Some(c) => {
                let start = c.cursor();
                let t = c.replicas[start].clone();
                (Some((c, start)), t)
            }
            None => (None, target.clone()),
        };
        let pending = self.endpoint.call_async(
            &first.addr,
            RpcId(OP_PUT_MULTI),
            first.provider_id,
            payload.clone(),
        );
        Ok(PendingPut {
            pending,
            bulk,
            endpoint: Arc::clone(&self.endpoint),
            addr: first.addr,
            provider_id: first.provider_id,
            payload,
            retry: self.retry.clone(),
            session: Arc::clone(&self.session),
            chain,
        })
    }

    /// Fetch one value. During a live migration a miss falls back to the
    /// old-owner candidates (see [`YokanClient::install_dual_read`]) — a
    /// key acked before the rescale is found on one side or the other.
    pub fn get(&self, target: &DbTarget, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        if let Some(v) = self.get_raw(target, key)? {
            return Ok(Some(v));
        }
        if let Some(cands) = self.dual_candidates(&target.db) {
            for c in &cands {
                if let Some(v) = self.get_raw(c, key)? {
                    self.session
                        .counters
                        .dual_reads
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(v));
                }
            }
        }
        Ok(None)
    }

    /// [`YokanClient::get`] without the dual-read fallback.
    fn get_raw(&self, target: &DbTarget, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        let mut buf = Self::header(target, 4 + key.len());
        put_bytes(&mut buf, key);
        let mut resp = self.call(target, OP_GET, buf.freeze())?;
        let mut vals = decode_optionals(&mut resp)?;
        vals.pop()
            .ok_or_else(|| YokanError::Protocol("empty get response".into()))
    }

    /// Fetch a batch of values; one slot per requested key. Missing slots
    /// fall back to the dual-read candidates during a live migration.
    pub fn get_multi(
        &self,
        target: &DbTarget,
        keys: &[Vec<u8>],
    ) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        let mut vals = self.get_multi_raw(target, keys)?;
        if vals.iter().all(|v| v.is_some()) {
            return Ok(vals);
        }
        if let Some(cands) = self.dual_candidates(&target.db) {
            for c in &cands {
                let missing: Vec<usize> = vals
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.is_none().then_some(i))
                    .collect();
                if missing.is_empty() {
                    break;
                }
                let miss_keys: Vec<Vec<u8>> = missing.iter().map(|&i| keys[i].clone()).collect();
                let filled = self.get_multi_raw(c, &miss_keys)?;
                for (&i, v) in missing.iter().zip(filled) {
                    if v.is_some() {
                        vals[i] = v;
                        self.session
                            .counters
                            .dual_reads
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(vals)
    }

    /// [`YokanClient::get_multi`] without the dual-read fallback.
    fn get_multi_raw(
        &self,
        target: &DbTarget,
        keys: &[Vec<u8>],
    ) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        let keys_block = encode_keys(keys);
        let mut buf = Self::header(target, keys_block.len());
        buf.put_slice(&keys_block);
        let mut resp = self.call(target, OP_GET_MULTI, buf.freeze())?;
        decode_optionals(&mut resp)
    }

    /// Encode and issue a read RPC whose payload is the database header
    /// followed by a key block, returning the in-flight handle. Shared by
    /// the asynchronous read path ([`YokanClient::get_multi_async`],
    /// [`YokanClient::exists_multi_async`]).
    fn read_call_async(&self, target: &DbTarget, op: u16, keys: &[Vec<u8>]) -> PendingRead {
        let mut buf = Self::header(target, keys_encoded_len(keys));
        encode_keys_into(&mut buf, keys);
        self.issue_read(target, op, buf.freeze())
    }

    fn issue_read(&self, target: &DbTarget, op: u16, payload: Bytes) -> PendingRead {
        // Routed databases are read tail-first (see `call_read_chain`);
        // the remaining replicas, toward the head, become fallbacks.
        let (first, fallbacks) = match self.route_for(&target.db) {
            Some(chain) => {
                let n = chain.replicas.len();
                let first = chain.replicas[n - 1].clone();
                let fallbacks: Vec<DbTarget> =
                    (1..n).map(|k| chain.replicas[n - 1 - k].clone()).collect();
                (first, fallbacks)
            }
            None => (target.clone(), Vec::new()),
        };
        let pending =
            self.endpoint
                .call_async(&first.addr, RpcId(op), first.provider_id, payload.clone());
        PendingRead {
            pending,
            endpoint: Arc::clone(&self.endpoint),
            addr: first.addr,
            provider_id: first.provider_id,
            op,
            payload,
            retry: self.retry.clone(),
            session: Arc::clone(&self.session),
            fallbacks,
        }
    }

    /// Asynchronous [`YokanClient::get_multi`]: the RPC is issued
    /// immediately and the returned handle is waited on later, so many
    /// batched reads (to different databases, or successive pages of the
    /// same scan) can be in flight at once. The read-side twin of
    /// [`YokanClient::put_multi_async`].
    pub fn get_multi_async(&self, target: &DbTarget, keys: &[Vec<u8>]) -> PendingGetMulti {
        PendingGetMulti {
            inner: self.read_call_async(target, OP_GET_MULTI, keys),
        }
    }

    /// Asynchronous [`YokanClient::exists_multi`].
    pub fn exists_multi_async(&self, target: &DbTarget, keys: &[Vec<u8>]) -> PendingExistsMulti {
        PendingExistsMulti {
            inner: self.read_call_async(target, OP_EXISTS_MULTI, keys),
            n_keys: keys.len(),
        }
    }

    /// Asynchronous [`YokanClient::list_keys`]: page the next batch of keys
    /// while the previous page is still being processed.
    pub fn list_keys_async(
        &self,
        target: &DbTarget,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> PendingListKeys {
        let mut buf = Self::header(target, 12 + from.len() + prefix.len());
        put_bytes(&mut buf, from);
        put_bytes(&mut buf, prefix);
        buf.put_u32_le(limit as u32);
        PendingListKeys {
            inner: self.issue_read(target, OP_LIST_KEYS, buf.freeze()),
        }
    }

    /// Existence checks for a batch of keys in one round-trip; the server
    /// fans large batches out across the provider's pool. Absent keys fall
    /// back to the dual-read candidates during a live migration.
    pub fn exists_multi(
        &self,
        target: &DbTarget,
        keys: &[Vec<u8>],
    ) -> Result<Vec<bool>, YokanError> {
        let mut flags = self.exists_multi_raw(target, keys)?;
        if flags.iter().all(|&f| f) {
            return Ok(flags);
        }
        if let Some(cands) = self.dual_candidates(&target.db) {
            for c in &cands {
                let missing: Vec<usize> = flags
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &f)| (!f).then_some(i))
                    .collect();
                if missing.is_empty() {
                    break;
                }
                let miss_keys: Vec<Vec<u8>> = missing.iter().map(|&i| keys[i].clone()).collect();
                let found = self.exists_multi_raw(c, &miss_keys)?;
                for (&i, f) in missing.iter().zip(found) {
                    if f {
                        flags[i] = true;
                        self.session
                            .counters
                            .dual_reads
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(flags)
    }

    /// [`YokanClient::exists_multi`] without the dual-read fallback: the
    /// flags reflect exactly what the probed member holds. The migrator's
    /// convergence pass uses this to audit destination replicas one by
    /// one — with the fallback, a key missing on the destination would be
    /// reported present from the old owner's copy, the very copy whose
    /// erase the audit is deciding.
    pub fn exists_multi_direct(
        &self,
        target: &DbTarget,
        keys: &[Vec<u8>],
    ) -> Result<Vec<bool>, YokanError> {
        self.exists_multi_raw(target, keys)
    }

    /// [`YokanClient::exists_multi`] without the dual-read fallback.
    fn exists_multi_raw(
        &self,
        target: &DbTarget,
        keys: &[Vec<u8>],
    ) -> Result<Vec<bool>, YokanError> {
        let keys_block = encode_keys(keys);
        let mut buf = Self::header(target, keys_block.len());
        buf.put_slice(&keys_block);
        let resp = self.call(target, OP_EXISTS_MULTI, buf.freeze())?;
        if resp.len() != keys.len() {
            return Err(YokanError::Protocol(format!(
                "exists_multi: expected {} flags, got {}",
                keys.len(),
                resp.len()
            )));
        }
        Ok(resp.iter().map(|&b| b == 1).collect())
    }

    /// Run a serialized predicate [`crate::filter::Program`] server-side
    /// against the columnar page blobs stored under `keys`, in one
    /// round-trip. Only surviving row ids (plus a few counters) come back —
    /// the page bytes themselves never cross the wire. One reply per key.
    pub fn filter(
        &self,
        target: &DbTarget,
        program: &crate::filter::Program,
        keys: &[Vec<u8>],
    ) -> Result<Vec<FilterReply>, YokanError> {
        let prog_bytes = program.to_bytes();
        // Keys of one batch share container prefix and label/type suffix;
        // factor them out so the request scales with the per-key residue.
        let keys_block = encode_keys_factored(keys);
        let mut buf = Self::header(target, 4 + prog_bytes.len() + keys_block.len());
        put_bytes(&mut buf, &prog_bytes);
        buf.put_slice(&keys_block);
        let mut resp = self.call(target, OP_FILTER, buf.freeze())?;
        let n = get_u32(&mut resp)? as usize;
        if n != keys.len() {
            return Err(YokanError::Protocol(format!(
                "filter: expected {} replies, got {n}",
                keys.len()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match get_u8(&mut resp)? {
                FILTER_MISSING => FilterReply::Missing,
                FILTER_NOT_COLUMNAR => FilterReply::NotColumnar,
                FILTER_IDS => {
                    let rows_in = get_u32(&mut resp)?;
                    let pages_scanned = get_u32(&mut resp)?;
                    let pages_skipped = get_u32(&mut resp)?;
                    let stored_bytes = get_u32(&mut resp)?;
                    let n_ids = get_u32(&mut resp)? as usize;
                    let mut ids = Vec::with_capacity(n_ids);
                    for _ in 0..n_ids {
                        ids.push(get_u64(&mut resp)?);
                    }
                    FilterReply::Ids {
                        ids,
                        rows_in,
                        pages_scanned,
                        pages_skipped,
                        stored_bytes,
                    }
                }
                t => return Err(YokanError::Protocol(format!("bad filter reply tag {t}"))),
            });
        }
        Ok(out)
    }

    /// Whether a key exists (with dual-read fallback during a migration).
    pub fn exists(&self, target: &DbTarget, key: &[u8]) -> Result<bool, YokanError> {
        if self.exists_raw(target, key)? {
            return Ok(true);
        }
        if let Some(cands) = self.dual_candidates(&target.db) {
            for c in &cands {
                if self.exists_raw(c, key)? {
                    self.session
                        .counters
                        .dual_reads
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// [`YokanClient::exists`] without the dual-read fallback.
    fn exists_raw(&self, target: &DbTarget, key: &[u8]) -> Result<bool, YokanError> {
        let mut buf = Self::header(target, 4 + key.len());
        put_bytes(&mut buf, key);
        let resp = self.call(target, OP_EXISTS, buf.freeze())?;
        Ok(resp.first().copied() == Some(1))
    }

    /// Delete a key.
    pub fn erase(&self, target: &DbTarget, key: &[u8]) -> Result<(), YokanError> {
        let mut buf = self.mutation_header(target, 4 + key.len());
        put_bytes(&mut buf, key);
        self.call_mutation(target, OP_ERASE, buf.freeze())?;
        Ok(())
    }

    /// Atomically insert unless present; returns the existing value if the
    /// key was already set (the server performs the check-and-insert under
    /// its backend's lock).
    pub fn put_if_absent(
        &self,
        target: &DbTarget,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<Vec<u8>>, YokanError> {
        let mut buf = self.mutation_header(target, 8 + key.len() + value.len());
        put_bytes(&mut buf, key);
        put_bytes(&mut buf, value);
        let mut resp = self.call_mutation(target, OP_PUT_IF_ABSENT, buf.freeze())?;
        let mut vals = decode_optionals(&mut resp)?;
        vals.pop()
            .ok_or_else(|| YokanError::Protocol("empty put_if_absent response".into()))
    }

    /// Delete a batch of keys in one RPC.
    pub fn erase_multi(&self, target: &DbTarget, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        let keys_block = encode_keys(keys);
        let mut buf = self.mutation_header(target, keys_block.len());
        buf.put_slice(&keys_block);
        self.call_mutation(target, OP_ERASE_MULTI, buf.freeze())?;
        Ok(())
    }

    /// Keys strictly greater than `from` matching `prefix`, up to `limit`
    /// (`0` = unlimited). During a live migration the page is merged with
    /// the dual-read candidates' pages (deduplicated, sorted), so a key
    /// acked before the rescale appears no matter which side holds it.
    pub fn list_keys(
        &self,
        target: &DbTarget,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        let keys = self.list_keys_raw(target, from, prefix, limit)?;
        let Some(cands) = self.dual_candidates(&target.db) else {
            return Ok(keys);
        };
        let mut merged: std::collections::BTreeSet<Vec<u8>> = keys.iter().cloned().collect();
        let n_new = merged.len();
        for c in &cands {
            merged.extend(self.list_keys_raw(c, from, prefix, limit)?);
        }
        if merged.len() > n_new {
            self.session
                .counters
                .dual_reads
                .fetch_add(1, Ordering::Relaxed);
        }
        let mut out: Vec<Vec<u8>> = merged.into_iter().collect();
        if limit > 0 {
            out.truncate(limit);
        }
        Ok(out)
    }

    /// [`YokanClient::list_keys`] without the dual-read merge.
    fn list_keys_raw(
        &self,
        target: &DbTarget,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        let mut buf = Self::header(target, 12 + from.len() + prefix.len());
        put_bytes(&mut buf, from);
        put_bytes(&mut buf, prefix);
        buf.put_u32_le(limit as u32);
        let mut resp = self.call(target, OP_LIST_KEYS, buf.freeze())?;
        decode_keys(&mut resp)
    }

    /// Like [`YokanClient::list_keys`] with values (dual-read pages merge
    /// the same way; on a key held by both sides the new owner wins).
    pub fn list_keyvals(
        &self,
        target: &DbTarget,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError> {
        let kvs = self.list_keyvals_raw(target, from, prefix, limit)?;
        let Some(cands) = self.dual_candidates(&target.db) else {
            return Ok(kvs);
        };
        let mut merged: std::collections::BTreeMap<Vec<u8>, Vec<u8>> =
            std::collections::BTreeMap::new();
        for c in &cands {
            for (k, v) in self.list_keyvals_raw(c, from, prefix, limit)? {
                merged.insert(k, v);
            }
        }
        let n_old_only = {
            let new_keys: std::collections::BTreeSet<&[u8]> =
                kvs.iter().map(|(k, _)| k.as_slice()).collect();
            merged
                .keys()
                .filter(|k| !new_keys.contains(k.as_slice()))
                .count()
        };
        if n_old_only > 0 {
            self.session
                .counters
                .dual_reads
                .fetch_add(1, Ordering::Relaxed);
        }
        for (k, v) in kvs {
            merged.insert(k, v);
        }
        let mut out: Vec<KeyValue> = merged.into_iter().collect();
        if limit > 0 {
            out.truncate(limit);
        }
        Ok(out)
    }

    /// [`YokanClient::list_keyvals`] without the dual-read merge.
    fn list_keyvals_raw(
        &self,
        target: &DbTarget,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError> {
        let mut buf = Self::header(target, 12 + from.len() + prefix.len());
        put_bytes(&mut buf, from);
        put_bytes(&mut buf, prefix);
        buf.put_u32_le(limit as u32);
        let mut resp = self.call(target, OP_LIST_KEYVALS, buf.freeze())?;
        decode_pairs(&mut resp)
    }

    /// Number of pairs in the database.
    pub fn count(&self, target: &DbTarget) -> Result<u64, YokanError> {
        let buf = Self::header(target, 0);
        let mut resp = self.call(target, OP_COUNT, buf.freeze())?;
        get_u64(&mut resp)
    }

    /// Database names served by a provider.
    pub fn list_databases(&self, addr: &str, provider_id: u16) -> Result<Vec<String>, YokanError> {
        let mut resp = self.invoke(addr, OP_LIST_DBS, provider_id, Bytes::new())?;
        let keys = decode_keys(&mut resp)?;
        keys.into_iter()
            .map(|k| {
                String::from_utf8(k).map_err(|_| YokanError::Protocol("db name not utf8".into()))
            })
            .collect()
    }
}

/// An in-flight asynchronous read RPC: the pending response plus
/// everything needed to re-issue the identical payload under the client's
/// retry policy. Reads carry no mutation stamp and no replay marker, so
/// retrying them is always safe.
struct PendingRead {
    pending: PendingResponse,
    endpoint: Arc<dyn Endpoint>,
    addr: String,
    provider_id: u16,
    op: u16,
    payload: Bytes,
    retry: Option<RetryPolicy>,
    session: Arc<ClientSession>,
    /// Remaining replicas (tail toward head) to try when the issued
    /// target turns out to be dead. Empty for unrouted databases.
    fallbacks: Vec<DbTarget>,
}

impl PendingRead {
    fn wait_raw(self) -> Result<Bytes, YokanError> {
        let mut result = wait_with_retry(
            &self.endpoint,
            self.retry.as_ref(),
            &self.session.counters,
            &self.addr,
            RpcId(self.op),
            self.provider_id,
            &self.payload,
            self.pending,
        );
        for t in &self.fallbacks {
            let dead = matches!(&result, Err(e) if replica::is_dead_node(e));
            if !dead {
                break;
            }
            let pending = self.endpoint.call_async(
                &t.addr,
                RpcId(self.op),
                t.provider_id,
                self.payload.clone(),
            );
            result = wait_with_retry(
                &self.endpoint,
                self.retry.as_ref(),
                &self.session.counters,
                &t.addr,
                RpcId(self.op),
                t.provider_id,
                &self.payload,
                pending,
            );
            if result.is_ok() {
                self.session
                    .counters
                    .read_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        result.map_err(YokanError::from)
    }

    fn is_ready(&self) -> bool {
        self.pending.is_ready()
    }
}

/// In-flight asynchronous `get_multi` (see [`YokanClient::get_multi_async`]).
pub struct PendingGetMulti {
    inner: PendingRead,
}

impl PendingGetMulti {
    /// Wait for the values: one slot per requested key, in request order.
    /// Present values are zero-copy `Bytes` slices of the response buffer.
    pub fn wait(self) -> Result<Vec<Option<Bytes>>, YokanError> {
        let mut resp = self.inner.wait_raw()?;
        decode_optionals_shared(&mut resp)
    }

    /// Wait for the values as owned vectors (the historical representation).
    pub fn wait_owned(self) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        let mut resp = self.inner.wait_raw()?;
        decode_optionals(&mut resp)
    }

    /// Whether the response arrived.
    pub fn is_ready(&self) -> bool {
        self.inner.is_ready()
    }
}

/// In-flight asynchronous `exists_multi`
/// (see [`YokanClient::exists_multi_async`]).
pub struct PendingExistsMulti {
    inner: PendingRead,
    n_keys: usize,
}

impl PendingExistsMulti {
    /// Wait for the flags, one per requested key.
    pub fn wait(self) -> Result<Vec<bool>, YokanError> {
        let n_keys = self.n_keys;
        let resp = self.inner.wait_raw()?;
        if resp.len() != n_keys {
            return Err(YokanError::Protocol(format!(
                "exists_multi: expected {} flags, got {}",
                n_keys,
                resp.len()
            )));
        }
        Ok(resp.iter().map(|&b| b == 1).collect())
    }

    /// Whether the response arrived.
    pub fn is_ready(&self) -> bool {
        self.inner.is_ready()
    }
}

/// In-flight asynchronous `list_keys` (see [`YokanClient::list_keys_async`]).
pub struct PendingListKeys {
    inner: PendingRead,
}

impl PendingListKeys {
    /// Wait for the key page.
    pub fn wait(self) -> Result<Vec<Vec<u8>>, YokanError> {
        let mut resp = self.inner.wait_raw()?;
        decode_keys(&mut resp)
    }

    /// Whether the response arrived.
    pub fn is_ready(&self) -> bool {
        self.inner.is_ready()
    }
}

/// In-flight asynchronous `put_multi`.
pub struct PendingPut {
    pending: PendingResponse,
    bulk: Option<mercurio::BulkHandle>,
    endpoint: Arc<dyn Endpoint>,
    addr: String,
    provider_id: u16,
    payload: Bytes,
    retry: Option<RetryPolicy>,
    session: Arc<ClientSession>,
    /// The replica chain (and the head index the batch was issued to),
    /// when the target database is routed: `wait` fails the identical
    /// payload over to the next chain members on dead-node errors.
    chain: Option<(Arc<ChainState>, usize)>,
}

impl PendingPut {
    /// Wait for the server to acknowledge the batch, retrying per the
    /// client's policy; releases the bulk region if one was exposed (only
    /// after the last attempt, so retries can still pull it). On a replica
    /// chain, a dead head is failed over: the identical stamped payload is
    /// re-issued to the next chain member (the bulk region, if any, stays
    /// exposed on this client, so any replica can still pull it), and the
    /// member that accepts is promoted.
    pub fn wait(self) -> Result<(), YokanError> {
        let mut result = wait_with_retry(
            &self.endpoint,
            self.retry.as_ref(),
            &self.session.counters,
            &self.addr,
            RpcId(OP_PUT_MULTI),
            self.provider_id,
            &self.payload,
            self.pending,
        );
        if let Some((chain, start)) = &self.chain {
            let n = chain.replicas.len();
            for k in 1..n {
                let dead = matches!(&result, Err(e) if replica::is_dead_node(e));
                if !dead {
                    break;
                }
                let idx = (start + k) % n;
                let t = &chain.replicas[idx];
                let pending = self.endpoint.call_async(
                    &t.addr,
                    RpcId(OP_PUT_MULTI),
                    t.provider_id,
                    self.payload.clone(),
                );
                result = wait_with_retry(
                    &self.endpoint,
                    self.retry.as_ref(),
                    &self.session.counters,
                    &t.addr,
                    RpcId(OP_PUT_MULTI),
                    t.provider_id,
                    &self.payload,
                    pending,
                );
                if result.is_ok() {
                    chain.promote(idx);
                    self.session
                        .counters
                        .failovers
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(h) = &self.bulk {
            self.endpoint.release_bulk(h);
        }
        let resp = result.map_err(YokanError::from)?;
        strip_replay_marker(resp, &self.session.counters)?;
        Ok(())
    }

    /// Whether the acknowledgment arrived.
    pub fn is_ready(&self) -> bool {
        self.pending.is_ready()
    }
}
