//! Client side: remote database handles.

use crate::backend::KeyValue;
use crate::encoding::*;
use crate::error::YokanError;
use crate::service::*;
use bytes::{BufMut, Bytes, BytesMut};
use mercurio::{Endpoint, PendingResponse, RpcId};
use std::sync::Arc;

/// Identifies one remote database: the server address, the provider id on
/// that server, and the database name within the provider.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DbTarget {
    /// Server endpoint address.
    pub addr: String,
    /// Provider id on that server.
    pub provider_id: u16,
    /// Database name within the provider.
    pub db: String,
}

impl DbTarget {
    /// Convenience constructor.
    pub fn new(addr: impl Into<String>, provider_id: u16, db: impl Into<String>) -> Self {
        DbTarget {
            addr: addr.into(),
            provider_id,
            db: db.into(),
        }
    }
}

/// A Yokan client bound to a local endpoint.
///
/// Batched writes larger than `bulk_threshold` bytes are shipped as bulk
/// transfers (the client exposes the encoded block and the server pulls it),
/// matching Yokan's RPC-for-small / RDMA-for-batches split (paper §II-B).
#[derive(Clone)]
pub struct YokanClient {
    endpoint: Arc<dyn Endpoint>,
    bulk_threshold: usize,
}

impl YokanClient {
    /// Create a client with the default 8 KiB bulk threshold.
    pub fn new(endpoint: Arc<dyn Endpoint>) -> YokanClient {
        YokanClient {
            endpoint,
            bulk_threshold: 8 << 10,
        }
    }

    /// Override the bulk threshold (`usize::MAX` disables bulk entirely).
    pub fn with_bulk_threshold(endpoint: Arc<dyn Endpoint>, threshold: usize) -> YokanClient {
        YokanClient {
            endpoint,
            bulk_threshold: threshold,
        }
    }

    /// The local endpoint this client sends from.
    pub fn endpoint(&self) -> &Arc<dyn Endpoint> {
        &self.endpoint
    }

    fn header(target: &DbTarget, extra: usize) -> BytesMut {
        let mut buf = BytesMut::with_capacity(4 + target.db.len() + extra);
        put_bytes(&mut buf, target.db.as_bytes());
        buf
    }

    fn call(&self, target: &DbTarget, op: u16, payload: Bytes) -> Result<Bytes, YokanError> {
        self.endpoint
            .call(&target.addr, RpcId(op), target.provider_id, payload)
            .map_err(YokanError::from)
    }

    /// Store one pair.
    pub fn put(&self, target: &DbTarget, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        let mut buf = Self::header(target, 8 + key.len() + value.len());
        put_bytes(&mut buf, key);
        put_bytes(&mut buf, value);
        self.call(target, OP_PUT, buf.freeze())?;
        Ok(())
    }

    /// Store a batch of pairs in one RPC (inline or bulk depending on size).
    pub fn put_multi(
        &self,
        target: &DbTarget,
        pairs: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(), YokanError> {
        self.put_multi_async(target, pairs)?.wait()
    }

    /// [`YokanClient::put_multi`] encoding through a caller-owned scratch
    /// buffer (see [`YokanClient::put_multi_async_with`]).
    pub fn put_multi_with(
        &self,
        target: &DbTarget,
        pairs: &[(Vec<u8>, Vec<u8>)],
        scratch: &mut BytesMut,
    ) -> Result<(), YokanError> {
        self.put_multi_async_with(target, pairs, scratch)?.wait()
    }

    /// Asynchronous [`YokanClient::put_multi`]; the returned handle must be
    /// waited on (it also releases the bulk region, if one was used).
    pub fn put_multi_async(
        &self,
        target: &DbTarget,
        pairs: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<PendingPut, YokanError> {
        let mut scratch = BytesMut::new();
        self.put_multi_async_with(target, pairs, &mut scratch)
    }

    /// [`YokanClient::put_multi_async`] with zero-realloc encoding: the
    /// exact payload size is computed up front, reserved once in `scratch`,
    /// and the pairs are encoded straight into it — no intermediate block
    /// buffer, no growth reallocations. Long-lived writers (e.g. the
    /// `AsyncWriteBatch` flusher threads) keep one scratch buffer each and
    /// pass it to every flush.
    pub fn put_multi_async_with(
        &self,
        target: &DbTarget,
        pairs: &[(Vec<u8>, Vec<u8>)],
        scratch: &mut BytesMut,
    ) -> Result<PendingPut, YokanError> {
        let block_len = pairs_encoded_len(pairs);
        scratch.clear();
        let bulk = if block_len > self.bulk_threshold {
            // Bulk mode: the pair block itself is exposed for the server to
            // pull; only a small header travels inline.
            scratch.reserve(block_len);
            encode_pairs_into(scratch, pairs);
            let block = scratch.split_to(block_len).freeze();
            Some(self.endpoint.expose_bulk(block))
        } else {
            None
        };
        let header_len = 4 + target.db.len() + 1;
        let payload = match &bulk {
            Some(handle) => {
                let mut buf = BytesMut::with_capacity(header_len + 24);
                put_bytes(&mut buf, target.db.as_bytes());
                buf.put_u8(MODE_BULK);
                handle.encode_into(&mut buf);
                buf.freeze()
            }
            None => {
                scratch.reserve(header_len + block_len);
                put_bytes(scratch, target.db.as_bytes());
                scratch.put_u8(MODE_INLINE);
                encode_pairs_into(scratch, pairs);
                scratch.split_to(header_len + block_len).freeze()
            }
        };
        let pending = self.endpoint.call_async(
            &target.addr,
            RpcId(OP_PUT_MULTI),
            target.provider_id,
            payload,
        );
        Ok(PendingPut {
            pending,
            bulk,
            endpoint: Arc::clone(&self.endpoint),
        })
    }

    /// Fetch one value.
    pub fn get(&self, target: &DbTarget, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        let mut buf = Self::header(target, 4 + key.len());
        put_bytes(&mut buf, key);
        let mut resp = self.call(target, OP_GET, buf.freeze())?;
        let mut vals = decode_optionals(&mut resp)?;
        vals.pop()
            .ok_or_else(|| YokanError::Protocol("empty get response".into()))
    }

    /// Fetch a batch of values; one slot per requested key.
    pub fn get_multi(
        &self,
        target: &DbTarget,
        keys: &[Vec<u8>],
    ) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        let keys_block = encode_keys(keys);
        let mut buf = Self::header(target, keys_block.len());
        buf.put_slice(&keys_block);
        let mut resp = self.call(target, OP_GET_MULTI, buf.freeze())?;
        decode_optionals(&mut resp)
    }

    /// Existence checks for a batch of keys in one round-trip; the server
    /// fans large batches out across the provider's pool.
    pub fn exists_multi(
        &self,
        target: &DbTarget,
        keys: &[Vec<u8>],
    ) -> Result<Vec<bool>, YokanError> {
        let keys_block = encode_keys(keys);
        let mut buf = Self::header(target, keys_block.len());
        buf.put_slice(&keys_block);
        let resp = self.call(target, OP_EXISTS_MULTI, buf.freeze())?;
        if resp.len() != keys.len() {
            return Err(YokanError::Protocol(format!(
                "exists_multi: expected {} flags, got {}",
                keys.len(),
                resp.len()
            )));
        }
        Ok(resp.iter().map(|&b| b == 1).collect())
    }

    /// Whether a key exists.
    pub fn exists(&self, target: &DbTarget, key: &[u8]) -> Result<bool, YokanError> {
        let mut buf = Self::header(target, 4 + key.len());
        put_bytes(&mut buf, key);
        let resp = self.call(target, OP_EXISTS, buf.freeze())?;
        Ok(resp.first().copied() == Some(1))
    }

    /// Delete a key.
    pub fn erase(&self, target: &DbTarget, key: &[u8]) -> Result<(), YokanError> {
        let mut buf = Self::header(target, 4 + key.len());
        put_bytes(&mut buf, key);
        self.call(target, OP_ERASE, buf.freeze())?;
        Ok(())
    }

    /// Atomically insert unless present; returns the existing value if the
    /// key was already set (the server performs the check-and-insert under
    /// its backend's lock).
    pub fn put_if_absent(
        &self,
        target: &DbTarget,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<Vec<u8>>, YokanError> {
        let mut buf = Self::header(target, 8 + key.len() + value.len());
        put_bytes(&mut buf, key);
        put_bytes(&mut buf, value);
        let mut resp = self.call(target, OP_PUT_IF_ABSENT, buf.freeze())?;
        let mut vals = decode_optionals(&mut resp)?;
        vals.pop()
            .ok_or_else(|| YokanError::Protocol("empty put_if_absent response".into()))
    }

    /// Delete a batch of keys in one RPC.
    pub fn erase_multi(&self, target: &DbTarget, keys: &[Vec<u8>]) -> Result<(), YokanError> {
        let keys_block = encode_keys(keys);
        let mut buf = Self::header(target, keys_block.len());
        buf.put_slice(&keys_block);
        self.call(target, OP_ERASE_MULTI, buf.freeze())?;
        Ok(())
    }

    /// Keys strictly greater than `from` matching `prefix`, up to `limit`
    /// (`0` = unlimited).
    pub fn list_keys(
        &self,
        target: &DbTarget,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        let mut buf = Self::header(target, 12 + from.len() + prefix.len());
        put_bytes(&mut buf, from);
        put_bytes(&mut buf, prefix);
        buf.put_u32_le(limit as u32);
        let mut resp = self.call(target, OP_LIST_KEYS, buf.freeze())?;
        decode_keys(&mut resp)
    }

    /// Like [`YokanClient::list_keys`] with values.
    pub fn list_keyvals(
        &self,
        target: &DbTarget,
        from: &[u8],
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<KeyValue>, YokanError> {
        let mut buf = Self::header(target, 12 + from.len() + prefix.len());
        put_bytes(&mut buf, from);
        put_bytes(&mut buf, prefix);
        buf.put_u32_le(limit as u32);
        let mut resp = self.call(target, OP_LIST_KEYVALS, buf.freeze())?;
        decode_pairs(&mut resp)
    }

    /// Number of pairs in the database.
    pub fn count(&self, target: &DbTarget) -> Result<u64, YokanError> {
        let buf = Self::header(target, 0);
        let mut resp = self.call(target, OP_COUNT, buf.freeze())?;
        get_u64(&mut resp)
    }

    /// Database names served by a provider.
    pub fn list_databases(&self, addr: &str, provider_id: u16) -> Result<Vec<String>, YokanError> {
        let mut resp = self
            .endpoint
            .call(addr, RpcId(OP_LIST_DBS), provider_id, Bytes::new())
            .map_err(YokanError::from)?;
        let keys = decode_keys(&mut resp)?;
        keys.into_iter()
            .map(|k| {
                String::from_utf8(k).map_err(|_| YokanError::Protocol("db name not utf8".into()))
            })
            .collect()
    }
}

/// In-flight asynchronous `put_multi`.
pub struct PendingPut {
    pending: PendingResponse,
    bulk: Option<mercurio::BulkHandle>,
    endpoint: Arc<dyn Endpoint>,
}

impl PendingPut {
    /// Wait for the server to acknowledge the batch; releases the bulk
    /// region if one was exposed.
    pub fn wait(self) -> Result<(), YokanError> {
        let result = self.pending.wait();
        if let Some(h) = &self.bulk {
            self.endpoint.release_bulk(h);
        }
        result.map(|_| ()).map_err(YokanError::from)
    }

    /// Whether the acknowledgment arrived.
    pub fn is_ready(&self) -> bool {
        self.pending.is_ready()
    }
}
