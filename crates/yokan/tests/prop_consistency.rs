//! Property test: the full client → RPC → service → backend path behaves
//! exactly like an in-memory map, for arbitrary operation sequences.

use argos::Runtime;
use margo::MargoInstance;
use mercurio::local::Fabric;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use yokan::{DbTarget, MemBackend, YokanClient, YokanService};

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    PutMulti(Vec<(Vec<u8>, Vec<u8>)>),
    Erase(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    (0u8..32).prop_map(|i| vec![b'k', i])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => proptest::collection::vec(
            (key_strategy(), proptest::collection::vec(any::<u8>(), 0..32)), 1..6
        ).prop_map(Op::PutMulti),
        1 => key_strategy().prop_map(Op::Erase),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn remote_database_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let fabric = Fabric::new(Default::default());
        let server = MargoInstance::new(
            fabric.endpoint("server"),
            Runtime::simple(1),
            "default",
        ).unwrap();
        let svc = YokanService::register(&server);
        svc.add_provider(&server, 0, "default").unwrap();
        svc.add_database(0, "db", Arc::new(MemBackend::new()));
        let client = YokanClient::new(fabric.endpoint("client"));
        let t = DbTarget::new(server.address(), 0, "db");

        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    client.put(&t, k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::PutMulti(pairs) => {
                    client.put_multi(&t, pairs).unwrap();
                    for (k, v) in pairs {
                        model.insert(k.clone(), v.clone());
                    }
                }
                Op::Erase(k) => {
                    client.erase(&t, k).unwrap();
                    model.remove(k);
                }
            }
        }
        // Point lookups agree.
        for i in 0u8..32 {
            let k = vec![b'k', i];
            prop_assert_eq!(client.get(&t, &k).unwrap(), model.get(&k).cloned());
            prop_assert_eq!(client.exists(&t, &k).unwrap(), model.contains_key(&k));
        }
        // Count and full listing agree (order included).
        prop_assert_eq!(client.count(&t).unwrap(), model.len() as u64);
        let listed = client.list_keyvals(&t, &[], &[], 0).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(listed, expected);
        // get_multi agrees, order-preserving.
        let keys: Vec<Vec<u8>> = (0u8..32).map(|i| vec![b'k', i]).collect();
        let got = client.get_multi(&t, &keys).unwrap();
        for (k, g) in keys.iter().zip(got) {
            prop_assert_eq!(g, model.get(k).cloned());
        }
        server.finalize();
    }
}
