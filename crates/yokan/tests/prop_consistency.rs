//! Property test: the full client → RPC → service → backend path behaves
//! exactly like an in-memory map, for arbitrary operation sequences.

use argos::Runtime;
use margo::MargoInstance;
use mercurio::local::Fabric;
use mercurio::{FaultConfig, FaultPlan};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use yokan::{DbTarget, MemBackend, RetryPolicy, YokanClient, YokanService};

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    PutMulti(Vec<(Vec<u8>, Vec<u8>)>),
    Erase(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    (0u8..32).prop_map(|i| vec![b'k', i])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => proptest::collection::vec(
            (key_strategy(), proptest::collection::vec(any::<u8>(), 0..32)), 1..6
        ).prop_map(Op::PutMulti),
        1 => key_strategy().prop_map(Op::Erase),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn remote_database_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let fabric = Fabric::new(Default::default());
        let server = MargoInstance::new(
            fabric.endpoint("server"),
            Runtime::simple(1),
            "default",
        ).unwrap();
        let svc = YokanService::register(&server);
        svc.add_provider(&server, 0, "default").unwrap();
        svc.add_database(0, "db", Arc::new(MemBackend::new()));
        let client = YokanClient::new(fabric.endpoint("client"));
        let t = DbTarget::new(server.address(), 0, "db");

        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    client.put(&t, k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::PutMulti(pairs) => {
                    client.put_multi(&t, pairs).unwrap();
                    for (k, v) in pairs {
                        model.insert(k.clone(), v.clone());
                    }
                }
                Op::Erase(k) => {
                    client.erase(&t, k).unwrap();
                    model.remove(k);
                }
            }
        }
        // Point lookups agree.
        for i in 0u8..32 {
            let k = vec![b'k', i];
            prop_assert_eq!(client.get(&t, &k).unwrap(), model.get(&k).cloned());
            prop_assert_eq!(client.exists(&t, &k).unwrap(), model.contains_key(&k));
        }
        // Count and full listing agree (order included).
        prop_assert_eq!(client.count(&t).unwrap(), model.len() as u64);
        let listed = client.list_keyvals(&t, &[], &[], 0).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(listed, expected);
        // get_multi agrees, order-preserving.
        let keys: Vec<Vec<u8>> = (0u8..32).map(|i| vec![b'k', i]).collect();
        let got = client.get_multi(&t, &keys).unwrap();
        for (k, g) in keys.iter().zip(got) {
            prop_assert_eq!(g, model.get(k).cloned());
        }
        server.finalize();
    }
}

/// Harness for the at-most-once tests: a service on a faulty fabric plus a
/// retrying client.
struct FaultyRig {
    fabric: Fabric,
    server: MargoInstance,
    svc: YokanService,
    client: YokanClient,
    target: DbTarget,
}

fn faulty_rig(cfg: FaultConfig) -> FaultyRig {
    let fabric = Fabric::new(Default::default());
    let server = MargoInstance::new(fabric.endpoint("server"), Runtime::simple(1), "default")
        .expect("margo instance");
    let svc = YokanService::register(&server);
    svc.add_provider(&server, 0, "default").unwrap();
    svc.add_database(0, "db", Arc::new(MemBackend::new()));
    let policy = RetryPolicy {
        max_attempts: 8,
        rpc_timeout: Duration::from_millis(50),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        jitter_seed: cfg.seed,
    };
    let client = YokanClient::new(fabric.endpoint("client")).with_retry(policy);
    let target = DbTarget::new(server.address(), 0, "db");
    fabric.install_fault_plan(Arc::new(FaultPlan::new(cfg)));
    FaultyRig {
        fabric,
        server,
        svc,
        client,
        target,
    }
}

impl FaultyRig {
    fn shutdown(self) {
        self.fabric.clear_fault_plan();
        self.server.finalize();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// At-most-once under duplicated and replayed mutations: requests are
    /// duplicated at the transport (the handler runs twice) and responses
    /// are dropped (the client retries mutations whose original landed).
    /// The dedup window must absorb both — the final KV state equals the
    /// model where every mutation applied exactly once, and erased keys are
    /// never resurrected by a replay.
    #[test]
    fn duplicated_and_replayed_mutations_apply_at_most_once(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        seed in any::<u64>(),
    ) {
        let mut cfg = FaultConfig::new(seed);
        cfg.duplicate_request = 0.4;
        cfg.drop_response = 0.3;
        let rig = faulty_rig(cfg);
        let (client, t) = (&rig.client, &rig.target);

        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    client.put(t, k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::PutMulti(pairs) => {
                    client.put_multi(t, pairs).unwrap();
                    for (k, v) in pairs {
                        model.insert(k.clone(), v.clone());
                    }
                }
                Op::Erase(k) => {
                    client.erase(t, k).unwrap();
                    model.remove(k);
                }
            }
        }
        let stats = client.retry_stats();
        prop_assert!(stats.gave_up == 0, "retry budget exhausted: {:?}", stats);

        // Reads go through the same retrying client; the fault plan is
        // still active, so agreement here also exercises read retries.
        let listed = client.list_keyvals(t, &[], &[], 0).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        // On mismatch the proptest failure prints `seed` as part of the
        // minimized input, which reproduces the fault schedule.
        prop_assert_eq!(listed, expected);
        rig.shutdown();
    }
}

/// Deterministic pin: with every mutation request duplicated, the service's
/// dedup window must answer the second delivery from cache — and
/// `put_if_absent` semantics must survive (the duplicate must not observe
/// its own twin's insert as "already present").
#[test]
fn every_mutation_duplicated_still_applies_once() {
    let mut cfg = FaultConfig::new(99);
    cfg.duplicate_request = 1.0;
    let rig = faulty_rig(cfg);
    let (client, t) = (&rig.client, &rig.target);

    assert_eq!(client.put_if_absent(t, b"k1", b"v1").unwrap(), None);
    assert_eq!(
        client.put_if_absent(t, b"k1", b"v2").unwrap(),
        Some(b"v1".to_vec())
    );
    client.put(t, b"k2", b"v2").unwrap();
    client.erase(t, b"k1").unwrap();
    client
        .put_multi(t, &[(b"k3".to_vec(), b"v3".to_vec())])
        .unwrap();
    client.erase_multi(t, &[b"k2".to_vec()]).unwrap();

    assert_eq!(client.get(t, b"k1").unwrap(), None);
    assert_eq!(client.get(t, b"k2").unwrap(), None);
    assert_eq!(client.get(t, b"k3").unwrap(), Some(b"v3".to_vec()));
    assert!(
        rig.svc.deduped_replays() > 0,
        "duplicated mutations never hit the dedup window"
    );
    assert_eq!(client.retry_stats().gave_up, 0);
    rig.shutdown();
}

/// A bounded dedup window still dedups recent retries: with the window
/// clamped tiny, old entries are pruned but the retry of the *latest*
/// mutation is still answered from cache.
#[test]
fn tiny_dedup_window_still_covers_recent_mutations() {
    let mut cfg = FaultConfig::new(7);
    cfg.duplicate_request = 1.0;
    let rig = faulty_rig(cfg);
    rig.svc.set_dedup_window(4);
    let (client, t) = (&rig.client, &rig.target);

    for i in 0u8..32 {
        client.put(t, &[b'k', i], &[i]).unwrap();
    }
    for i in 0u8..32 {
        assert_eq!(client.get(t, &[b'k', i]).unwrap(), Some(vec![i]));
    }
    assert!(rig.svc.deduped_replays() > 0);
    assert_eq!(client.retry_stats().gave_up, 0);
    rig.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Overload shedding is all-or-nothing: against a backend with a tiny
    /// hard watermark, any mutation answered with `Busy` must leave the
    /// database exactly as it was — in particular a shed `put_multi`
    /// applies none of its pairs. The database is compared pair-exactly to
    /// an in-memory model that only applies *successful* operations, after
    /// every shed and at the end.
    #[test]
    fn shed_mutations_are_never_partially_applied(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let fabric = Fabric::new(Default::default());
        let server = MargoInstance::new(
            fabric.endpoint("server"),
            Runtime::simple(1),
            "default",
        ).unwrap();
        let svc = YokanService::register(&server);
        svc.add_provider(&server, 0, "default").unwrap();
        svc.add_database(0, "db", Arc::new(MemBackend::new().with_watermarks(
            yokan::WatermarkConfig {
                soft_bytes: 96,
                hard_bytes: 96,
                max_stall: Duration::from_millis(1),
                retry_after_hint: Duration::from_millis(1),
            },
        )));
        // No retry policy: a shed surfaces as `Busy` instead of being
        // retried, which is exactly what this property inspects.
        let client = YokanClient::new(fabric.endpoint("client"));
        let t = DbTarget::new(server.address(), 0, "db");

        let check = |model: &BTreeMap<Vec<u8>, Vec<u8>>| -> Result<(), TestCaseError> {
            let listed = client.list_keyvals(&t, &[], &[], 0).unwrap();
            let expected: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(listed, expected);
            Ok(())
        };

        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut sheds = 0u32;
        for op in &ops {
            match op {
                Op::Put(k, v) => match client.put(&t, k, v) {
                    Ok(()) => { model.insert(k.clone(), v.clone()); }
                    Err(yokan::YokanError::Rpc(mercurio::RpcError::Busy { .. })) => {
                        sheds += 1;
                        check(&model)?;
                    }
                    Err(e) => prop_assert!(false, "unexpected error: {:?}", e),
                },
                Op::PutMulti(pairs) => match client.put_multi(&t, pairs) {
                    Ok(()) => {
                        for (k, v) in pairs {
                            model.insert(k.clone(), v.clone());
                        }
                    }
                    Err(yokan::YokanError::Rpc(mercurio::RpcError::Busy { .. })) => {
                        sheds += 1;
                        check(&model)?;
                    }
                    Err(e) => prop_assert!(false, "unexpected error: {:?}", e),
                },
                Op::Erase(k) => {
                    // Erase frees bytes; it is never shed by the watermark.
                    client.erase(&t, k).unwrap();
                    model.remove(k);
                }
            }
        }
        check(&model)?;
        // With 96 bytes of budget and values up to 64 bytes, most runs must
        // actually shed — a property that never fires proves nothing. (Not
        // asserted per-case: short all-erase runs legitimately fit.)
        if ops.len() >= 20 {
            prop_assert!(sheds > 0, "20+ ops never tripped a 96-byte watermark");
        }
        server.finalize();
    }
}
