//! Concurrency stress tests for the storage backends.
//!
//! The sharded `MemBackend` and the LSM engine behind `LsmBackend` both
//! promise the same observable contract as the old single-lock code:
//! `put_if_absent` is linearizable (exactly one winner per key, every loser
//! sees the winner's value) and `list_keys` returns a globally sorted,
//! prefix-filtered listing even while the keyspace straddles shard
//! boundaries and other threads are writing.

use std::sync::Arc;
use yokan::{Backend, LsmBackend, MemBackend};

const THREADS: usize = 8;
const KEYS_PER_THREAD: usize = 200;
const CONTENDED_KEYS: usize = 32;

fn key(prefix: u8, i: usize) -> Vec<u8> {
    // Big-endian suffix: lexicographic order == numeric order, the property
    // HEPnOS event iteration depends on.
    let mut k = vec![prefix];
    k.extend_from_slice(&(i as u32).to_be_bytes());
    k
}

/// Mixed put/get/put_if_absent/list_keys workload from `THREADS` threads.
fn hammer(backend: Arc<dyn Backend>) {
    let winners: Vec<Vec<Option<Vec<u8>>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let backend = Arc::clone(&backend);
                scope.spawn(move || {
                    let mut my_claims = Vec::with_capacity(CONTENDED_KEYS);
                    for i in 0..KEYS_PER_THREAD {
                        // Private keys: put then read back.
                        let k = key(b'a' + t as u8, i);
                        backend.put(&k, &i.to_le_bytes()).unwrap();
                        assert_eq!(
                            backend.get(&k).unwrap().as_deref(),
                            Some(&i.to_le_bytes()[..])
                        );
                        // Contended keys: race to claim with put_if_absent.
                        if i < CONTENDED_KEYS {
                            let ck = key(b'Z', i);
                            my_claims.push(backend.put_if_absent(&ck, &[t as u8]).unwrap());
                        }
                        // Listings while writes are in flight must stay
                        // sorted and prefix-clean.
                        if i % 50 == 0 {
                            let listed = backend.list_keys(b"", b"Z", 0).unwrap();
                            assert!(
                                listed.windows(2).all(|w| w[0] < w[1]),
                                "concurrent listing not sorted"
                            );
                            assert!(listed.iter().all(|k| k[0] == b'Z'));
                        }
                    }
                    my_claims
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Linearizability of put_if_absent: per contended key, exactly one
    // thread saw None (it won), and everyone else saw the winner's value —
    // which must be what the backend still stores.
    for i in 0..CONTENDED_KEYS {
        let stored = backend.get(&key(b'Z', i)).unwrap().unwrap();
        let mut none_count = 0;
        for per_thread in &winners {
            match &per_thread[i] {
                None => none_count += 1,
                Some(seen) => assert_eq!(seen, &stored, "loser saw a non-winner value"),
            }
        }
        assert_eq!(none_count, 1, "key {i}: expected exactly one winner");
    }

    // Global listing: every thread's private keys, globally sorted across
    // all shards, numeric order preserved by the big-endian encoding.
    for t in 0..THREADS {
        let prefix = [b'a' + t as u8];
        let listed = backend.list_keys(b"", &prefix, 0).unwrap();
        let expected: Vec<Vec<u8>> = (0..KEYS_PER_THREAD).map(|i| key(prefix[0], i)).collect();
        assert_eq!(listed, expected, "thread {t} listing mismatch");
    }
    assert_eq!(
        backend.count().unwrap(),
        (THREADS * KEYS_PER_THREAD + CONTENDED_KEYS) as u64
    );
}

#[test]
fn mem_backend_survives_mixed_stress() {
    hammer(Arc::new(MemBackend::new()));
}

#[test]
fn mem_backend_single_shard_agrees() {
    // The degenerate 1-shard layout is the old single-lock code path; it
    // must satisfy the same contract.
    hammer(Arc::new(MemBackend::with_shards(1)));
}

#[test]
fn lsm_backend_survives_mixed_stress() {
    let dir = std::env::temp_dir().join(format!("yokan-stress-lsm-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    hammer(Arc::new(LsmBackend::open(&dir).unwrap()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_listing_matches_single_shard_reference() {
    // Same data in a 16-shard map and a 1-shard map: list_keys pagination
    // must produce byte-identical, globally sorted results — the k-way
    // merge across shards reconstructs exactly the old iteration order.
    let sharded = MemBackend::with_shards(16);
    let reference = MemBackend::with_shards(1);
    let mut rng: u64 = 0x243F_6A88_85A3_08D3;
    for _ in 0..2000 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let kl = (rng >> 32) as usize % 12 + 1;
        let kb: Vec<u8> = (0..kl).map(|j| (rng >> (j * 5)) as u8 & 0x3f).collect();
        sharded.put(&kb, &rng.to_le_bytes()).unwrap();
        reference.put(&kb, &rng.to_le_bytes()).unwrap();
    }
    for prefix in [&b""[..], &b"\x01"[..], &b"\x0a\x0b"[..]] {
        // Whole listing in one shot.
        assert_eq!(
            sharded.list_keyvals(b"", prefix, 0).unwrap(),
            reference.list_keyvals(b"", prefix, 0).unwrap()
        );
        // Paginated with a small limit, resuming from the last key. The
        // initial `from` is empty (below any prefix) so a key exactly equal
        // to the prefix is included, per the inclusive-at-prefix bound rule.
        let mut from = Vec::new();
        let mut paged = Vec::new();
        loop {
            let page = sharded.list_keys(&from, prefix, 7).unwrap();
            if page.is_empty() {
                break;
            }
            from.clone_from(page.last().unwrap());
            paged.extend(page);
        }
        assert_eq!(paged, reference.list_keys(b"", prefix, 0).unwrap());
    }
}
