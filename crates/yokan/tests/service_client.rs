//! End-to-end tests: YokanClient against a YokanService over the local
//! fabric, through Margo pools — the full Mochi server shape.

use argos::{Runtime, SchedulingDiscipline};
use margo::MargoInstance;
use mercurio::local::Fabric;
use mercurio::{Endpoint, NetworkModel};
use std::sync::Arc;
use yokan::{DbTarget, LsmBackend, MemBackend, YokanClient, YokanError, YokanService};

struct TestServer {
    fabric: Fabric,
    server: MargoInstance,
    svc: YokanService,
}

fn setup(model: NetworkModel) -> TestServer {
    let fabric = Fabric::new(model);
    let rt = Runtime::builder()
        .pool("default", SchedulingDiscipline::Fifo)
        .pool("db0", SchedulingDiscipline::Fifo)
        .pool("db1", SchedulingDiscipline::Fifo)
        .xstream("es0", &["db0", "default"])
        .xstream("es1", &["db1", "default"])
        .build()
        .unwrap();
    let server = MargoInstance::new(fabric.endpoint("server"), rt, "default").unwrap();
    let svc = YokanService::register(&server);
    svc.add_provider(&server, 0, "db0").unwrap();
    svc.add_provider(&server, 1, "db1").unwrap();
    svc.add_database(0, "events", Arc::new(MemBackend::new()));
    svc.add_database(0, "products", Arc::new(MemBackend::new()));
    svc.add_database(1, "events", Arc::new(MemBackend::new()));
    TestServer {
        fabric,
        server,
        svc,
    }
}

#[test]
fn put_get_roundtrip_through_service() {
    let ts = setup(NetworkModel::default());
    let client = YokanClient::new(ts.fabric.endpoint("client"));
    let t = DbTarget::new(ts.server.address(), 0, "events");
    client.put(&t, b"key", b"value").unwrap();
    assert_eq!(client.get(&t, b"key").unwrap(), Some(b"value".to_vec()));
    assert!(client.exists(&t, b"key").unwrap());
    client.erase(&t, b"key").unwrap();
    assert_eq!(client.get(&t, b"key").unwrap(), None);
    ts.server.finalize();
}

#[test]
fn providers_are_isolated() {
    let ts = setup(NetworkModel::default());
    let client = YokanClient::new(ts.fabric.endpoint("client"));
    let t0 = DbTarget::new(ts.server.address(), 0, "events");
    let t1 = DbTarget::new(ts.server.address(), 1, "events");
    client.put(&t0, b"k", b"provider0").unwrap();
    assert_eq!(client.get(&t1, b"k").unwrap(), None);
    assert_eq!(client.get(&t0, b"k").unwrap(), Some(b"provider0".to_vec()));
    ts.server.finalize();
}

#[test]
fn missing_database_and_provider_errors() {
    let ts = setup(NetworkModel::default());
    let client = YokanClient::new(ts.fabric.endpoint("client"));
    let bad_db = DbTarget::new(ts.server.address(), 0, "nope");
    assert_eq!(
        client.get(&bad_db, b"k").unwrap_err(),
        YokanError::NoSuchDatabase("nope".into())
    );
    let bad_prov = DbTarget::new(ts.server.address(), 9, "events");
    assert_eq!(
        client.get(&bad_prov, b"k").unwrap_err(),
        YokanError::NoSuchProvider(9)
    );
    ts.server.finalize();
}

#[test]
fn put_multi_inline_and_bulk() {
    let ts = setup(NetworkModel::default());
    // Tiny threshold forces the bulk path for the big batch.
    let ep = ts.fabric.endpoint("client");
    let client = YokanClient::with_bulk_threshold(Arc::clone(&ep) as Arc<dyn Endpoint>, 256);
    let t = DbTarget::new(ts.server.address(), 0, "products");
    // Small batch: inline.
    let small: Vec<_> = (0..3u8).map(|i| (vec![b's', i], vec![i; 4])).collect();
    client.put_multi(&t, &small).unwrap();
    // Large batch: bulk.
    let large: Vec<_> = (0..100u8).map(|i| (vec![b'l', i], vec![i; 64])).collect();
    client.put_multi(&t, &large).unwrap();
    assert_eq!(client.count(&t).unwrap(), 103);
    for i in 0..100u8 {
        assert_eq!(client.get(&t, &[b'l', i]).unwrap(), Some(vec![i; 64]));
    }
    // The bulk path must actually have served bytes from the client NIC.
    assert!(ep.stats().bulk_bytes_served > 0);
    ts.server.finalize();
}

#[test]
fn get_multi_preserves_order_and_misses() {
    let ts = setup(NetworkModel::default());
    let client = YokanClient::new(ts.fabric.endpoint("client"));
    let t = DbTarget::new(ts.server.address(), 0, "events");
    client.put(&t, b"a", b"1").unwrap();
    client.put(&t, b"c", b"3").unwrap();
    let got = client
        .get_multi(&t, &[b"a".to_vec(), b"b".to_vec(), b"c".to_vec()])
        .unwrap();
    assert_eq!(got, vec![Some(b"1".to_vec()), None, Some(b"3".to_vec())]);
    ts.server.finalize();
}

#[test]
fn list_keys_pagination_protocol() {
    let ts = setup(NetworkModel::default());
    let client = YokanClient::new(ts.fabric.endpoint("client"));
    let t = DbTarget::new(ts.server.address(), 0, "events");
    for i in 0..25u8 {
        client.put(&t, &[b'e', i], b"x").unwrap();
    }
    // Page through with limit 10, resuming from the last key of each page —
    // exactly how HEPnOS iterates a container.
    let mut seen = Vec::new();
    let mut from = vec![b'e'];
    loop {
        let page = client.list_keys(&t, &from, b"e", 10).unwrap();
        if page.is_empty() {
            break;
        }
        from = page.last().unwrap().clone();
        seen.extend(page);
    }
    assert_eq!(seen.len(), 25);
    assert!(seen.windows(2).all(|w| w[0] < w[1]));
    ts.server.finalize();
}

#[test]
fn list_keyvals_and_databases() {
    let ts = setup(NetworkModel::default());
    let client = YokanClient::new(ts.fabric.endpoint("client"));
    let t = DbTarget::new(ts.server.address(), 0, "events");
    client.put(&t, b"p1", b"v1").unwrap();
    let kvs = client.list_keyvals(&t, b"", b"p", 0).unwrap();
    assert_eq!(kvs, vec![(b"p1".to_vec(), b"v1".to_vec())]);
    let dbs = client.list_databases(&ts.server.address(), 0).unwrap();
    assert_eq!(dbs, vec!["events".to_string(), "products".to_string()]);
    ts.server.finalize();
}

#[test]
fn works_with_lsm_backend_and_persists() {
    let dir = std::env::temp_dir().join(format!("yokan-e2e-lsm-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let fabric = Fabric::new(NetworkModel::default());
        let server =
            MargoInstance::new(fabric.endpoint("server"), Runtime::simple(2), "default").unwrap();
        let svc = YokanService::register(&server);
        svc.add_provider(&server, 0, "default").unwrap();
        svc.add_database(0, "events", Arc::new(LsmBackend::open(&dir).unwrap()));
        let client = YokanClient::new(fabric.endpoint("client"));
        let t = DbTarget::new(server.address(), 0, "events");
        for i in 0..200u32 {
            client
                .put(&t, format!("k{i:05}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        server.finalize();
    }
    // Reopen the backend directly: the data survived the service shutdown.
    let backend = LsmBackend::open(&dir).unwrap();
    use yokan::Backend;
    assert_eq!(backend.count().unwrap(), 200);
    assert_eq!(
        backend.get(b"k00042").unwrap(),
        Some(42u32.to_le_bytes().to_vec())
    );
    drop(backend);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_hammer_one_provider() {
    let ts = setup(NetworkModel::default());
    let addr = ts.server.address();
    let mut threads = Vec::new();
    for c in 0..4u32 {
        let fabric = ts.fabric.clone();
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let client = YokanClient::new(fabric.endpoint(&format!("client{c}")));
            let t = DbTarget::new(addr, 0, "events");
            for i in 0..100u32 {
                let key = format!("c{c}-k{i}");
                client.put(&t, key.as_bytes(), &i.to_le_bytes()).unwrap();
            }
            for i in 0..100u32 {
                let key = format!("c{c}-k{i}");
                assert_eq!(
                    client.get(&t, key.as_bytes()).unwrap(),
                    Some(i.to_le_bytes().to_vec())
                );
            }
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    let client = YokanClient::new(ts.fabric.endpoint("verifier"));
    let t = DbTarget::new(ts.server.address(), 0, "events");
    assert_eq!(client.count(&t).unwrap(), 400);
    drop(ts.svc);
    ts.server.finalize();
}

#[test]
fn latency_model_applies_to_yokan_calls() {
    let ts = setup(NetworkModel {
        latency: std::time::Duration::from_millis(5),
        ..Default::default()
    });
    let client = YokanClient::new(ts.fabric.endpoint("client"));
    let t = DbTarget::new(ts.server.address(), 0, "events");
    let t0 = std::time::Instant::now();
    client.put(&t, b"k", b"v").unwrap();
    assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
    ts.server.finalize();
    ts.fabric.stop();
}

#[test]
fn erase_multi_removes_batch() {
    let ts = setup(NetworkModel::default());
    let client = YokanClient::new(ts.fabric.endpoint("client"));
    let t = DbTarget::new(ts.server.address(), 0, "events");
    let keys: Vec<Vec<u8>> = (0..20u8).map(|i| vec![b'e', i]).collect();
    for k in &keys {
        client.put(&t, k, b"x").unwrap();
    }
    // Erase even keys plus one that never existed (idempotent).
    let mut to_erase: Vec<Vec<u8>> = keys.iter().step_by(2).cloned().collect();
    to_erase.push(b"ghost".to_vec());
    client.erase_multi(&t, &to_erase).unwrap();
    assert_eq!(client.count(&t).unwrap(), 10);
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(client.exists(&t, k).unwrap(), i % 2 == 1);
    }
    ts.server.finalize();
}

#[test]
fn exists_multi_and_large_get_multi_fan_out() {
    let ts = setup(NetworkModel::default());
    let client = YokanClient::new(ts.fabric.endpoint("client"));
    let t = DbTarget::new(ts.server.address(), 0, "events");
    // 100 keys is well above the server's fan-out threshold, so these
    // batches exercise the pool-parallel read path end to end.
    let mut pairs = Vec::new();
    for i in 0..100u32 {
        let k = i.to_be_bytes().to_vec();
        pairs.push((k, vec![i as u8; 8]));
    }
    client.put_multi(&t, &pairs).unwrap();
    let mut keys: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.clone()).collect();
    keys.push(b"missing-1".to_vec());
    keys.push(b"missing-2".to_vec());
    let got = client.get_multi(&t, &keys).unwrap();
    assert_eq!(got.len(), 102);
    for (i, v) in got.iter().take(100).enumerate() {
        assert_eq!(v.as_deref(), Some(&[i as u8; 8][..]), "key {i}");
    }
    assert_eq!(got[100], None);
    assert_eq!(got[101], None);
    let found = client.exists_multi(&t, &keys).unwrap();
    assert_eq!(found.len(), 102);
    assert!(found[..100].iter().all(|&e| e));
    assert!(!found[100] && !found[101]);
    // Small batches stay on the direct path; results must be identical.
    let small = client.exists_multi(&t, &keys[98..102]).unwrap();
    assert_eq!(small, vec![true, true, false, false]);
    ts.server.finalize();
}

#[test]
fn put_if_absent_is_atomic_under_contention() {
    let ts = setup(NetworkModel::default());
    let addr = ts.server.address();
    // Many clients race to register the same key with distinct values;
    // exactly one value must win and every client must learn the winner.
    let winners: Vec<Option<Vec<u8>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8u8)
            .map(|c| {
                let fabric = ts.fabric.clone();
                let addr = addr.clone();
                scope.spawn(move || {
                    let client = YokanClient::new(fabric.endpoint(&format!("pia-{c}")));
                    let t = DbTarget::new(addr, 0, "events");
                    client.put_if_absent(&t, b"contended", &[c]).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let client = YokanClient::new(ts.fabric.endpoint("pia-check"));
    let t = DbTarget::new(ts.server.address(), 0, "events");
    let stored = client.get(&t, b"contended").unwrap().unwrap();
    // Exactly one caller inserted (saw None); all others saw the winner.
    let inserted = winners.iter().filter(|w| w.is_none()).count();
    assert_eq!(inserted, 1, "winners: {winners:?}");
    for w in winners.iter().flatten() {
        assert_eq!(w, &stored);
    }
    ts.server.finalize();
}
