//! Property test: an R=2 replica chain behaves exactly like a single
//! in-memory map under arbitrary mutation sequences — including a head
//! kill at an arbitrary point in the sequence, after which the routed
//! client fails over to the promoted backup and keeps going.

use argos::Runtime;
use margo::MargoInstance;
use mercurio::local::Fabric;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use yokan::{DbTarget, ForwardParams, MemBackend, RetryPolicy, YokanClient, YokanService};

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    PutMulti(Vec<(Vec<u8>, Vec<u8>)>),
    Erase(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    (0u8..32).prop_map(|i| vec![b'k', i])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => proptest::collection::vec(
            (key_strategy(), proptest::collection::vec(any::<u8>(), 0..32)), 1..6
        ).prop_map(Op::PutMulti),
        1 => key_strategy().prop_map(Op::Erase),
    ]
}

/// Two single-provider nodes on one fabric, serving the same database name
/// as a two-member chain, cross-wired for chain forwarding.
struct ChainRig {
    #[allow(dead_code)]
    fabric: Fabric,
    nodes: Vec<Option<(MargoInstance, YokanService)>>,
    chain: Vec<DbTarget>,
    client: YokanClient,
    raw: YokanClient,
}

fn chain_rig() -> ChainRig {
    let fabric = Fabric::new(Default::default());
    let mut nodes = Vec::new();
    let mut targets = Vec::new();
    for i in 0..2 {
        let server = MargoInstance::new(
            fabric.endpoint(&format!("n{i}")),
            Runtime::simple(1),
            "default",
        )
        .expect("margo instance");
        let svc = YokanService::register(&server);
        svc.add_provider(&server, 0, "default").unwrap();
        svc.add_database(0, "db", Arc::new(MemBackend::new()));
        // Keep post-kill forwards cheap: one short attempt, then a long
        // suspension of the dead hop (degraded acks, counted).
        svc.set_forward_params(ForwardParams {
            timeout: Duration::from_millis(25),
            attempts: 1,
            suspend: Duration::from_secs(10),
        });
        targets.push(DbTarget::new(server.address(), 0, "db"));
        nodes.push(Some((server, svc)));
    }
    let chain = yokan::build_chains(&targets, 2)
        .pop()
        .expect("one chain of two");
    assert_eq!(chain.len(), 2, "both copies must fuse into one chain");
    // Circular successor routes, exactly as bedrock::wire_replication
    // installs them: each member forwards to the other.
    for member in &chain {
        let (_, svc) = nodes
            .iter()
            .flatten()
            .find(|(s, _)| s.address() == member.addr)
            .expect("member is a local node");
        let succ: Vec<DbTarget> = chain
            .iter()
            .filter(|t| t.addr != member.addr)
            .cloned()
            .collect();
        svc.set_forward_routes(member.provider_id, &member.db, &succ);
    }
    let policy = RetryPolicy {
        max_attempts: 3,
        rpc_timeout: Duration::from_millis(50),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        jitter_seed: 1,
    };
    let client = YokanClient::new(fabric.endpoint("client")).with_retry(policy);
    client.install_replica_routes(std::slice::from_ref(&chain));
    let raw = YokanClient::new(fabric.endpoint("raw"));
    ChainRig {
        fabric,
        nodes,
        chain,
        client,
        raw,
    }
}

impl ChainRig {
    /// Kill the node serving `target` (drop its Margo instance); later
    /// RPCs to it fail with a dead-node error.
    fn kill(&mut self, target: &DbTarget) {
        let slot = self
            .nodes
            .iter_mut()
            .find(|n| n.as_ref().is_some_and(|(s, _)| s.address() == target.addr))
            .expect("target node is live");
        let (server, _) = slot.take().expect("not yet killed");
        server.finalize();
    }

    fn shutdown(mut self) {
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            node.0.finalize();
        }
    }
}

fn apply(client: &YokanClient, t: &DbTarget, model: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &Op) {
    match op {
        Op::Put(k, v) => {
            client.put(t, k, v).unwrap();
            model.insert(k.clone(), v.clone());
        }
        Op::PutMulti(pairs) => {
            client.put_multi(t, pairs).unwrap();
            for (k, v) in pairs {
                model.insert(k.clone(), v.clone());
            }
        }
        Op::Erase(k) => {
            client.erase(t, k).unwrap();
            model.remove(k);
        }
    }
}

fn listed(client: &YokanClient, t: &DbTarget) -> Vec<(Vec<u8>, Vec<u8>)> {
    client.list_keyvals(t, &[], &[], 0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Random put/put_multi/erase against an R=2 chain, with the acting
    /// head killed after a random prefix of the sequence. Invariants:
    /// pre-kill both replicas converge to the oracle (acks are chain-wide);
    /// post-kill the routed client fails over transparently and the
    /// surviving replica still equals the oracle at the end.
    #[test]
    fn replicated_chain_matches_btreemap_across_failover(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        kill_frac in 0.0f64..1.0,
    ) {
        let mut rig = chain_rig();
        let head = rig.chain[0].clone();
        let tail = rig.chain[1].clone();
        let kill_at = ((ops.len() as f64) * kill_frac) as usize;

        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops[..kill_at] {
            apply(&rig.client, &head, &mut model, op);
        }
        // Every acked mutation is on both replicas before the kill.
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(&listed(&rig.raw, &head), &expected);
        prop_assert_eq!(&listed(&rig.raw, &tail), &expected);

        rig.kill(&head);
        for op in &ops[kill_at..] {
            apply(&rig.client, &head, &mut model, op);
        }

        // The surviving replica agrees with the oracle, read raw and routed.
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(&listed(&rig.raw, &tail), &expected);
        prop_assert_eq!(&listed(&rig.client, &head), &expected);
        for i in 0u8..32 {
            let k = vec![b'k', i];
            prop_assert_eq!(rig.client.get(&head, &k).unwrap(), model.get(&k).cloned());
        }

        // Failover bookkeeping: any post-kill mutation must have failed
        // over exactly once (the chain cursor sticks to the promoted head).
        let stats = rig.client.retry_stats();
        if kill_at < ops.len() {
            prop_assert_eq!(stats.failovers, 1);
        }
        prop_assert_eq!(stats.gave_up, 0);
        rig.shutdown();
    }
}

/// Deterministic pin for replay suppression: the head stalls between its
/// local apply and the chain forward, the client times out and fails over
/// to the backup with the *identical stamped payload*, and the head's late
/// forward — carrying the same `(client, seq)` — must then be absorbed by
/// the backup's dedup window rather than re-applied.
#[test]
fn promoted_backup_suppresses_replayed_mutations() {
    let rig = chain_rig();
    let head = rig.chain[0].clone();
    let tail = rig.chain[1].clone();
    let svc_of = |t: &DbTarget| {
        rig.nodes
            .iter()
            .flatten()
            .find(|(s, _)| s.address() == t.addr)
            .map(|(_, svc)| svc.clone())
            .expect("chain member is a local node")
    };
    let (head_svc, tail_svc) = (svc_of(&head), svc_of(&tail));

    // Hold the head's forward well past the client's whole retry budget.
    let delay = Duration::from_millis(400);
    head_svc.set_forward_delay(delay);
    let t0 = std::time::Instant::now();
    rig.client.put(&head, b"k", b"v1").unwrap();
    // The put acked *before* the head's forward could have fired — so it
    // was acked by the promoted backup, via the client's timeout failover.
    assert!(
        t0.elapsed() < delay,
        "client never failed over; the ack came from the stalled head"
    );
    let stats = rig.client.retry_stats();
    assert_eq!(stats.failovers, 1, "put did not fail over to the backup");
    assert_eq!(
        listed(&rig.raw, &tail),
        vec![(b"k".to_vec(), b"v1".to_vec())],
        "promoted backup did not apply the replayed payload"
    );

    // Let the head wake up and forward the original mutation: the backup
    // already holds the stamp, so the late copy is a suppressed replay.
    std::thread::sleep(delay);
    assert!(
        tail_svc.deduped_replays() >= 1,
        "late forward was not absorbed by the promoted backup's dedup window"
    );
    assert_eq!(
        listed(&rig.raw, &tail),
        vec![(b"k".to_vec(), b"v1".to_vec())],
        "late forward re-applied on the backup"
    );
    head_svc.set_forward_delay(Duration::ZERO);
    // Subsequent mutations stick to the promoted head (no new failovers).
    // Its forward back to the old head stays suspended from the earlier
    // stall, so the ack is degraded — and counted as such.
    rig.client.put(&head, b"k2", b"v2").unwrap();
    assert_eq!(rig.client.retry_stats().failovers, 1);
    assert_eq!(rig.raw.get(&tail, b"k2").unwrap(), Some(b"v2".to_vec()));
    assert!(tail_svc.forward_stats().forward_degraded >= 1);
    rig.shutdown();
}
