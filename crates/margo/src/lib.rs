//! `margo` — the glue combining [`argos`] tasking with [`mercurio`] RPC,
//! modeled after Mochi's Margo library.
//!
//! Margo's job in the Mochi stack is small but central: every incoming RPC
//! is pushed into the Argobots pool associated with the *provider* it
//! targets, so that the compute resources executing an RPC (an execution
//! stream) are decoupled from the data resources the RPC touches (a
//! database owned by the provider). HEPnOS relies on this to map its 16
//! Yokan providers to 16 dedicated execution streams per server node
//! (paper §IV-D).
//!
//! [`MargoInstance`] owns a mercurio endpoint and an argos runtime, installs
//! an executor that routes `(rpc_id, provider_id)` to the right pool, and
//! tears everything down in order on [`MargoInstance::finalize`].
//!
//! # Example
//!
//! ```
//! use margo::MargoInstance;
//! use mercurio::{local::Fabric, Endpoint, RpcId};
//! use argos::SchedulingDiscipline;
//! use bytes::Bytes;
//! use std::sync::Arc;
//!
//! let fabric = Fabric::new(Default::default());
//! let rt = argos::Runtime::builder()
//!     .pool("default", SchedulingDiscipline::Fifo)
//!     .pool("db", SchedulingDiscipline::Fifo)
//!     .xstream("es0", &["default", "db"])
//!     .build()
//!     .unwrap();
//! let server = MargoInstance::new(fabric.endpoint("server"), rt, "default").unwrap();
//! server.assign_provider_pool(1, "db").unwrap();
//! server.register_rpc(RpcId(10), Arc::new(|req: mercurio::Request| {
//!     Ok(req.payload)
//! }));
//!
//! let client = fabric.endpoint("client");
//! let out = client
//!     .call(&server.address(), RpcId(10), 1, Bytes::from_static(b"hi"))
//!     .unwrap();
//! assert_eq!(&out[..], b"hi");
//! server.finalize();
//! ```

#![warn(missing_docs)]

use argos::{Pool, Runtime};
use bytes::Bytes;
use mercurio::{
    Admission, AdmissionControl, Endpoint, PendingResponse, RpcError, RpcHandler, RpcId,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors raised while configuring a [`MargoInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MargoError {
    /// The named pool does not exist in the runtime.
    UnknownPool(String),
    /// A provider id was assigned twice.
    ProviderExists(u16),
}

impl fmt::Display for MargoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MargoError::UnknownPool(p) => write!(f, "unknown pool: {p}"),
            MargoError::ProviderExists(id) => write!(f, "provider {id} already assigned"),
        }
    }
}

impl std::error::Error for MargoError {}

struct Routes {
    by_provider: HashMap<u16, Pool>,
    default: Pool,
}

/// Overload-protection policy of a [`MargoInstance`] (see
/// [`MargoInstance::enable_admission`]).
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Bound on admitted-but-unfinished requests per provider; request
    /// number `bound + 1` is shed with [`RpcError::Busy`] instead of being
    /// queued.
    pub max_queued_per_provider: usize,
    /// Maximum time a request may wait in its pool before execution; a
    /// request starting later than this is shed instead of executed
    /// (deadline-aware shedding). `None` disables the check.
    pub max_queue_delay: Option<Duration>,
    /// Backoff hint carried in every [`RpcError::Busy`] this instance emits.
    pub retry_after_hint: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_queued_per_provider: 1024,
            max_queue_delay: None,
            retry_after_hint: Duration::from_millis(5),
        }
    }
}

/// Overload counters of a [`MargoInstance`] with admission control enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Requests admitted past the queue bound check.
    pub admitted: u64,
    /// Requests shed because their provider's admission queue was full.
    pub shed_queue_full: u64,
    /// Requests shed at the front of the pool because they queued past the
    /// configured delay bound.
    pub shed_deadline: u64,
    /// High-water mark of any single provider's admission-queue depth.
    pub queue_depth_hwm: u64,
}

impl OverloadStats {
    /// Total requests shed (queue-full + deadline).
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline
    }

    /// Fold another instance's counters into this one (counters add, the
    /// high-water mark takes the max).
    pub fn merge(&mut self, other: &OverloadStats) {
        self.admitted += other.admitted;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_deadline += other.shed_deadline;
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
    }
}

#[derive(Default)]
struct ProviderGate {
    inflight: AtomicI64,
}

/// [`AdmissionControl`] implementation backing
/// [`MargoInstance::enable_admission`]: a bounded admission queue per
/// provider plus an optional queue-delay deadline.
struct MargoAdmission {
    cfg: AdmissionConfig,
    gates: RwLock<HashMap<u16, Arc<ProviderGate>>>,
    admitted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    queue_depth_hwm: AtomicU64,
}

impl MargoAdmission {
    fn new(cfg: AdmissionConfig) -> MargoAdmission {
        MargoAdmission {
            cfg,
            gates: RwLock::new(HashMap::new()),
            admitted: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            queue_depth_hwm: AtomicU64::new(0),
        }
    }

    fn gate(&self, provider_id: u16) -> Arc<ProviderGate> {
        if let Some(g) = self.gates.read().get(&provider_id) {
            return Arc::clone(g);
        }
        Arc::clone(self.gates.write().entry(provider_id).or_default())
    }

    fn snapshot(&self) -> OverloadStats {
        OverloadStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed),
        }
    }
}

impl AdmissionControl for MargoAdmission {
    fn admit(&self, _rpc_id: RpcId, provider_id: u16) -> Admission {
        let gate = self.gate(provider_id);
        let depth = gate.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        if depth as usize > self.cfg.max_queued_per_provider {
            gate.inflight.fetch_sub(1, Ordering::AcqRel);
            self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed {
                retry_after: self.cfg.retry_after_hint,
            };
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth_hwm
            .fetch_max(depth as u64, Ordering::Relaxed);
        Admission::Admit
    }

    fn begin(&self, _rpc_id: RpcId, _provider_id: u16, queued: Duration) -> Admission {
        if self.cfg.max_queue_delay.is_some_and(|max| queued > max) {
            self.shed_deadline.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed {
                retry_after: self.cfg.retry_after_hint,
            };
        }
        Admission::Admit
    }

    fn complete(&self, _rpc_id: RpcId, provider_id: u16) {
        let prev = self
            .gate(provider_id)
            .inflight
            .fetch_sub(1, Ordering::AcqRel);
        // Exactly-once accounting: a release without a matching admit means
        // a transport answered (or dropped) one request twice.
        debug_assert!(
            prev > 0,
            "admission slot of provider {provider_id} released twice"
        );
    }
}

/// Accumulated service time of one RPC id.
#[derive(Debug, Clone, Copy, Default)]
pub struct RpcTiming {
    /// Invocations handled.
    pub count: u64,
    /// Summed handler execution time.
    pub total: std::time::Duration,
    /// Worst single invocation.
    pub max: std::time::Duration,
}

impl RpcTiming {
    /// Mean handler time per invocation.
    pub fn mean(&self) -> std::time::Duration {
        if self.count == 0 {
            std::time::Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

type TimingTable = Arc<RwLock<HashMap<u16, RpcTiming>>>;

/// A Margo instance: one endpoint + one runtime + the routing table between
/// them.
pub struct MargoInstance {
    endpoint: Arc<dyn Endpoint>,
    runtime: Runtime,
    routes: Arc<RwLock<Routes>>,
    timings: TimingTable,
    admission: RwLock<Option<Arc<MargoAdmission>>>,
}

impl fmt::Debug for MargoInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MargoInstance")
            .field("address", &self.endpoint.address())
            .field("runtime", &self.runtime)
            .finish()
    }
}

impl MargoInstance {
    /// Wrap `endpoint` and `runtime`, dispatching RPCs of unassigned
    /// providers into `default_pool`.
    pub fn new(
        endpoint: Arc<dyn Endpoint>,
        runtime: Runtime,
        default_pool: &str,
    ) -> Result<MargoInstance, MargoError> {
        let default = runtime
            .pool(default_pool)
            .ok_or_else(|| MargoError::UnknownPool(default_pool.to_string()))?;
        let routes = Arc::new(RwLock::new(Routes {
            by_provider: HashMap::new(),
            default,
        }));
        let timings: TimingTable = Arc::new(RwLock::new(HashMap::new()));
        let r2 = Arc::clone(&routes);
        let t2 = Arc::clone(&timings);
        endpoint.set_executor(Arc::new(move |rpc_id, provider_id, job| {
            // Time every handler execution, keyed by RPC id — the per-RPC
            // breakdown SymbioMon-style monitoring exposes.
            let t3 = Arc::clone(&t2);
            let timed_job: Box<dyn FnOnce() + Send> = Box::new(move || {
                let start = std::time::Instant::now();
                job();
                let elapsed = start.elapsed();
                let mut table = t3.write();
                let entry = table.entry(rpc_id.0).or_default();
                entry.count += 1;
                entry.total += elapsed;
                entry.max = entry.max.max(elapsed);
            });
            let routes = r2.read();
            let pool = routes
                .by_provider
                .get(&provider_id)
                .unwrap_or(&routes.default);
            if pool.is_closed() {
                // Finalizing: run inline rather than panic on a closed pool;
                // the handler will observe shutdown state itself.
                drop(routes);
                timed_job();
            } else {
                pool.push(timed_job);
            }
        }));
        Ok(MargoInstance {
            endpoint,
            runtime,
            routes,
            timings,
            admission: RwLock::new(None),
        })
    }

    /// Turn on overload protection: bounded per-provider admission queues
    /// with deadline-aware shedding. Over-bound or overdue requests are
    /// answered [`RpcError::Busy`] (carrying
    /// [`AdmissionConfig::retry_after_hint`]) instead of queueing without
    /// bound. Replaces any previously installed policy.
    pub fn enable_admission(&self, cfg: AdmissionConfig) {
        let ctrl = Arc::new(MargoAdmission::new(cfg));
        self.endpoint.set_admission(Some(Arc::clone(&ctrl) as _));
        *self.admission.write() = Some(ctrl);
    }

    /// Overload counters; all-zero when admission control is disabled.
    pub fn overload_stats(&self) -> OverloadStats {
        self.admission
            .read()
            .as_ref()
            .map(|a| a.snapshot())
            .unwrap_or_default()
    }

    /// Route RPCs targeting `provider_id` into the named pool. This is the
    /// Bedrock `provider → pool` mapping.
    pub fn assign_provider_pool(&self, provider_id: u16, pool: &str) -> Result<(), MargoError> {
        let p = self
            .runtime
            .pool(pool)
            .ok_or_else(|| MargoError::UnknownPool(pool.to_string()))?;
        let mut routes = self.routes.write();
        if routes.by_provider.contains_key(&provider_id) {
            return Err(MargoError::ProviderExists(provider_id));
        }
        routes.by_provider.insert(provider_id, p);
        Ok(())
    }

    /// Register an RPC handler on the underlying endpoint.
    pub fn register_rpc(&self, id: RpcId, handler: Arc<dyn RpcHandler>) {
        self.endpoint.register(id, handler);
    }

    /// This instance's routable address.
    pub fn address(&self) -> String {
        self.endpoint.address()
    }

    /// The underlying endpoint (for calls and bulk operations).
    pub fn endpoint(&self) -> &Arc<dyn Endpoint> {
        &self.endpoint
    }

    /// The underlying runtime (for spawning background tasks).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Issue a blocking call (`margo_forward` analogue).
    pub fn forward(
        &self,
        target: &str,
        id: RpcId,
        provider_id: u16,
        payload: Bytes,
    ) -> Result<Bytes, RpcError> {
        self.endpoint.call(target, id, provider_id, payload)
    }

    /// Issue an asynchronous call (`margo_iforward` analogue).
    pub fn iforward(
        &self,
        target: &str,
        id: RpcId,
        provider_id: u16,
        payload: Bytes,
    ) -> PendingResponse {
        self.endpoint.call_async(target, id, provider_id, payload)
    }

    /// Shut down the endpoint, drain the pools, and join all xstreams.
    pub fn finalize(self) {
        self.endpoint.shutdown();
        self.runtime.shutdown();
    }

    /// A monitoring snapshot of this instance — network traffic and pool
    /// activity. The paper's ecosystem does this with the SymbioMon
    /// component [Ramesh et al., HiPC'21], which the authors credit for
    /// diagnosing the performance problems that led to HEPnOS's batching
    /// and parallel-event-processing optimizations (§V).
    pub fn stats(&self) -> InstanceStats {
        let mut pools = Vec::new();
        for name in self.runtime.pool_names() {
            if let Some(p) = self.runtime.pool(&name) {
                pools.push((name, p.stats()));
            }
        }
        InstanceStats {
            endpoint: self.endpoint.stats(),
            pools,
            overload: self.overload_stats(),
        }
    }

    /// Per-RPC-id service timings (count, total, max), sorted by id.
    pub fn rpc_timings(&self) -> Vec<(RpcId, RpcTiming)> {
        let mut v: Vec<(RpcId, RpcTiming)> = self
            .timings
            .read()
            .iter()
            .map(|(&id, &t)| (RpcId(id), t))
            .collect();
        v.sort_by_key(|(id, _)| id.0);
        v
    }
}

/// Monitoring snapshot of a [`MargoInstance`].
#[derive(Debug, Clone)]
pub struct InstanceStats {
    /// Network-level counters of the underlying endpoint.
    pub endpoint: mercurio::EndpointStats,
    /// `(pool name, counters)` for every pool, sorted by name.
    pub pools: Vec<(String, argos::PoolStats)>,
    /// Overload counters (all-zero when admission control is disabled).
    pub overload: OverloadStats,
}

impl InstanceStats {
    /// Total tasks executed across all pools.
    pub fn total_tasks(&self) -> u64 {
        self.pools.iter().map(|(_, s)| s.popped).sum()
    }

    /// The busiest pool by executed tasks, if any.
    pub fn busiest_pool(&self) -> Option<&str> {
        self.pools
            .iter()
            .max_by_key(|(_, s)| s.popped)
            .map(|(n, _)| n.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argos::SchedulingDiscipline;
    use mercurio::local::Fabric;
    use mercurio::Request;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn rt_two_pools() -> Runtime {
        Runtime::builder()
            .pool("default", SchedulingDiscipline::Fifo)
            .pool("db", SchedulingDiscipline::Fifo)
            .xstream("es0", &["default"])
            .xstream("es1", &["db"])
            .build()
            .unwrap()
    }

    #[test]
    fn dispatches_into_provider_pool() {
        let fabric = Fabric::new(Default::default());
        let rt = rt_two_pools();
        let db_pool = rt.pool("db").unwrap();
        let inst = MargoInstance::new(fabric.endpoint("s"), rt, "default").unwrap();
        inst.assign_provider_pool(7, "db").unwrap();
        inst.register_rpc(
            RpcId(1),
            Arc::new(|_req: Request| Ok(Bytes::from_static(b"done"))),
        );
        let client = fabric.endpoint("c");
        let out = client
            .call(&inst.address(), RpcId(1), 7, Bytes::new())
            .unwrap();
        assert_eq!(&out[..], b"done");
        // The db pool saw the work; the default pool did not.
        assert_eq!(db_pool.stats().popped, 1);
        inst.finalize();
    }

    #[test]
    fn unassigned_provider_uses_default_pool() {
        let fabric = Fabric::new(Default::default());
        let rt = rt_two_pools();
        let default_pool = rt.pool("default").unwrap();
        let inst = MargoInstance::new(fabric.endpoint("s"), rt, "default").unwrap();
        inst.register_rpc(RpcId(1), Arc::new(|req: Request| Ok(req.payload)));
        let client = fabric.endpoint("c");
        client
            .call(&inst.address(), RpcId(1), 99, Bytes::new())
            .unwrap();
        assert_eq!(default_pool.stats().popped, 1);
        inst.finalize();
    }

    #[test]
    fn rejects_unknown_pool() {
        let fabric = Fabric::new(Default::default());
        let rt = rt_two_pools();
        assert_eq!(
            MargoInstance::new(fabric.endpoint("x"), rt.clone(), "nope").unwrap_err(),
            MargoError::UnknownPool("nope".into())
        );
        let inst = MargoInstance::new(fabric.endpoint("s"), rt, "default").unwrap();
        assert_eq!(
            inst.assign_provider_pool(1, "missing").unwrap_err(),
            MargoError::UnknownPool("missing".into())
        );
        inst.finalize();
    }

    #[test]
    fn rejects_duplicate_provider() {
        let fabric = Fabric::new(Default::default());
        let inst = MargoInstance::new(fabric.endpoint("s"), rt_two_pools(), "default").unwrap();
        inst.assign_provider_pool(1, "db").unwrap();
        assert_eq!(
            inst.assign_provider_pool(1, "db").unwrap_err(),
            MargoError::ProviderExists(1)
        );
        inst.finalize();
    }

    #[test]
    fn concurrent_rpcs_across_providers() {
        let fabric = Fabric::new(Default::default());
        let rt = Runtime::builder()
            .pool("default", SchedulingDiscipline::Fifo)
            .pool("p0", SchedulingDiscipline::Fifo)
            .pool("p1", SchedulingDiscipline::Fifo)
            .xstream("e0", &["p0", "default"])
            .xstream("e1", &["p1", "default"])
            .build()
            .unwrap();
        let inst = MargoInstance::new(fabric.endpoint("s"), rt, "default").unwrap();
        inst.assign_provider_pool(0, "p0").unwrap();
        inst.assign_provider_pool(1, "p1").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        inst.register_rpc(
            RpcId(1),
            Arc::new(move |_req: Request| {
                c2.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            }),
        );
        let client = fabric.endpoint("c");
        let pending: Vec<_> = (0..40)
            .map(|i| client.call_async(&inst.address(), RpcId(1), (i % 2) as u16, Bytes::new()))
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        assert_eq!(count.load(Ordering::SeqCst), 40);
        inst.finalize();
    }

    #[test]
    fn admission_queue_bound_sheds_excess() {
        let fabric = Fabric::new(Default::default());
        let inst = MargoInstance::new(fabric.endpoint("s"), rt_two_pools(), "default").unwrap();
        inst.enable_admission(AdmissionConfig {
            max_queued_per_provider: 1,
            retry_after_hint: Duration::from_millis(4),
            ..Default::default()
        });
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let r2 = Arc::clone(&release);
        inst.register_rpc(
            RpcId(1),
            Arc::new(move |_req: Request| {
                while !r2.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(100));
                }
                Ok(Bytes::new())
            }),
        );
        let client = fabric.endpoint("c");
        // First call occupies the single admission slot (the handler holds
        // it until released)...
        let first = client.call_async(&inst.address(), RpcId(1), 0, Bytes::new());
        // ...so the second is shed at the door with the configured hint.
        let err = client
            .call(&inst.address(), RpcId(1), 0, Bytes::new())
            .unwrap_err();
        assert_eq!(
            err,
            mercurio::RpcError::Busy {
                retry_after: Duration::from_millis(4)
            }
        );
        release.store(true, Ordering::SeqCst);
        first.wait().unwrap();
        let stats = inst.overload_stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.shed_queue_full, 1);
        assert_eq!(stats.shed(), 1);
        assert_eq!(stats.queue_depth_hwm, 1);
        // The slot was released: the next call is admitted again.
        client
            .call(&inst.address(), RpcId(1), 0, Bytes::new())
            .unwrap();
        assert_eq!(inst.overload_stats().admitted, 2);
        assert_eq!(inst.stats().overload.shed(), 1);
        inst.finalize();
    }

    #[test]
    fn admission_deadline_sheds_stale_requests() {
        let fabric = Fabric::new(Default::default());
        let inst = MargoInstance::new(fabric.endpoint("s"), rt_two_pools(), "default").unwrap();
        inst.enable_admission(AdmissionConfig {
            max_queue_delay: Some(Duration::ZERO),
            retry_after_hint: Duration::from_millis(2),
            ..Default::default()
        });
        inst.register_rpc(RpcId(1), Arc::new(|req: Request| Ok(req.payload)));
        let client = fabric.endpoint("c");
        // Any measurable queue delay exceeds a zero deadline: the request is
        // admitted but shed at the pool front, through the normal reply path.
        let err = client
            .call(&inst.address(), RpcId(1), 0, Bytes::new())
            .unwrap_err();
        assert_eq!(
            err,
            mercurio::RpcError::Busy {
                retry_after: Duration::from_millis(2)
            }
        );
        let stats = inst.overload_stats();
        assert_eq!(stats.shed_deadline, 1);
        assert_eq!(stats.admitted, 1);
        inst.finalize();
    }

    #[test]
    fn rpc_timings_record_per_id_service_time() {
        let fabric = Fabric::new(Default::default());
        let inst = MargoInstance::new(fabric.endpoint("s"), Runtime::simple(1), "default").unwrap();
        inst.register_rpc(RpcId(1), Arc::new(|req: Request| Ok(req.payload)));
        inst.register_rpc(
            RpcId(2),
            Arc::new(|_req: Request| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                Ok(Bytes::new())
            }),
        );
        let client = fabric.endpoint("c");
        for _ in 0..3 {
            client
                .call(&inst.address(), RpcId(1), 0, Bytes::new())
                .unwrap();
        }
        client
            .call(&inst.address(), RpcId(2), 0, Bytes::new())
            .unwrap();
        // Timing entries are written after the response is delivered; give
        // the pool thread a moment to finish the bookkeeping.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while std::time::Instant::now() < deadline {
            let t = inst.rpc_timings();
            if t.len() == 2 && t[0].1.count == 3 {
                break;
            }
            std::thread::yield_now();
        }
        let timings = inst.rpc_timings();
        assert_eq!(timings.len(), 2);
        let (id1, t1) = timings[0];
        let (id2, t2) = timings[1];
        assert_eq!((id1, id2), (RpcId(1), RpcId(2)));
        assert_eq!(t1.count, 3);
        assert_eq!(t2.count, 1);
        assert!(t2.mean() >= std::time::Duration::from_millis(5));
        assert!(t2.max >= t2.mean());
        inst.finalize();
    }

    #[test]
    fn stats_expose_traffic_and_pool_activity() {
        let fabric = Fabric::new(Default::default());
        let rt = rt_two_pools();
        let inst = MargoInstance::new(fabric.endpoint("s"), rt, "default").unwrap();
        inst.assign_provider_pool(1, "db").unwrap();
        inst.register_rpc(RpcId(1), Arc::new(|req: Request| Ok(req.payload)));
        let client = fabric.endpoint("c");
        for _ in 0..5 {
            client
                .call(&inst.address(), RpcId(1), 1, Bytes::from_static(b"x"))
                .unwrap();
        }
        let stats = inst.stats();
        assert_eq!(stats.endpoint.requests_received, 5);
        assert_eq!(stats.total_tasks(), 5);
        assert_eq!(stats.busiest_pool(), Some("db"));
        inst.finalize();
    }

    #[test]
    fn forward_and_iforward() {
        let fabric = Fabric::new(Default::default());
        let s = MargoInstance::new(fabric.endpoint("s"), Runtime::simple(1), "default").unwrap();
        s.register_rpc(RpcId(1), Arc::new(|req: Request| Ok(req.payload)));
        let c = MargoInstance::new(fabric.endpoint("c"), Runtime::simple(1), "default").unwrap();
        let out = c
            .forward(&s.address(), RpcId(1), 0, Bytes::from_static(b"a"))
            .unwrap();
        assert_eq!(&out[..], b"a");
        let p = c.iforward(&s.address(), RpcId(1), 0, Bytes::from_static(b"b"));
        assert_eq!(&p.wait().unwrap()[..], b"b");
        c.finalize();
        s.finalize();
    }
}
