//! Cross-model tests: the simulated workflows must reproduce the paper's
//! qualitative claims (Fig. 2 and Fig. 3).

use cluster::{
    Backend, CostModel, DatasetSpec, FileWorkflowModel, HepnosWorkflowModel, ThetaMachine,
};

fn file_model(n_nodes: usize, d: DatasetSpec) -> FileWorkflowModel {
    FileWorkflowModel {
        n_nodes,
        machine: ThetaMachine::default(),
        dataset: d,
        costs: CostModel::default(),
    }
}

fn hepnos_model(n_nodes: usize, backend: Backend, d: DatasetSpec) -> HepnosWorkflowModel {
    HepnosWorkflowModel {
        n_nodes,
        machine: ThetaMachine::default(),
        dataset: d,
        costs: CostModel::default(),
        backend,
    }
}

/// Fig. 2, headline claim: "The performance of the HEPnOS based workflow is
/// superior across all the different number of nodes used."
#[test]
fn fig2_hepnos_beats_file_based_at_every_node_count() {
    let d = DatasetSpec::nova_replicated(4);
    for n in [16, 32, 64, 128, 256] {
        let file = file_model(n, d).simulate().throughput;
        let mem = hepnos_model(n, Backend::Memory, d).simulate().throughput;
        let lsm = hepnos_model(n, Backend::Lsm, d).simulate().throughput;
        assert!(
            mem > file,
            "at {n} nodes: hepnos-mem {mem:.0} <= file {file:.0}"
        );
        assert!(
            lsm > file,
            "at {n} nodes: hepnos-lsm {lsm:.0} <= file {file:.0}"
        );
    }
}

/// Fig. 2: in-memory reaches ~85% strong-scaling efficiency at 128 nodes.
#[test]
fn fig2_memory_backend_strong_scaling_efficiency() {
    let d = DatasetSpec::nova_replicated(4);
    let t16 = hepnos_model(16, Backend::Memory, d).simulate().throughput;
    let t128 = hepnos_model(128, Backend::Memory, d).simulate().throughput;
    let eff = t128 / (t16 * 8.0);
    assert!(
        (0.78..0.95).contains(&eff),
        "strong-scaling efficiency at 128 nodes: {eff:.2} (paper: ~0.85)"
    );
}

/// Fig. 2: the backends are comparable up to 32 nodes; in-memory is up to
/// ~2x faster at the highest node counts.
#[test]
fn fig2_backend_gap_grows_with_scale() {
    let d = DatasetSpec::nova_replicated(4);
    for n in [16, 32] {
        let mem = hepnos_model(n, Backend::Memory, d).simulate().throughput;
        let lsm = hepnos_model(n, Backend::Lsm, d).simulate().throughput;
        assert!(mem / lsm < 1.25, "gap at {n} nodes: {:.2}", mem / lsm);
    }
    let mem = hepnos_model(256, Backend::Memory, d).simulate().throughput;
    let lsm = hepnos_model(256, Backend::Lsm, d).simulate().throughput;
    assert!(
        (1.5..2.6).contains(&(mem / lsm)),
        "gap at 256 nodes: {:.2} (paper: up to ~2x)",
        mem / lsm
    );
}

/// Fig. 2: the file-based workflow scales poorly past 64 nodes, where cores
/// outnumber the 7716 files.
#[test]
fn fig2_file_based_saturates_when_cores_exceed_files() {
    let d = DatasetSpec::nova_replicated(4);
    let t64 = file_model(64, d).simulate().throughput;
    let t256 = file_model(256, d).simulate().throughput;
    assert!(
        t256 < t64 * 1.6,
        "file-based kept scaling: t64={t64:.0}, t256={t256:.0}"
    );
    // Meanwhile HEPnOS keeps gaining over the same range.
    let h64 = hepnos_model(64, Backend::Memory, d).simulate().throughput;
    let h256 = hepnos_model(256, Backend::Memory, d).simulate().throughput;
    assert!(h256 > h64 * 2.0, "hepnos stalled: {h64:.0} -> {h256:.0}");
}

/// Fig. 3 at 128 nodes: the file-based workflow is especially poor on the
/// smaller datasets (24% of cores busy at 1929 files), while HEPnOS is much
/// less sensitive to dataset size.
#[test]
fn fig3_dataset_size_sensitivity() {
    let sizes = [1u64, 2, 4];
    let file: Vec<f64> = sizes
        .iter()
        .map(|&k| {
            file_model(128, DatasetSpec::nova_replicated(k))
                .simulate()
                .throughput
        })
        .collect();
    let hepnos: Vec<f64> = sizes
        .iter()
        .map(|&k| {
            hepnos_model(128, Backend::Memory, DatasetSpec::nova_replicated(k))
                .simulate()
                .throughput
        })
        .collect();
    // HEPnOS wins at every size.
    for (f, h) in file.iter().zip(&hepnos) {
        assert!(h > f);
    }
    // File-based throughput varies much more strongly with dataset size
    // than HEPnOS's does.
    let file_spread = file[2] / file[0];
    let hepnos_spread = hepnos[2] / hepnos[0];
    assert!(
        file_spread > hepnos_spread * 1.3,
        "file spread {file_spread:.2} vs hepnos spread {hepnos_spread:.2}"
    );
    // The 24%-cores-busy observation for the smallest dataset.
    let busy = file_model(128, DatasetSpec::nova_base())
        .simulate()
        .cores_busy_fraction;
    assert!((0.20..0.28).contains(&busy), "busy {busy:.2}");
}
