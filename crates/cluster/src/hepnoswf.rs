//! Virtual-time model of the HEPnOS workflow (§II-D, §IV-B, §IV-D).
//!
//! Topology: 1 of every `server_node_fraction` nodes runs HEPnOS servers;
//! the rest run worker ranks. Each server hosts `event_dbs_per_server`
//! event databases. Readers page events out of each database in load
//! batches (16384); each batch costs server-side service (backend
//! dependent) plus the transfer over the server's NIC; completed load
//! batches are split into dispatch batches (64) that any idle worker rank
//! may take — the distributed-queue load balancing of the
//! ParallelEventProcessor.
//!
//! The backend difference is carried by per-batch/per-event service costs
//! and by a fixed LSM warm-up term: as strong scaling shrinks the
//! compute time, these constant terms grow in relative weight, which is
//! what separates the RocksDB and in-memory curves past 32 nodes in
//! Fig. 2.

use crate::theta::{CostModel, DatasetSpec, ThetaMachine};
use crate::vt::{Timeline, WorkerHeap};

/// Storage backend of the simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// In-memory `std::map` backend.
    Memory,
    /// RocksDB-style LSM backend on node-local SSD.
    Lsm,
}

/// The HEPnOS workflow at a given allocation.
#[derive(Debug, Clone)]
pub struct HepnosWorkflowModel {
    /// Total allocated nodes (servers + clients).
    pub n_nodes: usize,
    /// Machine shape.
    pub machine: ThetaMachine,
    /// Dataset to process.
    pub dataset: DatasetSpec,
    /// Cost parameters.
    pub costs: CostModel,
    /// Storage backend.
    pub backend: Backend,
}

/// Outcome of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct HepnosWorkflowResult {
    /// Start-to-last-finish duration (seconds, virtual).
    pub makespan: f64,
    /// Slices per second over the makespan.
    pub throughput: f64,
    /// When the last load batch left the servers.
    pub delivery_finish: f64,
    /// Per-worker mean busy fraction.
    pub worker_utilization: f64,
    /// Number of server nodes in the topology.
    pub n_servers: usize,
    /// Number of worker ranks.
    pub n_workers: usize,
}

impl HepnosWorkflowModel {
    /// Run the simulation (deterministic).
    pub fn simulate(&self) -> HepnosWorkflowResult {
        let m = &self.machine;
        let c = &self.costs;
        let n_servers = (self.n_nodes / m.server_node_fraction).max(1);
        let n_clients = self.n_nodes.saturating_sub(n_servers).max(1);
        let n_workers = n_clients * m.ranks_per_client_node;
        let n_dbs = n_servers * m.event_dbs_per_server;
        let slices_per_event = self.dataset.slices_per_event();
        let (per_event, per_batch, extra_startup) = match self.backend {
            Backend::Memory => (c.mem_service_per_event, c.mem_service_per_batch, 0.0),
            Backend::Lsm => (
                c.lsm_service_per_event,
                c.lsm_service_per_batch,
                c.lsm_startup,
            ),
        };
        let start = c.hepnos_startup + extra_startup;

        // ---- delivery: per-db sequential load batches, per-server NIC ----
        let events_per_db_base = self.dataset.n_events / n_dbs as u64;
        let remainder = self.dataset.n_events % n_dbs as u64;
        let mut nics: Vec<Timeline> = vec![Timeline::new(); n_servers];
        // (ready_time, n_events) for every dispatch batch, gathered across
        // all databases.
        let mut dispatch: Vec<(f64, u64)> = Vec::new();
        for db in 0..n_dbs {
            let server = db / m.event_dbs_per_server;
            let mut events_left = events_per_db_base + if (db as u64) < remainder { 1 } else { 0 };
            let mut t = start;
            while events_left > 0 {
                let n = events_left.min(c.load_batch);
                events_left -= n;
                // Server-side service for this batch (the reader has one
                // outstanding batch per database, so batches serialize).
                t += c.rpc_latency + per_batch + n as f64 * per_event;
                // Transfer shares the server's NIC with its sibling dbs.
                let bytes = n as f64 * c.bytes_per_event;
                t = nics[server].reserve(t, bytes / c.nic_bandwidth);
                // The batch's events become available as dispatch batches.
                let mut left = n;
                while left > 0 {
                    let d = left.min(c.dispatch_batch);
                    left -= d;
                    dispatch.push((t, d));
                }
            }
        }
        let delivery_finish = dispatch.iter().map(|&(t, _)| t).fold(0.0f64, f64::max);
        // ---- consumption: idle workers take the earliest-ready batch ----
        dispatch.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("times are not NaN"));
        let mut workers = WorkerHeap::new(n_workers);
        let mut busy_total = 0.0f64;
        for (ready, n_events) in dispatch {
            let (t_w, id) = workers.pop().expect("workers never exhausted");
            let begin = t_w.max(ready).max(start);
            let service = n_events as f64 * slices_per_event * c.slice_compute + c.rpc_latency;
            busy_total += service;
            workers.push(begin + service, id);
        }
        let makespan = workers.drain_max();
        HepnosWorkflowResult {
            makespan,
            throughput: if makespan > 0.0 {
                self.dataset.n_slices as f64 / makespan
            } else {
                0.0
            },
            delivery_finish,
            worker_utilization: if makespan > 0.0 {
                busy_total / (makespan * n_workers as f64)
            } else {
                1.0
            },
            n_servers,
            n_workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n_nodes: usize, backend: Backend, dataset: DatasetSpec) -> HepnosWorkflowModel {
        HepnosWorkflowModel {
            n_nodes,
            machine: ThetaMachine::default(),
            dataset,
            costs: CostModel::default(),
            backend,
        }
    }

    #[test]
    fn topology_matches_paper() {
        let r = model(128, Backend::Memory, DatasetSpec::nova_replicated(4)).simulate();
        assert_eq!(r.n_servers, 16); // 1 of every 8 nodes
        assert_eq!(r.n_workers, 112 * 64);
    }

    #[test]
    fn memory_backend_scales_strongly() {
        let d = DatasetSpec::nova_replicated(4);
        let t16 = model(16, Backend::Memory, d).simulate().throughput;
        let t128 = model(128, Backend::Memory, d).simulate().throughput;
        let efficiency = t128 / (t16 * 8.0);
        // The paper reports 85% strong-scaling efficiency at 128 nodes.
        assert!((0.70..1.0).contains(&efficiency), "efficiency {efficiency}");
    }

    #[test]
    fn lsm_close_at_small_scale_diverges_at_large() {
        let d = DatasetSpec::nova_replicated(4);
        let ratio_16 = model(16, Backend::Memory, d).simulate().throughput
            / model(16, Backend::Lsm, d).simulate().throughput;
        let ratio_256 = model(256, Backend::Memory, d).simulate().throughput
            / model(256, Backend::Lsm, d).simulate().throughput;
        assert!(
            ratio_16 < 1.25,
            "lsm should be close at 16 nodes: {ratio_16}"
        );
        assert!(
            (1.5..2.6).contains(&ratio_256),
            "memory should be ~2x at 256 nodes: {ratio_256}"
        );
        assert!(ratio_256 > ratio_16);
    }

    #[test]
    fn deterministic() {
        let d = DatasetSpec::nova_base();
        let a = model(64, Backend::Lsm, d).simulate();
        let b = model(64, Backend::Lsm, d).simulate();
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn delivery_and_compute_overlap() {
        let r = model(64, Backend::Memory, DatasetSpec::nova_replicated(4)).simulate();
        // The pipeline overlaps: total time is far less than delivery +
        // compute done serially, and delivery finishes before the end.
        assert!(r.delivery_finish <= r.makespan * 1.01);
        assert!(
            r.worker_utilization > 0.5,
            "utilization {}",
            r.worker_utilization
        );
    }

    #[test]
    fn minimum_topology_works() {
        // 2 nodes: 1 server (max'd), 1 client.
        let r = model(2, Backend::Memory, DatasetSpec::nova_base()).simulate();
        assert_eq!(r.n_servers, 1);
        assert!(r.throughput > 0.0);
    }
}
