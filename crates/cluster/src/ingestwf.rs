//! Virtual-time model of the ingestion step (HDF2HEPnOS's DataLoader,
//! paper §IV-B).
//!
//! Loader ranks pull files from a shared list; each file is opened and read
//! from the PFS, parsed, and its events shipped to the HEPnOS servers as
//! batched writes over the servers' NICs. The paper's §IV-B claim is that
//! ingestion is "the only step whose scalability is constrained by the
//! number of files": once loader ranks outnumber files, extra ranks idle,
//! while the event-granular steps after it keep scaling.

use crate::theta::{CostModel, DatasetSpec, ThetaMachine};
use crate::vt::{Timeline, WorkerHeap};

/// The ingestion workflow at a given allocation.
#[derive(Debug, Clone)]
pub struct IngestModel {
    /// Total allocated nodes (servers + loader clients).
    pub n_nodes: usize,
    /// Machine shape.
    pub machine: ThetaMachine,
    /// Dataset to ingest.
    pub dataset: DatasetSpec,
    /// Cost parameters.
    pub costs: CostModel,
}

/// Outcome of one simulated ingestion.
#[derive(Debug, Clone, Copy)]
pub struct IngestResult {
    /// Start-to-finish duration (seconds, virtual).
    pub makespan: f64,
    /// Events ingested per second.
    pub events_per_second: f64,
    /// Fraction of loader ranks that received at least one file.
    pub loaders_busy_fraction: f64,
}

impl IngestModel {
    /// Run the simulation (deterministic).
    pub fn simulate(&self) -> IngestResult {
        let m = &self.machine;
        let c = &self.costs;
        let n_servers = (self.n_nodes / m.server_node_fraction).max(1);
        let n_clients = self.n_nodes.saturating_sub(n_servers).max(1);
        let n_loaders = n_clients * m.ranks_per_client_node;
        let n_files = self.dataset.n_files as usize;
        let events_per_file = self.dataset.n_events as f64 / self.dataset.n_files as f64;
        let bytes_out_per_file = events_per_file * c.bytes_per_event;
        let mut meta = Timeline::new();
        let mut pfs = Timeline::new();
        let mut nics: Vec<Timeline> = vec![Timeline::new(); n_servers];
        let mut loaders = WorkerHeap::new(n_loaders);
        let mut busy = vec![false; n_loaders];
        for file in 0..n_files {
            let (mut t, id) = loaders.pop().expect("loaders never exhausted");
            busy[id] = true;
            // Read the file from the PFS.
            t = meta.reserve(t, c.pfs_metadata_service);
            t = pfs.reserve(
                t,
                self.dataset.bytes_per_file as f64 / c.pfs_aggregate_bandwidth,
            );
            // Parse it on the loader's core.
            t += self.dataset.bytes_per_file as f64 * c.file_parse_per_byte;
            // Ship the events to a server (files spread round-robin; batched
            // writes serialize on that server's NIC).
            let server = file % n_servers;
            t = nics[server].reserve(t, bytes_out_per_file / c.nic_bandwidth);
            loaders.push(t, id);
        }
        let busy_count = busy.iter().filter(|&&b| b).count();
        let makespan = loaders.drain_max();
        IngestResult {
            makespan,
            events_per_second: if makespan > 0.0 {
                self.dataset.n_events as f64 / makespan
            } else {
                0.0
            },
            loaders_busy_fraction: busy_count as f64 / n_loaders as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n_nodes: usize, d: DatasetSpec) -> IngestModel {
        IngestModel {
            n_nodes,
            machine: ThetaMachine::default(),
            dataset: d,
            costs: CostModel::default(),
        }
    }

    #[test]
    fn ingestion_is_constrained_by_file_count() {
        // 1929 files: at 16 nodes there are 896 loader ranks (all busy);
        // at 64 nodes there are 3584 ranks for 1929 files — extra ranks
        // idle and throughput stops improving proportionally.
        let d = DatasetSpec::nova_base();
        let r16 = model(16, d).simulate();
        let r64 = model(64, d).simulate();
        let r256 = model(256, d).simulate();
        assert!((r16.loaders_busy_fraction - 1.0).abs() < 1e-9);
        assert!(r64.loaders_busy_fraction < 0.6);
        assert!(r256.loaders_busy_fraction < 0.15);
        // Speedup 64 -> 256 collapses (4x nodes, < 1.5x gain).
        assert!(
            r256.events_per_second / r64.events_per_second < 1.5,
            "ingest kept scaling: {} -> {}",
            r64.events_per_second,
            r256.events_per_second
        );
    }

    #[test]
    fn more_files_restore_ingest_scaling() {
        let d4 = DatasetSpec::nova_replicated(4);
        let r64 = model(64, d4).simulate();
        let r16 = model(16, d4).simulate();
        assert!(r64.events_per_second > r16.events_per_second * 2.0);
    }

    #[test]
    fn deterministic() {
        let d = DatasetSpec::nova_base();
        assert_eq!(
            model(32, d).simulate().makespan,
            model(32, d).simulate().makespan
        );
    }
}
