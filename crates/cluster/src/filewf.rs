//! Virtual-time model of the traditional file-based workflow (§IV-A).
//!
//! Workers (one per core, as in the paper's Python-multiprocessing runs)
//! pull files from a shared list. Each file costs: one metadata operation
//! (serialized on the PFS metadata server), a data read (reserved on the
//! shared PFS bandwidth timeline), and per-slice selection compute on the
//! worker's core. The file is the atomic unit of work — the model's whole
//! point — so surplus cores simply never receive work.

use crate::theta::{CostModel, DatasetSpec, ThetaMachine};
use crate::vt::{Timeline, WorkerHeap};

/// The file-based workflow at a given allocation.
#[derive(Debug, Clone)]
pub struct FileWorkflowModel {
    /// Total allocated nodes (all run workers in this workflow).
    pub n_nodes: usize,
    /// Machine shape.
    pub machine: ThetaMachine,
    /// Dataset to process.
    pub dataset: DatasetSpec,
    /// Cost parameters.
    pub costs: CostModel,
}

/// Outcome of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct FileWorkflowResult {
    /// Start-to-last-finish duration (seconds, virtual).
    pub makespan: f64,
    /// Slices per second over the makespan.
    pub throughput: f64,
    /// Fraction of worker-cores that received at least one file.
    pub cores_busy_fraction: f64,
    /// Fraction of total core-time spent computing.
    pub utilization: f64,
}

impl FileWorkflowModel {
    /// Run the simulation (deterministic).
    pub fn simulate(&self) -> FileWorkflowResult {
        let n_workers = self.n_nodes * self.machine.cores_per_node;
        let n_files = self.dataset.n_files as usize;
        let slices_per_file = self.dataset.slices_per_file();
        let read_time = self.dataset.bytes_per_file as f64; // bytes, converted below
        let mut meta = Timeline::new();
        let mut pfs = Timeline::new();
        let mut workers = WorkerHeap::new(n_workers);
        let mut busy_workers = vec![false; n_workers];
        let mut compute_total = 0.0f64;
        for _file in 0..n_files {
            let (mut t, id) = workers.pop().expect("workers never exhausted");
            if !busy_workers[id] {
                // First file on this worker: pay the process startup
                // (loading the analysis executable and libraries).
                t += self.costs.grid_worker_startup;
                busy_workers[id] = true;
            }
            // Metadata: serialized on the metadata server.
            t = meta.reserve(t, self.costs.pfs_metadata_service);
            // Data: reserved on the shared bandwidth timeline.
            t = pfs.reserve(t, read_time / self.costs.pfs_aggregate_bandwidth);
            // Compute: parse/deserialize the whole file, then run the
            // selection over its slices — all on this worker's core.
            let compute = self.dataset.bytes_per_file as f64 * self.costs.file_parse_per_byte
                + slices_per_file * self.costs.slice_compute;
            t += compute;
            compute_total += compute;
            workers.push(t, id);
        }
        let busy = busy_workers.iter().filter(|&&b| b).count();
        let makespan = workers.drain_max();
        FileWorkflowResult {
            makespan,
            throughput: if makespan > 0.0 {
                self.dataset.n_slices as f64 / makespan
            } else {
                0.0
            },
            cores_busy_fraction: busy as f64 / n_workers as f64,
            utilization: if makespan > 0.0 {
                compute_total / (makespan * n_workers as f64)
            } else {
                1.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n_nodes: usize, dataset: DatasetSpec) -> FileWorkflowModel {
        FileWorkflowModel {
            n_nodes,
            machine: ThetaMachine::default(),
            dataset,
            costs: CostModel::default(),
        }
    }

    #[test]
    fn throughput_grows_until_cores_exceed_files() {
        let d = DatasetSpec::nova_replicated(4); // 7716 files
        let t16 = model(16, d).simulate().throughput;
        let t64 = model(64, d).simulate().throughput;
        let t128 = model(128, d).simulate().throughput;
        let t256 = model(256, d).simulate().throughput;
        assert!(t64 > t16 * 2.0, "t16={t16:.0} t64={t64:.0}");
        // Past 64 nodes (4096 cores) the 7716 files stop feeding new cores
        // well; 128 nodes = 8192 cores > 7716 files, so scaling collapses.
        let gain_128 = t128 / t64;
        let gain_256 = t256 / t128;
        assert!(gain_128 < 1.8, "gain to 128 nodes too good: {gain_128}");
        assert!(
            gain_256 < 1.15,
            "no files left to feed 256 nodes: {gain_256}"
        );
    }

    #[test]
    fn small_dataset_leaves_cores_idle() {
        // Fig. 3's observation: 1929 files on 128 nodes (8192 cores) keeps
        // only ~24% of cores busy.
        let r = model(128, DatasetSpec::nova_base()).simulate();
        assert!(
            (0.20..0.28).contains(&r.cores_busy_fraction),
            "busy fraction {}",
            r.cores_busy_fraction
        );
    }

    #[test]
    fn bigger_dataset_higher_throughput_at_fixed_nodes() {
        let t1 = model(128, DatasetSpec::nova_base()).simulate().throughput;
        let t4 = model(128, DatasetSpec::nova_replicated(4))
            .simulate()
            .throughput;
        assert!(t4 > t1 * 1.5, "t1={t1:.0} t4={t4:.0}");
    }

    #[test]
    fn deterministic() {
        let d = DatasetSpec::nova_base();
        let a = model(32, d).simulate();
        let b = model(32, d).simulate();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.throughput, b.throughput);
    }

    #[test]
    fn single_node_processes_everything() {
        let r = model(1, DatasetSpec::nova_base()).simulate();
        assert!(r.makespan > 0.0);
        assert!(r.cores_busy_fraction <= 1.0);
        assert!(r.utilization > 0.5); // 64 cores, 1929 files: well fed
    }
}
