//! Virtual-time primitives.
//!
//! Simulated time is `f64` seconds. A [`Timeline`] is a serially-shared
//! resource (a PFS data path, a database provider): requests reserve the
//! earliest slot at or after their arrival and advance the timeline by
//! their service time — the standard single-server FIFO queue in virtual
//! time. A [`WorkerHeap`] tracks many independent actors (cores, ranks) by
//! their next-free time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A serially-shared resource timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    next_free: f64,
    busy_total: f64,
}

impl Timeline {
    /// A fresh, idle timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Reserve `service` seconds at or after `arrival`; returns the
    /// completion time.
    pub fn reserve(&mut self, arrival: f64, service: f64) -> f64 {
        let start = self.next_free.max(arrival);
        self.next_free = start + service;
        self.busy_total += service;
        self.next_free
    }

    /// When the resource next becomes free.
    pub fn next_free(&self) -> f64 {
        self.next_free
    }

    /// Total busy time accumulated.
    pub fn busy_total(&self) -> f64 {
        self.busy_total
    }
}

/// Ordered wrapper for f64 times (they are never NaN in the models).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Time(pub f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("virtual times are never NaN")
    }
}

/// A min-heap of `(next_free_time, worker_id)` actors.
#[derive(Debug, Clone)]
pub struct WorkerHeap {
    heap: BinaryHeap<Reverse<(Time, usize)>>,
}

impl WorkerHeap {
    /// `n` workers, all free at time 0.
    pub fn new(n: usize) -> WorkerHeap {
        WorkerHeap {
            heap: (0..n).map(|i| Reverse((Time(0.0), i))).collect(),
        }
    }

    /// Pop the earliest-free worker.
    pub fn pop(&mut self) -> Option<(f64, usize)> {
        self.heap.pop().map(|Reverse((t, i))| (t.0, i))
    }

    /// Push a worker back with its new free time.
    pub fn push(&mut self, free_at: f64, id: usize) {
        self.heap.push(Reverse((Time(free_at), id)));
    }

    /// Latest free time among all workers (consumes the heap).
    pub fn drain_max(mut self) -> f64 {
        let mut max = 0.0f64;
        while let Some((t, _)) = self.pop() {
            max = max.max(t);
        }
        max
    }

    /// Number of workers in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_serializes_overlapping_requests() {
        let mut t = Timeline::new();
        assert_eq!(t.reserve(0.0, 1.0), 1.0);
        // Arrives during the first service: queues behind it.
        assert_eq!(t.reserve(0.5, 1.0), 2.0);
        // Arrives after the resource is free: no queueing.
        assert_eq!(t.reserve(10.0, 0.5), 10.5);
        assert_eq!(t.busy_total(), 2.5);
    }

    #[test]
    fn timeline_zero_service_is_free() {
        let mut t = Timeline::new();
        assert_eq!(t.reserve(3.0, 0.0), 3.0);
        assert_eq!(t.next_free(), 3.0);
    }

    #[test]
    fn worker_heap_orders_by_time() {
        let mut h = WorkerHeap::new(3);
        let (t, a) = h.pop().unwrap();
        assert_eq!(t, 0.0);
        h.push(5.0, a);
        let (t, b) = h.pop().unwrap();
        assert_eq!(t, 0.0);
        h.push(2.0, b);
        let (t, c) = h.pop().unwrap();
        assert_eq!(t, 0.0);
        h.push(9.0, c);
        assert_eq!(h.pop().unwrap().0, 2.0);
        assert_eq!(h.pop().unwrap().0, 5.0);
        assert_eq!(h.pop().unwrap().0, 9.0);
    }

    #[test]
    fn drain_max_finds_makespan() {
        let mut h = WorkerHeap::new(2);
        let (_, a) = h.pop().unwrap();
        h.push(4.0, a);
        let (_, b) = h.pop().unwrap();
        h.push(7.5, b);
        assert_eq!(h.drain_max(), 7.5);
    }
}
