//! Machine, dataset and cost parameters.

/// The machine model: Theta's relevant characteristics (paper §IV-C).
#[derive(Debug, Clone)]
pub struct ThetaMachine {
    /// Cores per node (Xeon Phi 7230: 64, hyperthreading disabled §IV-D).
    pub cores_per_node: usize,
    /// Worker ranks per HEPnOS *client* node.
    pub ranks_per_client_node: usize,
    /// Fraction of nodes running HEPnOS servers: 1 server per 8 nodes
    /// (§IV-D).
    pub server_node_fraction: usize,
    /// Event databases per server node (§IV-D: 8).
    pub event_dbs_per_server: usize,
}

impl Default for ThetaMachine {
    fn default() -> Self {
        ThetaMachine {
            cores_per_node: 64,
            ranks_per_client_node: 64,
            server_node_fraction: 8,
            event_dbs_per_server: 8,
        }
    }
}

/// A dataset, in the paper's terms.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Number of files (traditional workflow).
    pub n_files: u64,
    /// Total events.
    pub n_events: u64,
    /// Total candidate slices.
    pub n_slices: u64,
    /// Average bytes per file on the PFS.
    pub bytes_per_file: u64,
}

impl DatasetSpec {
    /// The paper's base sample: 1929 files, 4,359,414 events, 17,878,347
    /// slices (§III-B). NOvA files average ~115 MB (1.94 PB / 16.8 M files,
    /// §III-A).
    pub fn nova_base() -> DatasetSpec {
        DatasetSpec {
            n_files: 1929,
            n_events: 4_359_414,
            n_slices: 17_878_347,
            bytes_per_file: 115 << 20,
        }
    }

    /// The sample replicated `k` times (the paper replicates 4× for the
    /// largest scaling runs: 7716 files, 17,437,656 events).
    pub fn nova_replicated(k: u64) -> DatasetSpec {
        let base = Self::nova_base();
        DatasetSpec {
            n_files: base.n_files * k,
            n_events: base.n_events * k,
            n_slices: base.n_slices * k,
            bytes_per_file: base.bytes_per_file,
        }
    }

    /// Average slices per event.
    pub fn slices_per_event(&self) -> f64 {
        self.n_slices as f64 / self.n_events as f64
    }

    /// Average slices per file.
    pub fn slices_per_file(&self) -> f64 {
        self.n_slices as f64 / self.n_files as f64
    }
}

/// Cost parameters feeding the virtual-time models. Defaults are shaped by
/// the microbenchmarks of this workspace's real implementation (selection
/// cost per slice, RPC and KV service costs) scaled to KNL-era cores; the
/// bench harness can override any of them with calibrated values.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Selection compute per slice, per core (seconds). KNL cores are slow;
    /// the CAFAna selection touches a few hundred quantities per slice.
    pub slice_compute: f64,
    /// PFS: metadata service time per file open (serialized on the
    /// metadata server).
    pub pfs_metadata_service: f64,
    /// PFS: aggregate delivered bandwidth, bytes/second (shared).
    pub pfs_aggregate_bandwidth: f64,
    /// Traditional workflow: per-byte cost of reading/deserializing the
    /// whole file on the worker's core. The file-based application must
    /// parse every record in the file (including "copied forward" data it
    /// does not need, §I), while HEPnOS ships only the requested products.
    pub file_parse_per_byte: f64,
    /// Per-process fixed startup of a traditional workflow worker
    /// (launching the CAFAna executable, loading libraries from the PFS).
    pub grid_worker_startup: f64,
    /// One-way network latency per RPC (Aries ~ microseconds).
    pub rpc_latency: f64,
    /// Bytes shipped per event in a load batch (key + slice product).
    pub bytes_per_event: f64,
    /// Per-server NIC bandwidth, bytes/second.
    pub nic_bandwidth: f64,
    /// In-memory backend: server-side service time per event in a batch.
    pub mem_service_per_event: f64,
    /// In-memory backend: fixed service per batch RPC.
    pub mem_service_per_batch: f64,
    /// LSM backend: server-side service time per event in a batch
    /// (SST scan + deserialization; SSD-bound).
    pub lsm_service_per_event: f64,
    /// LSM backend: fixed service per batch RPC (SST seeks, block reads).
    pub lsm_service_per_batch: f64,
    /// Fixed per-run cost of the HEPnOS workflow (connection setup, PEP
    /// spin-up, first-batch pipeline fill). Does not shrink with scale —
    /// the source of strong-scaling efficiency loss.
    pub hepnos_startup: f64,
    /// Extra fixed per-run cost of the LSM backend (DB opens, cold SST
    /// reads, page-cache warmup). Constant terms like this are what make
    /// the in-memory backend pull ahead at high node counts (Fig. 2).
    pub lsm_startup: f64,
    /// Dispatch batch size used by the ParallelEventProcessor (§IV-D: 64).
    pub dispatch_batch: u64,
    /// Load batch size (§IV-D: 16384).
    pub load_batch: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            slice_compute: 500e-6,
            pfs_metadata_service: 0.3e-3,
            pfs_aggregate_bandwidth: 200.0e9,
            file_parse_per_byte: 20.0e-9,
            grid_worker_startup: 2.0,
            rpc_latency: 10e-6,
            bytes_per_event: 360.0,
            nic_bandwidth: 8.0e9,
            mem_service_per_event: 1.2e-6,
            mem_service_per_batch: 0.3e-3,
            lsm_service_per_event: 3.0e-6,
            lsm_service_per_batch: 6.0e-3,
            hepnos_startup: 1.0,
            lsm_startup: 3.2,
            dispatch_batch: 64,
            load_batch: 16384,
        }
    }
}

impl CostModel {
    /// A copy of the model with every cost perturbed by up to `amplitude`
    /// (relative), deterministically from `seed`. The paper plots several
    /// runs per configuration ("dots have been jittered"); perturbed
    /// replicas reproduce that run-to-run spread without wall-clock noise.
    pub fn perturbed(&self, seed: u64, amplitude: f64) -> CostModel {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut jitter = |v: f64| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            v * (1.0 + amplitude * (2.0 * u - 1.0))
        };
        CostModel {
            slice_compute: jitter(self.slice_compute),
            pfs_metadata_service: jitter(self.pfs_metadata_service),
            pfs_aggregate_bandwidth: jitter(self.pfs_aggregate_bandwidth),
            file_parse_per_byte: jitter(self.file_parse_per_byte),
            grid_worker_startup: jitter(self.grid_worker_startup),
            rpc_latency: jitter(self.rpc_latency),
            bytes_per_event: self.bytes_per_event,
            nic_bandwidth: jitter(self.nic_bandwidth),
            mem_service_per_event: jitter(self.mem_service_per_event),
            mem_service_per_batch: jitter(self.mem_service_per_batch),
            lsm_service_per_event: jitter(self.lsm_service_per_event),
            lsm_service_per_batch: jitter(self.lsm_service_per_batch),
            hepnos_startup: jitter(self.hepnos_startup),
            lsm_startup: jitter(self.lsm_startup),
            dispatch_batch: self.dispatch_batch,
            load_batch: self.load_batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbed_is_deterministic_and_bounded() {
        let base = CostModel::default();
        let a = base.perturbed(7, 0.05);
        let b = base.perturbed(7, 0.05);
        assert_eq!(a.slice_compute, b.slice_compute);
        assert_ne!(a.slice_compute, base.slice_compute);
        assert!((a.slice_compute / base.slice_compute - 1.0).abs() <= 0.05);
        let c = base.perturbed(8, 0.05);
        assert_ne!(a.slice_compute, c.slice_compute);
        // Batch sizes are configuration, not noise.
        assert_eq!(a.load_batch, base.load_batch);
    }

    #[test]
    fn nova_base_matches_paper_numbers() {
        let d = DatasetSpec::nova_base();
        assert_eq!(d.n_files, 1929);
        assert_eq!(d.n_events, 4_359_414);
        assert_eq!(d.n_slices, 17_878_347);
        // ~4.1 slices per event, 9k-12k per file (§III-A/B).
        assert!((4.0..4.2).contains(&d.slices_per_event()));
        assert!((9_000.0..12_000.0).contains(&d.slices_per_file()));
    }

    #[test]
    fn replication_scales_counts_not_file_size() {
        let d = DatasetSpec::nova_replicated(4);
        assert_eq!(d.n_files, 7716);
        assert_eq!(d.n_events, 17_437_656);
        assert_eq!(d.bytes_per_file, DatasetSpec::nova_base().bytes_per_file);
    }

    #[test]
    fn theta_defaults_match_paper_deployment() {
        let m = ThetaMachine::default();
        assert_eq!(m.cores_per_node, 64);
        assert_eq!(m.server_node_fraction, 8);
        assert_eq!(m.event_dbs_per_server, 8);
    }
}
