//! `cluster` — a deterministic discrete-event simulator of the paper's
//! Theta deployment.
//!
//! The evaluation (§IV) runs on 16–256 Cray XC40 nodes; this reproduction
//! runs on one machine, so the *figure-scale* experiments execute the two
//! workflow models in **virtual time**: every resource (worker cores, the
//! parallel file system, Yokan databases) is a timeline, and the simulation
//! advances reservations on those timelines instead of sleeping. The models
//! are deliberately simple queueing models — the paper's claims are about
//! *shape* (who wins, where scaling saturates), which these mechanisms
//! produce:
//!
//! * [`filewf`] — the traditional workflow: workers pull whole **files**
//!   from a shared list; the PFS charges per-open metadata latency and
//!   shared aggregate bandwidth. When cores outnumber files, the surplus
//!   cores idle (Fig. 2's plateau past 64 nodes); when the dataset is
//!   small, utilization collapses (Fig. 3's 24%-busy point).
//! * [`hepnoswf`] — the HEPnOS workflow: readers page **event batches**
//!   out of per-server databases into a shared queue drained by worker
//!   ranks in dispatch batches; server service cost depends on the backend
//!   (in-memory vs LSM-on-SSD), and fixed per-run costs erode strong
//!   scaling exactly as constant terms must.
//!
//! Cost parameters ([`theta::CostModel`]) are defaults shaped by the
//! microbenchmarks of the real implementation in this workspace; the bench
//! harness can override them with freshly calibrated values.

#![warn(missing_docs)]

pub mod filewf;
pub mod hepnoswf;
pub mod ingestwf;
pub mod theta;
pub mod vt;

pub use filewf::{FileWorkflowModel, FileWorkflowResult};
pub use hepnoswf::{Backend, HepnosWorkflowModel, HepnosWorkflowResult};
pub use ingestwf::{IngestModel, IngestResult};
pub use theta::{CostModel, DatasetSpec, ThetaMachine};
