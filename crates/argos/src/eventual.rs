//! One-shot futures (`ABT_eventual` analogue).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// A one-shot, thread-safe future: a value that will be set exactly once and
/// can be awaited by any number of waiters.
///
/// This is the analogue of Argobots' `ABT_eventual`, used throughout the
/// stack for task completion, asynchronous batch flushes, and RPC responses.
///
/// Cloning an `Eventual` is cheap; all clones observe the same value.
pub struct Eventual<T> {
    inner: Arc<Inner<T>>,
}

struct Inner<T> {
    slot: Mutex<Option<T>>,
    cond: Condvar,
}

impl<T> Clone for Eventual<T> {
    fn clone(&self) -> Self {
        Eventual {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for Eventual<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Eventual<T> {
    /// Create a new, unset eventual.
    pub fn new() -> Self {
        Eventual {
            inner: Arc::new(Inner {
                slot: Mutex::new(None),
                cond: Condvar::new(),
            }),
        }
    }

    /// Set the value, waking all waiters.
    ///
    /// # Panics
    ///
    /// Panics if the eventual was already set: a one-shot future must be
    /// resolved exactly once, and double-resolution indicates a logic error
    /// in the caller (e.g. an RPC answered twice).
    pub fn set(&self, value: T) {
        let mut slot = self.inner.slot.lock();
        assert!(slot.is_none(), "Eventual::set called twice");
        *slot = Some(value);
        self.inner.cond.notify_all();
    }

    /// Returns `true` if the value has been set.
    pub fn is_set(&self) -> bool {
        self.inner.slot.lock().is_some()
    }

    /// Block until the value is set, then take it.
    ///
    /// Exactly one waiter receives the value; this mirrors
    /// `ABT_eventual_wait` followed by a move out of the buffer. Use
    /// [`Eventual::wait_cloned`] when several waiters need the result.
    pub fn wait(self) -> T {
        let mut slot = self.inner.slot.lock();
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            self.inner.cond.wait(&mut slot);
        }
    }

    /// Block until the value is set, with a timeout. Returns `Err(self)` on
    /// timeout so the caller can keep waiting or give up.
    pub fn wait_timeout(self, dur: Duration) -> Result<T, Self> {
        let deadline = std::time::Instant::now() + dur;
        let mut slot = self.inner.slot.lock();
        loop {
            if let Some(v) = slot.take() {
                return Ok(v);
            }
            if self.inner.cond.wait_until(&mut slot, deadline).timed_out() {
                return match slot.take() {
                    Some(v) => Ok(v),
                    None => {
                        drop(slot);
                        Err(self)
                    }
                };
            }
        }
    }

    /// Take the value if it is already set, without blocking.
    pub fn try_take(&self) -> Option<T> {
        self.inner.slot.lock().take()
    }
}

impl<T: Clone> Eventual<T> {
    /// Block until the value is set and return a clone, leaving the value in
    /// place for other waiters.
    pub fn wait_cloned(&self) -> T {
        let mut slot = self.inner.slot.lock();
        loop {
            if let Some(v) = slot.as_ref() {
                return v.clone();
            }
            self.inner.cond.wait(&mut slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn set_then_wait() {
        let e = Eventual::new();
        e.set(5u32);
        assert!(e.is_set());
        assert_eq!(e.wait(), 5);
    }

    #[test]
    fn wait_blocks_until_set() {
        let e = Eventual::new();
        let e2 = e.clone();
        let t = thread::spawn(move || e2.wait());
        thread::sleep(Duration::from_millis(20));
        e.set("done");
        assert_eq!(t.join().unwrap(), "done");
    }

    #[test]
    fn wait_cloned_leaves_value() {
        let e = Eventual::new();
        e.set(7u64);
        assert_eq!(e.wait_cloned(), 7);
        assert_eq!(e.wait_cloned(), 7);
        assert_eq!(e.try_take(), Some(7));
        assert_eq!(e.try_take(), None);
    }

    #[test]
    fn wait_timeout_times_out() {
        let e: Eventual<u8> = Eventual::new();
        let r = e.wait_timeout(Duration::from_millis(10));
        assert!(r.is_err());
    }

    #[test]
    fn wait_timeout_succeeds() {
        let e = Eventual::new();
        let e2 = e.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            e2.set(9i32);
        });
        assert_eq!(e.wait_timeout(Duration::from_secs(5)).ok(), Some(9));
    }

    #[test]
    #[should_panic(expected = "set called twice")]
    fn double_set_panics() {
        let e = Eventual::new();
        e.set(1);
        e.set(2);
    }

    #[test]
    fn many_waiters_cloned() {
        let e: Eventual<u32> = Eventual::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let e = e.clone();
                thread::spawn(move || e.wait_cloned())
            })
            .collect();
        thread::sleep(Duration::from_millis(10));
        e.set(1234);
        for h in handles {
            assert_eq!(h.join().unwrap(), 1234);
        }
    }
}
