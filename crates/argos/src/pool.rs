//! Work pools and scheduling disciplines (`ABT_pool` analogue).

use crate::eventual::Eventual;
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A unit of work pushed into a [`Pool`]: a boxed closure run to completion
/// by whichever execution stream pops it.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Priority of a task in a [`SchedulingDiscipline::Priority`] pool.
/// Larger values run first; FIFO order breaks ties.
pub type TaskPriority = u8;

/// The scheduling discipline of a pool, mirroring the scheduler choices
/// Bedrock exposes for Argobots pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingDiscipline {
    /// First-in first-out.
    Fifo,
    /// Highest [`TaskPriority`] first, FIFO among equal priorities.
    Priority,
}

impl SchedulingDiscipline {
    /// Parse from the names used in Bedrock-style JSON configs.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" | "fifo_wait" | "basic" | "basic_wait" => Some(Self::Fifo),
            "prio" | "priority" | "prio_wait" => Some(Self::Priority),
            _ => None,
        }
    }
}

struct PrioTask {
    prio: TaskPriority,
    seq: u64,
    task: Task,
}

impl PartialEq for PrioTask {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl Eq for PrioTask {}
impl PartialOrd for PrioTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on priority; min on sequence number for FIFO tie-break.
        self.prio
            .cmp(&other.prio)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum Queue {
    Fifo(VecDeque<Task>),
    Priority(BinaryHeap<PrioTask>),
}

impl Queue {
    fn len(&self) -> usize {
        match self {
            Queue::Fifo(q) => q.len(),
            Queue::Priority(q) => q.len(),
        }
    }
    fn pop(&mut self) -> Option<Task> {
        match self {
            Queue::Fifo(q) => q.pop_front(),
            Queue::Priority(q) => q.pop().map(|p| p.task),
        }
    }
}

struct PoolInner {
    queue: Mutex<Queue>,
    cond: Condvar,
    closed: Mutex<bool>,
    seq: AtomicU64,
    pushed: AtomicU64,
    popped: AtomicU64,
    name: String,
}

/// A thread-safe work queue shared between producers (RPC dispatch, client
/// code) and consumer execution streams.
///
/// Pools are the placement mechanism of the Mochi stack: a provider is mapped
/// to a pool, and the xstreams draining that pool are the compute resources
/// that execute the provider's RPCs.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<PoolInner>,
}

/// Counters describing pool traffic, for monitoring and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks pushed since creation.
    pub pushed: u64,
    /// Tasks popped since creation.
    pub popped: u64,
    /// Tasks currently queued.
    pub queued: usize,
}

impl Pool {
    /// Create a new pool with the given name and discipline.
    pub fn new(name: impl Into<String>, discipline: SchedulingDiscipline) -> Self {
        let queue = match discipline {
            SchedulingDiscipline::Fifo => Queue::Fifo(VecDeque::new()),
            SchedulingDiscipline::Priority => Queue::Priority(BinaryHeap::new()),
        };
        Pool {
            inner: Arc::new(PoolInner {
                queue: Mutex::new(queue),
                cond: Condvar::new(),
                closed: Mutex::new(false),
                seq: AtomicU64::new(0),
                pushed: AtomicU64::new(0),
                popped: AtomicU64::new(0),
                name: name.into(),
            }),
        }
    }

    /// The pool's name (unique within a [`crate::Runtime`]).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Push a raw task with default priority.
    ///
    /// # Panics
    ///
    /// Panics if the pool is closed: submitting work during teardown is a
    /// lifecycle bug in the caller.
    pub fn push(&self, task: Task) {
        self.push_prio(task, 0)
    }

    /// Push a raw task with an explicit priority (ignored by FIFO pools).
    pub fn push_prio(&self, task: Task, prio: TaskPriority) {
        assert!(!*self.inner.closed.lock(), "push into closed pool");
        let mut q = self.inner.queue.lock();
        match &mut *q {
            Queue::Fifo(q) => q.push_back(task),
            Queue::Priority(q) => {
                let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
                q.push(PrioTask { prio, seq, task });
            }
        }
        self.inner.pushed.fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.inner.cond.notify_one();
    }

    /// Spawn a closure returning a value; the result is retrieved through the
    /// returned [`JoinHandle`].
    pub fn spawn<T, F>(&self, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_prio(f, 0)
    }

    /// Spawn with an explicit priority.
    pub fn spawn_prio<T, F>(&self, f: F, prio: TaskPriority) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let ev = Eventual::new();
        let ev2 = ev.clone();
        self.push_prio(Box::new(move || ev2.set(f())), prio);
        JoinHandle { ev }
    }

    /// Pop a task, blocking up to `timeout`. Returns `None` on timeout or if
    /// the pool is closed and empty.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Task> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.inner.queue.lock();
        loop {
            if let Some(t) = q.pop() {
                self.inner.popped.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
            if *self.inner.closed.lock() {
                return None;
            }
            if self.inner.cond.wait_until(&mut q, deadline).timed_out() {
                let t = q.pop();
                if t.is_some() {
                    self.inner.popped.fetch_add(1, Ordering::Relaxed);
                }
                return t;
            }
        }
    }

    /// Pop without blocking.
    pub fn try_pop(&self) -> Option<Task> {
        let t = self.inner.queue.lock().pop();
        if t.is_some() {
            self.inner.popped.fetch_add(1, Ordering::Relaxed);
        }
        t
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark the pool closed and wake all waiting consumers. Queued tasks are
    /// still drained; new pushes panic.
    pub fn close(&self) {
        *self.inner.closed.lock() = true;
        self.inner.cond.notify_all();
    }

    /// Whether [`Pool::close`] has been called.
    pub fn is_closed(&self) -> bool {
        *self.inner.closed.lock()
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            pushed: self.inner.pushed.load(Ordering::Relaxed),
            popped: self.inner.popped.load(Ordering::Relaxed),
            queued: self.len(),
        }
    }
}

/// Handle to a spawned task's result.
pub struct JoinHandle<T> {
    ev: Eventual<T>,
}

impl<T> JoinHandle<T> {
    /// Block until the task completes and return its result.
    pub fn join(self) -> T {
        self.ev.wait()
    }

    /// Block with a timeout; `Err(self)` on timeout.
    pub fn join_timeout(self, dur: Duration) -> Result<T, Self> {
        self.ev.wait_timeout(dur).map_err(|ev| JoinHandle { ev })
    }

    /// Whether the task has finished.
    pub fn is_finished(&self) -> bool {
        self.ev.is_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn drain(pool: &Pool) -> usize {
        let mut n = 0;
        while let Some(t) = pool.try_pop() {
            t();
            n += 1;
        }
        n
    }

    #[test]
    fn fifo_order() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let log = Arc::clone(&log);
            pool.push(Box::new(move || log.lock().push(i)));
        }
        assert_eq!(drain(&pool), 5);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn priority_order_with_fifo_tiebreak() {
        let pool = Pool::new("p", SchedulingDiscipline::Priority);
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, prio) in [(0, 1u8), (1, 3), (2, 3), (3, 0), (4, 2)] {
            let log = Arc::clone(&log);
            pool.push_prio(Box::new(move || log.lock().push(i)), prio);
        }
        drain(&pool);
        assert_eq!(*log.lock(), vec![1, 2, 4, 0, 3]);
    }

    #[test]
    fn spawn_join() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        let h = pool.spawn(|| 10);
        let t = pool.try_pop().unwrap();
        t();
        assert!(h.is_finished());
        assert_eq!(h.join(), 10);
    }

    #[test]
    fn stats_track_traffic() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        pool.push(Box::new(|| ()));
        pool.push(Box::new(|| ()));
        assert_eq!(
            pool.stats(),
            PoolStats {
                pushed: 2,
                popped: 0,
                queued: 2
            }
        );
        pool.try_pop().unwrap()();
        assert_eq!(
            pool.stats(),
            PoolStats {
                pushed: 2,
                popped: 1,
                queued: 1
            }
        );
    }

    #[test]
    fn pop_timeout_returns_none_when_empty() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        assert!(pool.pop_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn close_wakes_poppers() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        let p2 = pool.clone();
        let t = std::thread::spawn(move || p2.pop_timeout(Duration::from_secs(30)).is_none());
        std::thread::sleep(Duration::from_millis(10));
        pool.close();
        assert!(t.join().unwrap());
    }

    #[test]
    fn close_still_drains_queued_tasks() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.push(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        pool.close();
        pool.pop_timeout(Duration::from_millis(10)).unwrap()();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "closed pool")]
    fn push_after_close_panics() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        pool.close();
        pool.push(Box::new(|| ()));
    }

    #[test]
    fn discipline_parse() {
        assert_eq!(
            SchedulingDiscipline::parse("fifo_wait"),
            Some(SchedulingDiscipline::Fifo)
        );
        assert_eq!(
            SchedulingDiscipline::parse("prio"),
            Some(SchedulingDiscipline::Priority)
        );
        assert_eq!(SchedulingDiscipline::parse("bogus"), None);
    }
}
